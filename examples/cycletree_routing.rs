//! Cycletree construction and routing: number a tree in cyclic order with the
//! fused traversal (whose legality is E4a of the evaluation), then route
//! point-to-point messages using the router data.
//!
//! ```bash
//! cargo run --release --example cycletree_routing
//! ```

use retreet_bench::{e4a_cycletree_fusion, e4b_cycletree_parallelization_race, Budget};
use retreet_cycletree::numbering::{cycle_order, fused_number_and_route, random_cycletree};
use retreet_cycletree::routing::route_path;

fn main() {
    // The two analysis verdicts for this case study.
    let budget = Budget::quick();
    let fusion = e4a_cycletree_fusion(&budget);
    let race = e4b_cycletree_parallelization_race(&budget);
    println!(
        "E4a (fuse numbering + routing): {:?} — {}",
        fusion.verdict, fusion.detail
    );
    println!(
        "E4b (parallelize instead):      {:?} — {}",
        race.verdict, race.detail
    );

    // Build a cycletree with the fused traversal and route some messages.
    let mut tree = random_cycletree(31, 3);
    fused_number_and_route(&mut tree);
    let order = cycle_order(&tree);
    println!("cycle order of the first 10 nodes: {:?}", &order[..10]);
    for (from, to) in [(0i64, 30i64), (7, 23), (30, 1)] {
        let path = route_path(&tree, from, to);
        println!("route {from:>2} -> {to:>2}: {path:?}");
    }
}
