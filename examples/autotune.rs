//! Tunes the CSS-minify pipeline (E3) with the certified schedule
//! autotuner: enumerates the partial-fusion × parallelization space of
//! `Main`'s three passes, certifies every candidate through one
//! `verify_batch` call, measures the survivors on the bytecode VM, prints
//! the scored candidate table with certificates, and runs the winner.
//!
//! ```bash
//! cargo run --release --example autotune
//! ```

use retreet_analysis::vtree::ValueTree;
use retreet_codegen::program_fields;
use retreet_lang::corpus;
use retreet_runtime::tune_and_compile;
use retreet_transform::{CandidateStatus, TuneOptions};
use retreet_verify::Verifier;

fn main() {
    let verifier = Verifier::builder()
        .equiv_nodes(5)
        .race_nodes(4)
        .valuations(2)
        .check_dependence_order(true)
        .build();
    let program = corpus::css_minify_original();
    let options = TuneOptions {
        tree_height: 12,
        ..TuneOptions::default()
    };

    println!("tuning the CSS-minify pipeline (ConvertValues; MinifyFont; ReduceInit)\n");
    let tuned = tune_and_compile(&verifier, &program, &options).expect("E3 tunes");
    let schedule = &tuned.schedule;

    // The scored candidate table: every enumerated schedule, certified with
    // its measured VM cost or refused with the verifier's witness.
    println!(
        "{:<52} {:>10} {:>12}  certificate",
        "candidate", "status", "cost"
    );
    for candidate in &schedule.candidates {
        match &candidate.status {
            CandidateStatus::Certified {
                equivalence,
                race,
                cost,
            } => {
                let cost_text = match cost {
                    Ok(seconds) => format!("{:.4} ms", seconds * 1e3),
                    Err(_) => String::from("unmeasured"),
                };
                let race_text = race
                    .as_ref()
                    .map(|r| format!(" + race-free [{}]", r.engine))
                    .unwrap_or_default();
                println!(
                    "{:<52} {:>10} {:>12}  equivalence [{} / {}]{}",
                    candidate.label,
                    "certified",
                    cost_text,
                    equivalence.engine,
                    equivalence.soundness,
                    race_text
                );
            }
            CandidateStatus::Refused(reason) => {
                println!(
                    "{:<52} {:>10} {:>12}  {}",
                    candidate.label, "refused", "-", reason
                );
            }
        }
    }

    println!(
        "\nbaselines: original {:.4} ms, canonical fusion {}",
        schedule.baseline_original_seconds * 1e3,
        schedule
            .baseline_fused_seconds
            .map(|s| format!("{:.4} ms", s * 1e3))
            .unwrap_or_else(|| String::from("(not measured)"))
    );
    println!(
        "winner: {} at {:.4} ms ({:.2}x over the best baseline)",
        schedule.winner_label,
        schedule.winner_seconds * 1e3,
        schedule.speedup()
    );
    println!("certificate: {}", schedule.winner.certificate);

    // Run the winner on a fresh seeded tree through its compiled executor.
    let fields = program_fields(&program);
    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
    let mut tree = ValueTree::complete(10, &field_refs, |_, _| 0);
    tree.fill_fields(&field_refs, 99);
    let outcome = tuned.executor.run(&tree).expect("the winner runs");
    println!(
        "\nwinner executed on a height-10 tree ({} nodes) via the {} tier, returns {:?}",
        tree.len(),
        outcome.tier,
        outcome.returns
    );
}
