//! Parallel traversal gated by a synthesized, certified schedule: the
//! transform layer rewrites the *sequential* size-counting program into the
//! parallel composition of Fig. 3, the race-freedom verdict certifies it
//! (E1c of the evaluation), and the runtime then computes the Odd/Even
//! counts with a parallel fold.
//!
//! ```bash
//! cargo run --release --example parallel_traversal
//! ```

use std::time::Instant;

use retreet_lang::corpus;
use retreet_runtime::tree::complete_tree;
use retreet_runtime::visit::{par_fold, seq_fold};
use retreet_runtime::VerifiedParallelization;
use retreet_transform::synthesize_parallel_main;
use retreet_verify::Verifier;

fn main() {
    // 1. Synthesis + legality: `o = Odd(n); e = Even(n);` becomes
    //    `Odd(n) ‖ Even(n)`, certified race-free.
    let verifier = Verifier::builder().race_nodes(3).valuations(1).build();
    let certified = synthesize_parallel_main(&verifier, &corpus::size_counting_sequential())
        .expect("the parallel composition is race-free");
    println!(
        "synthesized this parallel schedule:\n{}",
        certified.transformed_source()
    );
    let capability =
        VerifiedParallelization::from_certified(&certified).expect("race-freedom certificate");
    println!(
        "race-freedom established over {} trees ({} configurations) by the {} engine",
        capability.trees_checked(),
        capability.configurations(),
        capability.engine()
    );

    // 2. Execution: count odd-layer and even-layer nodes of a large tree,
    //    sequentially and in parallel.
    let tree = complete_tree(22, &|_| ());
    let combine = |_: &(), (lo, le): (u64, u64), (ro, re): (u64, u64)| (le + re + 1, lo + ro);

    let start = Instant::now();
    let seq = seq_fold(&tree, &|| (0, 0), &combine);
    let seq_time = start.elapsed();

    let start = Instant::now();
    let par = par_fold(&tree, 1 << 12, &|| (0, 0), &combine);
    let par_time = start.elapsed();

    assert_eq!(seq, par);
    println!("odd-layer nodes: {}, even-layer nodes: {}", par.0, par.1);
    println!(
        "sequential: {:?}, parallel: {:?} ({:.2}x speedup on {} threads)",
        seq_time,
        par_time,
        seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9),
        rayon::current_num_threads()
    );

    // 3. The compiled tier: the same certified parallel program, lowered to
    //    register bytecode and run on the VM (Par branches keep the
    //    reference interpreter's sequential semantics — the race
    //    certificate is what licenses the true parallel schedule above),
    //    with the interpreter timed as the baseline.
    use retreet_analysis::interp;
    use retreet_analysis::vtree::ValueTree;
    use retreet_lang::blocks::BlockTable;
    use retreet_runtime::ProgramExecutor;

    let executor = ProgramExecutor::with_verifier(&verifier, &certified.transformed);
    let vtree = ValueTree::complete(13, &[], |_, _| 0);
    let table = BlockTable::build(&certified.transformed);
    let start = Instant::now();
    let reference = interp::run_with_table(&table, &vtree).expect("interpreter runs");
    let interp_time = start.elapsed();
    let start = Instant::now();
    let outcome = executor.run(&vtree).expect("compiled run");
    let vm_time = start.elapsed();
    assert_eq!(reference.returns, outcome.returns);
    println!(
        "compiled tier ({}): returns {:?}; interpreter {:?} vs VM {:?} ({:.2}x)",
        outcome.tier,
        outcome.returns,
        interp_time,
        vm_time,
        interp_time.as_secs_f64() / vm_time.as_secs_f64().max(1e-9)
    );
}
