//! CSS minification end to end: generate a style sheet, minify it with the
//! fused single-pass traversal whose legality the analysis certifies, and
//! report the size reduction.
//!
//! ```bash
//! cargo run --release --example css_minify
//! ```

use retreet_css::analysis_model::verify_css_fusion_with;
use retreet_css::css::generate_stylesheet;
use retreet_css::minify::{minify_fused, minify_unfused};
use retreet_verify::Verifier;

fn main() {
    // 1. The legality question (E3 of the evaluation), through the façade.
    let verifier = Verifier::with_defaults();
    let verdict = verify_css_fusion_with(&verifier).expect("well-formed corpus programs");
    println!(
        "fusing ConvertValues; MinifyFont; ReduceInit is {} ({} engine, {:?})",
        if verdict.is_equivalent() {
            "valid"
        } else {
            "INVALID"
        },
        verdict.engine,
        verdict.elapsed,
    );

    // 2. The execution: one pass instead of three on a realistic workload.
    let sheet = generate_stylesheet(2_000, 7);
    let before = sheet.serialized_len();
    let minified = minify_fused(&sheet);
    let after = minified.serialized_len();
    assert_eq!(minified, minify_unfused(&sheet));
    println!(
        "minified {} rules / {} declarations: {} bytes -> {} bytes ({:.1}% smaller)",
        sheet.rules.len(),
        sheet.num_declarations(),
        before,
        after,
        100.0 * (before - after) as f64 / before as f64
    );
    println!("sample output: {}", &minified.to_css()[..120.min(after)]);
}
