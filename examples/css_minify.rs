//! CSS minification end to end: generate a style sheet, minify it with the
//! fused single-pass traversal whose legality the analysis certifies, and
//! report the size reduction.
//!
//! ```bash
//! cargo run --release --example css_minify
//! ```

use retreet_css::analysis_model::certify_css_fusion;
use retreet_css::css::generate_stylesheet;
use retreet_css::minify::{minify_fused, minify_unfused};
use retreet_verify::Verifier;

fn main() {
    // 1. The legality question (E3 of the evaluation): the transform layer
    //    synthesizes the fused minifier from the three-pass original and
    //    returns it with an equivalence certificate.
    let verifier = Verifier::with_defaults();
    let certified = certify_css_fusion(&verifier).expect("the Fig. 8 fusion synthesizes");
    println!(
        "fusing ConvertValues; MinifyFont; ReduceInit is valid ({} engine, {:?})",
        certified.certificate.engine(),
        certified.certificate.verdict.elapsed,
    );
    println!(
        "synthesized fused traversal:\n{}",
        certified.transformed_source()
    );

    // 2. The execution: one pass instead of three on a realistic workload.
    let sheet = generate_stylesheet(2_000, 7);
    let before = sheet.serialized_len();
    let minified = minify_fused(&sheet);
    let after = minified.serialized_len();
    assert_eq!(minified, minify_unfused(&sheet));
    println!(
        "minified {} rules / {} declarations: {} bytes -> {} bytes ({:.1}% smaller)",
        sheet.rules.len(),
        sheet.num_declarations(),
        before,
        after,
        100.0 * (before - after) as f64 / before as f64
    );
    println!("sample output: {}", &minified.to_css()[..120.min(after)]);
}
