//! Reproduces every verification row of the paper's evaluation (§5),
//! prints a paper-vs-measured table (the same rows EXPERIMENTS.md records),
//! and then goes one step further than the paper: instead of merely
//! *checking* the hand-written fused programs, it has the transform layer
//! *synthesize* each fusion and prints the certificates.
//!
//! ```bash
//! cargo run --release --example verify_fusion
//! ```

use retreet_bench::{ablation_granularity, render_table, run_all, to_json, Budget};
use retreet_lang::corpus;
use retreet_transform::fuse_main_passes;

fn main() {
    let budget = Budget::default();
    let results = run_all(&budget);
    println!("{}", render_table(&results));
    let all_match = results.iter().all(|r| r.matches_paper());
    println!(
        "all verdicts match the paper: {}",
        if all_match { "yes" } else { "NO" }
    );

    println!("\ngranularity ablation (coarse TreeFuser-style baseline vs. fine-grained):");
    for row in ablation_granularity(&budget) {
        println!(
            "  {:<18} coarse accepts: {:<5}  fine-grained accepts: {}",
            row.case, row.coarse_accepts, row.fine_grained_accepts
        );
    }

    // From oracle to compiler backend: synthesize each §5 fusion from its
    // sequential original and report the certificate that licenses it.
    println!("\nsynthesized certified fusions:");
    let verifier = budget.equivalence_verifier();
    for (name, original) in [
        ("size_counting (E1)", corpus::size_counting_sequential()),
        ("tree_mutation (E2)", corpus::tree_mutation_original()),
        ("css_minify (E3)", corpus::css_minify_original()),
        ("cycletree (E4a)", corpus::cycletree_original()),
    ] {
        match fuse_main_passes(&verifier, &original) {
            Ok(certified) => println!(
                "  {:<20} {} fused function(s), {}",
                name,
                certified.synthesized.len(),
                certified.certificate,
            ),
            Err(err) => println!("  {name:<20} REFUSED: {err}"),
        }
    }

    println!("\nmachine-readable record:\n{}", to_json(&results));
}
