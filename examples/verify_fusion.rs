//! Reproduces every verification row of the paper's evaluation (§5) and
//! prints a paper-vs-measured table (the same rows EXPERIMENTS.md records).
//!
//! ```bash
//! cargo run --release --example verify_fusion
//! ```

use retreet_bench::{ablation_granularity, render_table, run_all, to_json, Budget};

fn main() {
    let budget = Budget::default();
    let results = run_all(&budget);
    println!("{}", render_table(&results));
    let all_match = results.iter().all(|r| r.matches_paper());
    println!(
        "all verdicts match the paper: {}",
        if all_match { "yes" } else { "NO" }
    );

    println!("\ngranularity ablation (coarse TreeFuser-style baseline vs. fine-grained):");
    for row in ablation_granularity(&budget) {
        println!(
            "  {:<18} coarse accepts: {:<5}  fine-grained accepts: {}",
            row.case, row.coarse_accepts, row.fine_grained_accepts
        );
    }

    println!("\nmachine-readable record:\n{}", to_json(&results));
}
