//! Quickstart: write a pair of Retreet traversals, ask the unified
//! `Verifier` façade whether fusing them is legal, and run the fused
//! schedule on a real tree.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use retreet_lang::parse_program;
use retreet_runtime::tree::complete_tree;
use retreet_runtime::VerifiedFusion;
use retreet_verify::Verifier;

fn main() {
    // Two simple traversals over the same tree: `Scale` doubles every node's
    // value, `Shift` then adds the left child's value to each node.
    let original = parse_program(
        r#"
        fn Scale(n) {
            if (n == nil) { return 0; } else {
                a = Scale(n.l);
                b = Scale(n.r);
                n.v = n.v + n.v;
                return 0;
            }
        }
        fn Shift(n) {
            if (n == nil) { return 0; } else {
                a = Shift(n.l);
                b = Shift(n.r);
                if (n.l == nil) {
                    n.s = n.v;
                } else {
                    n.s = n.v + n.l.v;
                }
                return 0;
            }
        }
        fn Main(n) {
            x = Scale(n);
            y = Shift(n);
            return 0;
        }
        "#,
    )
    .expect("original parses");

    let fused = parse_program(
        r#"
        fn Fused(n) {
            if (n == nil) { return 0; } else {
                a = Fused(n.l);
                b = Fused(n.r);
                n.v = n.v + n.v;
                if (n.l == nil) {
                    n.s = n.v;
                } else {
                    n.s = n.v + n.l.v;
                }
                return 0;
            }
        }
        fn Main(n) {
            x = Fused(n);
            return 0;
        }
        "#,
    )
    .expect("fused parses");

    // Build the verifier once: one budget, the full engine portfolio, and a
    // verdict cache that makes repeated legality questions O(1).
    let verifier = Verifier::builder()
        .max_nodes(5)
        .valuations(3)
        .parallel(true)
        .build();

    // Ask the façade whether the fusion is legal; the capability is only
    // granted on an `Equivalent` verdict.
    let capability = VerifiedFusion::verify_with(&verifier, &original, &fused)
        .expect("the fusion is equivalent to the two-pass original");
    println!(
        "fusion verified on {} bounded models by the {} engine — running the fused schedule",
        capability.trees_checked(),
        capability.engine(),
    );

    // Run the fused schedule on a concrete tree with the runtime.
    #[derive(Clone, Default)]
    struct Payload {
        v: i64,
        s: i64,
    }
    let scale = |p: &mut Payload, _: Option<&Payload>, _: Option<&Payload>| p.v *= 2;
    let shift = |p: &mut Payload, l: Option<&Payload>, _: Option<&Payload>| {
        p.s = p.v + l.map_or(0, |l| l.v);
    };
    let mut tree = complete_tree(16, &|i| Payload { v: i as i64, s: 0 });
    capability.run_fused2(&mut tree, &scale, &shift);
    println!(
        "root after fused run: v = {}, s = {}",
        tree.value.v, tree.value.s
    );

    // A second, identical query is answered from the verdict cache.
    let again = VerifiedFusion::verify_with(&verifier, &original, &fused).expect("cached verdict");
    let stats = verifier.cache_stats();
    println!(
        "re-verified instantly from cache ({} hit / {} miss): {} models",
        stats.hits,
        stats.misses,
        again.trees_checked(),
    );
}
