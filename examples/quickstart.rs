//! Quickstart: write a pair of Retreet traversals, let the certified
//! transform layer *synthesize* their fusion, and run the fused schedule on
//! a real tree.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use retreet_lang::parse_program;
use retreet_runtime::tree::complete_tree;
use retreet_runtime::visit::NodeVisitor;
use retreet_runtime::VerifiedFusion;
use retreet_transform::fuse_main_passes;
use retreet_verify::Verifier;

fn main() {
    // Two simple traversals over the same tree: `Scale` doubles every node's
    // value, `Shift` then adds the left child's value to each node.
    let original = parse_program(
        r#"
        fn Scale(n) {
            if (n == nil) { return 0; } else {
                a = Scale(n.l);
                b = Scale(n.r);
                n.v = n.v + n.v;
                return 0;
            }
        }
        fn Shift(n) {
            if (n == nil) { return 0; } else {
                a = Shift(n.l);
                b = Shift(n.r);
                if (n.l == nil) {
                    n.s = n.v;
                } else {
                    n.s = n.v + n.l.v;
                }
                return 0;
            }
        }
        fn Main(n) {
            x = Scale(n);
            y = Shift(n);
            return 0;
        }
        "#,
    )
    .expect("original parses");

    // Build the verifier once: one budget, the full engine portfolio, and a
    // verdict cache that makes repeated legality questions O(1).
    let verifier = Verifier::builder()
        .max_nodes(5)
        .valuations(3)
        .parallel(true)
        .build();

    // Ask the transform layer to fuse the two passes of `Main`.  The fused
    // program is synthesized at the AST level and only returned with an
    // equivalence certificate from the verifier.
    let certified = fuse_main_passes(&verifier, &original)
        .expect("the fusion is equivalent to the two-pass original");
    println!(
        "synthesized this fused traversal:\n{}",
        certified.transformed_source()
    );
    println!("{}", certified.certificate);

    // Exchange the certificate for the runtime capability and run the fused
    // schedule on a concrete tree.
    let capability = VerifiedFusion::from_certified(&certified).expect("equivalence certificate");
    #[derive(Clone, Default)]
    struct Payload {
        v: i64,
        s: i64,
    }
    let scale = |p: &mut Payload, _: Option<&Payload>, _: Option<&Payload>| p.v *= 2;
    let shift = |p: &mut Payload, l: Option<&Payload>, _: Option<&Payload>| {
        p.s = p.v + l.map_or(0, |l| l.v);
    };
    let mut tree = complete_tree(16, &|i| Payload { v: i as i64, s: 0 });
    let passes: [&dyn NodeVisitor<Payload>; 2] = [&scale, &shift];
    capability.run_fused(&mut tree, &passes);
    println!(
        "root after fused run: v = {}, s = {}",
        tree.value.v, tree.value.s
    );

    // The compiled execution tier: the certified fused program is lowered
    // to register bytecode (self-recursive passes become worklist loops,
    // each lowering certified by an equivalence verdict) and runs on the
    // VM, with the reference interpreter as the differential baseline.
    use retreet_analysis::interp;
    use retreet_analysis::vtree::ValueTree;
    use retreet_lang::blocks::BlockTable;
    use retreet_runtime::ProgramExecutor;
    use std::time::Instant;

    let executor = ProgramExecutor::with_verifier(&verifier, &certified.transformed);
    let fields = ["s", "v"];
    let mut vtree = ValueTree::complete(12, &fields, |_, _| 0);
    vtree.fill_fields(&fields, 1);
    let table = BlockTable::build(&certified.transformed);
    let start = Instant::now();
    let reference = interp::run_with_table(&table, &vtree).expect("interpreter runs");
    let interp_time = start.elapsed();
    let start = Instant::now();
    let outcome = executor.run(&vtree).expect("compiled run");
    let vm_time = start.elapsed();
    assert_eq!(reference.returns, outcome.returns);
    println!(
        "compiled tier ({}, {} certified lowerings): interpreter {:?} vs VM {:?} ({:.2}x)",
        outcome.tier,
        executor.lowerings().len(),
        interp_time,
        vm_time,
        interp_time.as_secs_f64() / vm_time.as_secs_f64().max(1e-9)
    );

    // A second, identical query is answered from the verdict cache.
    let again = fuse_main_passes(&verifier, &original).expect("cached verdict");
    let stats = verifier.cache_stats();
    println!(
        "re-certified instantly from cache ({} hit / {} miss): {} models",
        stats.hits,
        stats.misses,
        again.certificate.trees_checked(),
    );

    // The serving surface: a batch of queries fans out over worker threads
    // and comes back in input order; identical queries coalesce onto one
    // engine run (the `retreet-serve` crate speaks NDJSON over this).
    use retreet_verify::Query;
    let racy = retreet_lang::corpus::cycletree_parallel();
    let queries = [
        Query::DataRace(&original),
        Query::DataRace(&racy),
        Query::DataRace(&original),
    ];
    for (i, result) in verifier.verify_batch(&queries).iter().enumerate() {
        println!("batch[{i}]: {}", result.as_ref().expect("well-formed"));
    }
    let serving = verifier.serving_stats();
    println!(
        "serving stats: {} engine runs, {} cancelled, {} coalesced",
        serving.engine_runs, serving.cancelled_runs, serving.coalesced
    );
}
