//! Paper-style verdicts for the k-ary workload family: the ternary `Sum`
//! race/equivalence trio and the k-d find-closest-point pair must answer
//! through the same façade portfolio — and with the same verdict shapes —
//! as the binary §5 corpus.

use retreet_lang::corpus;
use retreet_transform::CertificateKind;
use retreet_verify::{Outcome, Query, Verifier};

fn verifier() -> Verifier {
    Verifier::builder()
        .race_nodes(4)
        .equiv_nodes(4)
        .valuations(2)
        .build()
}

#[test]
fn the_parallel_ternary_sum_is_race_free() {
    let program = corpus::ternary_sum_parallel();
    assert_eq!(program.arity, 3);
    let verdict = verifier()
        .verify(Query::DataRace(&program))
        .expect("race query answers");
    assert!(
        verdict.is_race_free(),
        "disjoint ternary subtrees must certify, got {:?}",
        verdict.outcome
    );
}

#[test]
fn the_racy_ternary_sum_is_refused_with_a_witness() {
    let program = corpus::ternary_sum_racy();
    let verdict = verifier()
        .verify(Query::DataRace(&program))
        .expect("race query answers");
    assert!(
        matches!(verdict.outcome, Outcome::Race { .. }),
        "both branches write the middle child's subtree, got {:?}",
        verdict.outcome
    );
    let witness = verdict
        .race_witness()
        .expect("a refusal carries the concrete conflict");
    assert!(!witness.field.is_empty());
}

#[test]
fn sequential_and_parallel_ternary_sums_are_equivalent() {
    let sequential = corpus::ternary_sum_sequential();
    let parallel = corpus::ternary_sum_parallel();
    let verdict = verifier()
        .verify(Query::Equivalence(&sequential, &parallel))
        .expect("equivalence query answers");
    assert!(
        verdict.is_equivalent(),
        "the parallel schedule computes the same sums, got {:?}",
        verdict.outcome
    );
}

#[test]
fn the_kdtree_pair_certifies_and_fuses() {
    let program = corpus::kdtree_closest();
    let verifier = verifier();
    let race = verifier
        .verify(Query::DataRace(&program))
        .expect("race query answers");
    assert!(race.is_race_free(), "got {:?}", race.outcome);
    let fused = retreet_transform::fuse_main_passes(&verifier, &program)
        .expect("ComputeDist; FoldMin fuses into one traversal");
    assert_eq!(fused.certificate.kind, CertificateKind::Equivalence);
}
