//! The chaos differential suite: deterministic fault storms against the
//! verifier and the serving tier.
//!
//! Faults are injected by a seeded `FaultPlan` (engine panics and stalls,
//! store write errors / torn writes / silent corruption, connection drops
//! mid-response).  Which *draw* lands on which operation depends on thread
//! scheduling, so these tests assert **invariants**, not exact fault
//! sequences:
//!
//! * **Never a wrong verdict** — under any engine-fault storm, every
//!   answered query carries the same outcome as a fault-free reference
//!   run; failures surface as *typed* errors, never as a truncated or
//!   invented verdict.
//! * **Recovery completeness** — whatever subset of verdicts survived a
//!   store-fault storm on disk is replayed byte-identically after a
//!   restart, with exact hit accounting.
//! * **Kill-then-restart** — with no store faults, a restarted service
//!   serves 100% of its prior corpus from the recovered store, witnesses
//!   byte-identical, zero engine runs — even with torn garbage appended
//!   to the log (a crash mid-append).
//! * **Blast-radius** — a dropped connection or an engine panic is
//!   confined to its request/connection; the shared service keeps
//!   serving and its accounting stays consistent.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use retreet_repro::retreet_lang::ast::Program;
use retreet_repro::retreet_lang::corpus;
use retreet_repro::retreet_serve::{json, serve_tcp, ServeOptions, Service};
use retreet_repro::retreet_verify::{FaultPlan, Query, Verifier, VerifyError};

/// Every corpus program as NDJSON-embeddable source (mirrors
/// `corpus::all()`, which only exposes parsed ASTs).
const CORPUS_SOURCES: [&str; 17] = [
    corpus::SIZE_COUNTING_PARALLEL_SRC,
    corpus::SIZE_COUNTING_SEQUENTIAL_SRC,
    corpus::SIZE_COUNTING_FUSED_SRC,
    corpus::SIZE_COUNTING_FUSED_INVALID_SRC,
    corpus::TREE_MUTATION_ORIGINAL_SRC,
    corpus::TREE_MUTATION_FUSED_SRC,
    corpus::CSS_MINIFY_ORIGINAL_SRC,
    corpus::CSS_MINIFY_FUSED_SRC,
    corpus::CYCLETREE_ORIGINAL_SRC,
    corpus::CYCLETREE_FUSED_SRC,
    corpus::CYCLETREE_PARALLEL_SRC,
    corpus::DISJOINT_PARALLEL_SRC,
    corpus::OVERLAPPING_PARALLEL_SRC,
    corpus::KDTREE_CLOSEST_SRC,
    corpus::TERNARY_SUM_SEQUENTIAL_SRC,
    corpus::TERNARY_SUM_PARALLEL_SRC,
    corpus::TERNARY_SUM_RACY_SRC,
];

/// A fresh store path under the OS temp dir, unique per test.
fn temp_store(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("retreet-chaos-{tag}-{}.rslog", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Fault-free reference verdicts (`true` = race-free) for every corpus
/// race query.  Under a fault storm a *different* engine may answer than
/// in the reference run, so witness details and work counters can vary —
/// the soundness invariant is the verdict polarity: a storm may delay or
/// refuse an answer, but never flip it.
fn reference_outcomes() -> Vec<(&'static str, Program, bool)> {
    let reference = Verifier::builder().max_nodes(3).valuations(1).build();
    corpus::all()
        .into_iter()
        .map(|(name, program)| {
            let verdict = reference.verify(Query::DataRace(&program)).unwrap();
            let race_free = verdict.is_race_free();
            (name, program, race_free)
        })
        .collect()
}

#[test]
fn engine_fault_storms_never_produce_a_wrong_verdict() {
    let reference = reference_outcomes();
    let mut answered = 0u64;
    let mut errored = 0u64;
    let mut faults_seen = 0u64;
    for seed in [1u64, 7, 42] {
        for parallel in [false, true] {
            // Caches off: every query is a real portfolio dispatch under
            // the storm.
            let verifier = Verifier::builder()
                .max_nodes(3)
                .valuations(1)
                .parallel(parallel)
                .cache_capacity(0)
                .fault_plan(
                    FaultPlan::builder(seed)
                        .engine_panic(0.3)
                        .engine_stall(0.1, 2)
                        .build(),
                )
                .build();
            for round in 0..2 {
                for (name, program, race_free) in &reference {
                    match verifier.verify(Query::DataRace(program)) {
                        Ok(verdict) => {
                            answered += 1;
                            assert_eq!(
                                verdict.is_race_free(),
                                *race_free,
                                "seed {seed} parallel {parallel} round {round}: \
                                 {name} answered a WRONG verdict (degraded={})",
                                verdict.degraded
                            );
                        }
                        // Fail-closed failures must be typed, never panics.
                        Err(VerifyError::PortfolioFailed { .. })
                        | Err(VerifyError::NoApplicableEngine { .. })
                        | Err(VerifyError::DeadlineExceeded { .. }) => errored += 1,
                        Err(other) => {
                            panic!("seed {seed} {name}: unexpected error class {other}")
                        }
                    }
                }
            }
            faults_seen += verifier.fault_counts().unwrap().total();
        }
    }
    assert!(
        faults_seen > 0,
        "the storm must actually inject faults (saw none)"
    );
    assert!(
        answered > 0,
        "some queries must still answer under a 30% panic rate"
    );
    // Sanity: total accounting (every query either answered or errored).
    assert_eq!(answered + errored, 3 * 2 * 2 * reference.len() as u64);
}

#[test]
fn store_fault_storms_leave_a_recoverable_log_with_exact_hit_accounting() {
    let reference = reference_outcomes();
    let path = temp_store("store-storm");
    // Phase 1: compute the corpus under a store-fault storm.  Write
    // errors, torn frames and silent corruption all land in the log.
    {
        let verifier = Verifier::builder()
            .max_nodes(3)
            .valuations(1)
            .persist(&path)
            .fault_plan(
                FaultPlan::builder(99)
                    .store_write_error(0.2)
                    .store_torn_write(0.2)
                    .store_corruption(0.2)
                    .build(),
            )
            .build();
        for (_, program, _) in &reference {
            verifier.verify(Query::DataRace(program)).unwrap();
        }
        let counts = verifier.fault_counts().unwrap();
        assert!(
            counts.store_write_errors + counts.store_torn_writes + counts.store_corruptions > 0,
            "the storm must hit the store at least once: {counts:?}"
        );
        verifier.flush_store();
    }
    // Phase 2: restart without faults.  Whatever survived on disk loads;
    // corrupt records are skipped, torn tails truncated — never a crash,
    // never a wrong verdict.
    let restarted = Verifier::builder()
        .max_nodes(3)
        .valuations(1)
        .persist(&path)
        .build();
    let loaded = restarted.store_stats().unwrap().loaded;
    assert!(
        loaded <= reference.len() as u64,
        "cannot recover more than was computed"
    );
    for (name, program, race_free) in &reference {
        let verdict = restarted.verify(Query::DataRace(program)).unwrap();
        assert_eq!(
            verdict.is_race_free(),
            *race_free,
            "{name}: recovery must never resurface a wrong verdict"
        );
    }
    // Exact accounting: each recovered verdict was a hit, each lost one a
    // miss — nothing double-counted, nothing silently dropped.
    let cache = restarted.verifier_cache_stats_hits_misses();
    assert_eq!(cache.0 + cache.1, reference.len() as u64);
    assert_eq!(cache.0, loaded, "hits must equal recovered verdicts");
    let _ = std::fs::remove_file(&path);
}

/// Small shim so the test reads naturally above.
trait CacheHitsMisses {
    fn verifier_cache_stats_hits_misses(&self) -> (u64, u64);
}

impl CacheHitsMisses for Verifier {
    fn verifier_cache_stats_hits_misses(&self) -> (u64, u64) {
        let stats = self.cache_stats();
        (stats.hits, stats.misses)
    }
}

#[test]
fn kill_then_restart_serves_the_prior_corpus_byte_identically() {
    let path = temp_store("restart");
    let options = ServeOptions {
        race_nodes: 3,
        equiv_nodes: 3,
        validity_nodes: 3,
        valuations: 1,
        persist: Some(path.clone()),
        ..ServeOptions::default()
    };
    // Requests: every corpus race query plus one equivalence pair.
    let mut requests: Vec<String> = CORPUS_SOURCES
        .iter()
        .map(|source| format!(r#"{{"kind":"race","program":"{}"}}"#, json::escape(source)))
        .collect();
    requests.push(format!(
        r#"{{"kind":"equivalence","original":"{}","transformed":"{}"}}"#,
        json::escape(corpus::SIZE_COUNTING_SEQUENTIAL_SRC),
        json::escape(corpus::SIZE_COUNTING_FUSED_SRC)
    ));

    // Strip the fields that legitimately differ across processes (timing,
    // serving provenance); everything else — verdict, witness detail,
    // engine, soundness — must be byte-identical after restart.
    fn stable_fields(response: &str) -> String {
        let parsed = json::parse(response).expect("valid response");
        let object = parsed.as_object().expect("object response");
        [
            "status",
            "kind",
            "verdict",
            "positive",
            "engine",
            "soundness",
            "detail",
        ]
        .iter()
        .map(|key| {
            format!(
                "{key}={}",
                object.get(*key).map(|v| v.to_string()).unwrap_or_default()
            )
        })
        .collect::<Vec<_>>()
        .join("|")
    }

    let before: Vec<String> = {
        let service = Service::new(&options);
        let answers: Vec<String> = requests.iter().map(|r| service.handle_line(r)).collect();
        for answer in &answers {
            assert!(answer.contains(r#""status":"ok""#), "{answer}");
        }
        answers.iter().map(|a| stable_fields(a)).collect()
        // The service is dropped WITHOUT Service::finish — the log must be
        // crash-safe with no graceful flush.
    };

    // Simulate a crash mid-append: torn garbage at the tail of the log.
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("log exists");
        file.write_all(&[0xA7, 0xFF, 0x13, 0x37]).unwrap();
    }

    // Restart: every prior verdict must be served from the recovered
    // store — cache hits, byte-identical stable fields, zero engine runs.
    let service = Service::new(&options);
    let stats = service.verifier().store_stats().unwrap();
    assert_eq!(
        stats.loaded,
        requests.len() as u64,
        "every prior verdict must recover: {stats:?}"
    );
    assert!(stats.truncated_bytes > 0, "the torn tail was truncated");
    for (request, expected) in requests.iter().zip(&before) {
        let response = service.handle_line(request);
        assert!(
            response.contains(r#""cached":true"#),
            "restart must serve from the recovered store: {response}"
        );
        assert_eq!(
            &stable_fields(&response),
            expected,
            "witness drifted across the restart"
        );
    }
    assert_eq!(
        service.verifier().serving_stats().engine_runs,
        0,
        "nothing may be recomputed after recovery"
    );
    let hits = service.verifier().cache_stats().hits;
    assert_eq!(hits, requests.len() as u64, "100% warm-hit after restart");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dropped_connections_are_confined_and_the_service_stays_healthy() {
    let service = Arc::new(Service::new(&ServeOptions {
        race_nodes: 3,
        equiv_nodes: 3,
        validity_nodes: 3,
        valuations: 1,
        faults: Some(Arc::new(FaultPlan::builder(5).connection_drop(0.4).build())),
        ..ServeOptions::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::clone(&service);
    let acceptor = std::thread::spawn(move || serve_tcp(server, listener));

    const CLIENTS: usize = 10;
    let mut delivered = 0usize;
    let mut dropped = 0usize;
    for client in 0..CLIENTS {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        let request = format!(
            "{{\"id\": {client}, \"kind\": \"validity\", \"formula\": \"(exists x (root x))\"}}\n"
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(_) if line.ends_with('\n') && json::parse(line.trim()).is_ok() => {
                assert!(line.contains(r#""verdict":"valid""#), "{line}");
                delivered += 1;
            }
            // A partial line (no newline / unparsable) or an early EOF is
            // the injected drop: this connection died, nothing more.
            _ => dropped += 1,
        }
    }
    assert_eq!(delivered + dropped, CLIENTS);
    assert!(dropped > 0, "a 40% drop rate over 10 responses should fire");
    assert!(delivered > 0, "some responses should still get through");
    // Every request was handled exactly once regardless of its write fate,
    // and the service still answers new work directly.
    assert_eq!(service.requests_handled(), CLIENTS as u64);
    let direct = service.handle_line(r#"{"kind": "stats"}"#);
    assert!(direct.contains(r#""status":"ok""#), "{direct}");

    // Shut the acceptor down so the test exits cleanly.
    service.handle_line(r#"{"kind": "shutdown"}"#);
    acceptor.join().unwrap().unwrap();
}

#[test]
fn graceful_shutdown_loses_no_inflight_response() {
    // A slow cold query is in flight on one connection while another
    // requests shutdown: the drain must deliver the slow response before
    // the acceptor exits.
    let service = Arc::new(Service::new(&ServeOptions {
        race_nodes: 3,
        equiv_nodes: 3,
        validity_nodes: 3,
        valuations: 1,
        drain_ms: 10_000,
        faults: Some(Arc::new(
            FaultPlan::builder(3).engine_stall(1.0, 700).build(),
        )),
        ..ServeOptions::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::clone(&service);
    let acceptor = std::thread::spawn(move || serve_tcp(server, listener));

    // c1: a cold race query, stalled ~700 ms per engine run.
    let c1 = TcpStream::connect(addr).unwrap();
    c1.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut c1_reader = BufReader::new(c1.try_clone().unwrap());
    let mut c1 = c1;
    let request = format!(
        "{{\"id\": 1, \"kind\": \"race\", \"program\": \"{}\"}}\n",
        json::escape(corpus::SIZE_COUNTING_PARALLEL_SRC)
    );
    c1.write_all(request.as_bytes()).unwrap();
    // Let c1's query reach the cold lane before shutdown arrives.
    std::thread::sleep(Duration::from_millis(150));
    assert!(!service.is_shutting_down());

    // c2: shutdown.
    let c2 = TcpStream::connect(addr).unwrap();
    let mut c2_reader = BufReader::new(c2.try_clone().unwrap());
    let mut c2 = c2;
    c2.write_all(b"{\"id\": 2, \"kind\": \"shutdown\"}\n")
        .unwrap();
    let mut line = String::new();
    c2_reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""draining":true"#), "{line}");

    // c1 still receives its full verdict — the in-flight response is not
    // lost to the shutdown.
    let mut line = String::new();
    c1_reader.read_line(&mut line).unwrap();
    assert!(
        line.contains(r#""status":"ok""#),
        "in-flight response lost: {line}"
    );
    assert!(line.contains(r#""verdict":"race-free""#), "{line}");

    // The acceptor drained and exited cleanly.
    acceptor.join().unwrap().unwrap();
    assert!(service.is_shutting_down());
}

#[test]
fn excess_connections_are_refused_at_accept_with_overloaded() {
    let service = Arc::new(Service::new(&ServeOptions {
        race_nodes: 3,
        equiv_nodes: 3,
        validity_nodes: 3,
        valuations: 1,
        max_connections: 2,
        ..ServeOptions::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::clone(&service);
    let acceptor = std::thread::spawn(move || serve_tcp(server, listener));

    let round_trip = |stream: &mut TcpStream, reader: &mut BufReader<TcpStream>| -> String {
        stream
            .write_all(b"{\"kind\": \"stats\"}\n")
            .expect("write request");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        line
    };
    let connect = || {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    };

    // Two connections are served…
    let (mut c1, mut r1) = connect();
    assert!(round_trip(&mut c1, &mut r1).contains(r#""status":"ok""#));
    let (mut c2, mut r2) = connect();
    assert!(round_trip(&mut c2, &mut r2).contains(r#""status":"ok""#));
    // …the third is refused at accept time with one typed error line.
    let (_c3, mut r3) = connect();
    let mut line = String::new();
    r3.read_line(&mut line).expect("read refusal");
    assert!(line.contains(r#""code":"overloaded""#), "{line}");
    let mut rest = String::new();
    assert_eq!(r3.read_line(&mut rest).unwrap(), 0, "refused then closed");

    // Freeing a slot readmits new clients.
    drop(c1);
    drop(r1);
    std::thread::sleep(Duration::from_millis(200));
    let (mut c4, mut r4) = connect();
    assert!(
        round_trip(&mut c4, &mut r4).contains(r#""status":"ok""#),
        "a freed slot must be reusable"
    );

    c4.write_all(b"{\"kind\": \"shutdown\"}\n").unwrap();
    let mut line = String::new();
    r4.read_line(&mut line).unwrap();
    assert!(line.contains(r#""draining":true"#), "{line}");
    acceptor.join().unwrap().unwrap();
}
