//! Integration tests for the unified `Verifier` façade: the engine
//! portfolio must be internally consistent (engines agree wherever their
//! domains overlap, across the whole §5 corpus), and the verdict cache must
//! serve repeated queries with identical witnesses.

use retreet_lang::corpus;
use retreet_mso::formula::{FoVar, Formula};
use retreet_verify::{Engine, Outcome, Query, Soundness, Verifier, VerifyError};

fn verifier() -> Verifier {
    Verifier::builder().max_nodes(3).valuations(1).build()
}

#[test]
fn configuration_and_trace_engines_agree_on_every_corpus_program() {
    let verifier = verifier();
    for (name, program) in corpus::all() {
        let by_configuration = verifier
            .verify_with_engine(Engine::Configuration, Query::DataRace(&program))
            .unwrap_or_else(|e| panic!("{name}: configuration engine failed: {e}"));
        let by_trace = verifier
            .verify_with_engine(Engine::Trace, Query::DataRace(&program))
            .unwrap_or_else(|e| panic!("{name}: trace engine failed: {e}"));
        assert_eq!(
            by_configuration.is_race_free(),
            by_trace.is_race_free(),
            "{name}: configuration said {:?}, trace said {:?}",
            by_configuration.outcome,
            by_trace.outcome
        );
        assert_eq!(by_configuration.engine, Engine::Configuration);
        assert_eq!(by_trace.engine, Engine::Trace);
    }
}

#[test]
fn portfolio_certifies_every_corpus_fusion_pair_unbounded() {
    // The §5 fusion pairs, with the expected verdicts.
    let verifier = Verifier::builder().equiv_nodes(4).valuations(2).build();
    let pairs = [
        (
            "E1a",
            corpus::size_counting_sequential(),
            corpus::size_counting_fused(),
            true,
        ),
        (
            "E1b",
            corpus::size_counting_sequential(),
            corpus::size_counting_fused_invalid(),
            false,
        ),
        (
            "E2",
            corpus::tree_mutation_original(),
            corpus::tree_mutation_fused(),
            true,
        ),
        (
            "E3",
            corpus::css_minify_original(),
            corpus::css_minify_fused(),
            true,
        ),
        (
            "E4a",
            corpus::cycletree_original(),
            corpus::cycletree_fused(),
            true,
        ),
    ];
    for (id, original, transformed, expected) in pairs {
        let verdict = verifier
            .verify(Query::Equivalence(&original, &transformed))
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(
            verdict.is_equivalent(),
            expected,
            "{id}: {:?}",
            verdict.outcome
        );
        // The automata tier answers every §5 fusion pair: the correct
        // fusions via an established correspondence, the invalid one via a
        // delegated counterexample search — unbounded either way.
        assert_eq!(verdict.engine, Engine::Automata, "{id}");
        assert_eq!(verdict.soundness, Soundness::Unbounded, "{id}");
    }
}

#[test]
fn automata_and_bounded_engines_agree_on_validity() {
    let verifier = Verifier::builder().validity_nodes(4).build();
    let formulas = vec![
        // Valid: some node is the root.
        Formula::exists_fo("x", Formula::Root(FoVar::new("x"))),
        // Invalid: every node is a leaf.
        Formula::forall_fo("x", Formula::Leaf(FoVar::new("x"))),
        // Valid: the root reaches every node.
        Formula::forall_fo(
            "r",
            Formula::implies(
                Formula::Root(FoVar::new("r")),
                Formula::forall_fo("y", Formula::Reach(FoVar::new("r"), FoVar::new("y"))),
            ),
        ),
        // Invalid: every node has a left child.
        Formula::forall_fo(
            "a",
            Formula::exists_fo("b", Formula::Left(FoVar::new("a"), FoVar::new("b"))),
        ),
    ];
    for formula in &formulas {
        let by_automata = verifier
            .verify_with_engine(Engine::Automata, Query::Validity(formula))
            .expect("automata engine answers the core fragment");
        let by_bounded = verifier
            .verify_with_engine(Engine::BoundedEnumeration, Query::Validity(formula))
            .expect("bounded engine answers closed formulas");
        assert_eq!(
            by_automata.is_valid(),
            by_bounded.is_valid(),
            "engines disagree on {formula:?}"
        );
        assert_eq!(by_automata.soundness, Soundness::Unbounded);
        if by_bounded.is_valid() {
            assert!(matches!(
                by_bounded.soundness,
                Soundness::BoundedUpTo { max_nodes: 4 }
            ));
        }
    }
}

#[test]
fn second_identical_query_returns_a_cached_verdict_with_identical_witness() {
    let verifier = verifier();
    let program = corpus::cycletree_parallel();

    let first = verifier.verify(Query::DataRace(&program)).unwrap();
    assert!(!first.cached);
    let witness_before = format!("{:?}", first.race_witness().expect("race witness"));

    // The second query must be a cache hit carrying the same witness, even
    // through an independently parsed (but textually identical) program.
    let reparsed = retreet_lang::parse_program(corpus::CYCLETREE_PARALLEL_SRC).unwrap();
    let second = verifier.verify(Query::DataRace(&reparsed)).unwrap();
    assert!(second.cached, "identical query should hit the cache");
    assert_eq!(
        witness_before,
        format!("{:?}", second.race_witness().expect("race witness")),
        "cached verdict must carry the identical witness"
    );
    assert_eq!(second.engine, first.engine);

    let stats = verifier.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}

#[test]
fn different_budgets_do_not_share_cache_entries() {
    // Same query, different max_nodes: the fingerprint must keep them
    // apart.  The portfolio is pinned to the bounded configuration engine
    // so the verdicts actually depend on the budget (the automata engine
    // would answer both budgets identically, with no trees checked).
    let program = corpus::size_counting_parallel();
    let small = Verifier::builder()
        .max_nodes(2)
        .valuations(1)
        .engines([Engine::Configuration])
        .build();
    let a = small.verify(Query::DataRace(&program)).unwrap();
    let big = Verifier::builder()
        .max_nodes(3)
        .valuations(1)
        .engines([Engine::Configuration])
        .build();
    let b = big.verify(Query::DataRace(&program)).unwrap();
    assert!(a.trees_checked() < b.trees_checked());
}

#[test]
fn facade_and_legacy_entry_points_agree() {
    // The per-crate engine entry points underpin the façade; both routes
    // must produce the same verdicts on the headline queries.
    let verifier = Verifier::builder()
        .race_nodes(3)
        .equiv_nodes(4)
        .valuations(1)
        .build();
    let race = verifier
        .verify(Query::DataRace(&corpus::size_counting_parallel()))
        .unwrap();
    let legacy_race = retreet_analysis::race::check_data_race(
        &corpus::size_counting_parallel(),
        &retreet_analysis::race::RaceOptions::builder()
            .max_nodes(3)
            .valuations(1)
            .build(),
    );
    assert_eq!(race.is_race_free(), legacy_race.is_race_free());

    let equiv = verifier
        .verify(Query::Equivalence(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
        ))
        .unwrap();
    let legacy_equiv = retreet_analysis::equiv::check_equivalence(
        &corpus::size_counting_sequential(),
        &corpus::size_counting_fused(),
        &retreet_analysis::equiv::EquivOptions::builder()
            .max_nodes(4)
            .valuations(1)
            .build(),
    );
    assert_eq!(equiv.is_equivalent(), legacy_equiv.is_equivalent());
}

#[test]
fn parallel_portfolio_serves_all_corpus_race_queries() {
    let verifier = Verifier::builder()
        .max_nodes(3)
        .valuations(1)
        .parallel(true)
        .build();
    let reference = Verifier::builder().max_nodes(3).valuations(1).build();
    for (name, program) in corpus::all() {
        let portfolio = verifier.verify(Query::DataRace(&program));
        let sequential = reference.verify(Query::DataRace(&program));
        match (portfolio, sequential) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.is_race_free(),
                b.is_race_free(),
                "{name}: parallel portfolio disagrees with sequential dispatch"
            ),
            (a, b) => panic!("{name}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn validity_queries_route_to_the_automata_engine_by_default() {
    let verifier = Verifier::with_defaults();
    let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
    let verdict = verifier.verify(Query::Validity(&formula)).unwrap();
    assert!(verdict.is_valid());
    assert_eq!(verdict.engine, Engine::Automata);
    assert_eq!(verdict.soundness, Soundness::Unbounded);
    match verdict.outcome {
        Outcome::Valid { trees_checked } => assert_eq!(trees_checked, 0),
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn typed_errors_replace_string_errors() {
    let verifier = verifier();
    let no_main = retreet_lang::parse_program("fn Orphan(n) { return 0; }").unwrap();
    let err = verifier.verify(Query::DataRace(&no_main)).unwrap_err();
    match &err {
        VerifyError::InvalidProgram { role, message } => {
            assert_eq!(*role, retreet_verify::ProgramRole::Queried);
            assert!(!message.is_empty());
        }
        other => panic!("expected InvalidProgram, got {other:?}"),
    }
    // And the hierarchy renders a readable message.
    assert!(err.to_string().contains("invalid queried program"));
}
