//! End-to-end pipeline tests: parse → validate → analyse → execute, across
//! crates, for the two real-world substrates.

use retreet_css::css::generate_stylesheet;
use retreet_css::minify::{minify_fused, minify_reference, minify_unfused};
use retreet_cycletree::numbering::{
    complete_cycletree, cycle_order, fused_number_and_route, number_cycletree, random_cycletree,
};
use retreet_cycletree::routing::{compute_routing, route_path};
use retreet_lang::{corpus, parse_program, pretty, validate, BlockTable};
use retreet_runtime::{VerifiedFusion, VerifiedParallelization};
use retreet_verify::Verifier;

#[test]
fn corpus_programs_round_trip_through_the_pretty_printer() {
    for (name, program) in corpus::all() {
        let printed = pretty::print_program(&program);
        let reparsed = parse_program(&printed).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            BlockTable::build(&program).len(),
            BlockTable::build(&reparsed).len(),
            "{name} changed block count through print/parse"
        );
        assert!(validate::validate(&reparsed).is_empty(), "{name}");
    }
}

#[test]
fn css_pipeline_from_source_text_to_minified_output() {
    let sheet = generate_stylesheet(200, 123);
    let reference = minify_reference(&sheet);
    assert_eq!(minify_unfused(&sheet), reference);
    assert_eq!(minify_fused(&sheet), reference);
    assert!(reference.serialized_len() <= sheet.serialized_len());
    // And the corresponding Retreet-level fusion is certified.
    let verifier = Verifier::builder().equiv_nodes(4).valuations(1).build();
    assert!(VerifiedFusion::verify_with(
        &verifier,
        &corpus::css_minify_original(),
        &corpus::css_minify_fused(),
    )
    .is_ok());
}

#[test]
fn cycletree_pipeline_constructs_and_routes() {
    let mut two_pass = complete_cycletree(8);
    number_cycletree(&mut two_pass);
    compute_routing(&mut two_pass);
    let mut fused = complete_cycletree(8);
    fused_number_and_route(&mut fused);
    assert_eq!(two_pass, fused);
    // Routing works between arbitrary cycle positions.
    let n = fused.len() as i64;
    for (from, to) in [(0, n - 1), (n / 2, 1), (3, 3)] {
        let path = route_path(&fused, from, to);
        assert_eq!(*path.last().unwrap(), to);
    }
    // The cycle order covers every node exactly once.
    let order = cycle_order(&fused);
    assert_eq!(order.len(), fused.len());
}

#[test]
fn parallelization_capability_is_refused_for_the_racy_cycletree_main() {
    let verifier = Verifier::builder().race_nodes(3).valuations(1).build();
    assert!(
        VerifiedParallelization::verify_with(&verifier, &corpus::cycletree_parallel()).is_err()
    );
    assert!(
        VerifiedParallelization::verify_with(&verifier, &corpus::size_counting_parallel()).is_ok()
    );
}

#[test]
fn irregular_cycletrees_still_number_and_route_correctly() {
    for seed in 0..4 {
        let mut tree = random_cycletree(50, seed);
        fused_number_and_route(&mut tree);
        let mut nums: Vec<i64> = tree.preorder().into_iter().map(|n| n.num).collect();
        nums.sort_unstable();
        assert_eq!(nums, (0..50).collect::<Vec<_>>());
        for to in [0, 17, 49] {
            assert_eq!(*route_path(&tree, 0, to).last().unwrap(), to);
        }
    }
}
