//! Differential tests for the bytecode-VM execution tier: on every program
//! and tree we can enumerate or generate, the `retreet-codegen` VM must be
//! observationally identical to the reference interpreter — same returns,
//! same post-run tree, same error class — and every iterative lowering the
//! compiler applies must carry an equivalence certificate.

use proptest::prelude::*;
use retreet_analysis::interp;
use retreet_analysis::vtree::ValueTree;
use retreet_codegen::{
    certify_lowering, compile, compile_with_lowering, lower_function, trees_agree, LoweringError,
    Vm,
};
use retreet_lang::blocks::BlockTable;
use retreet_lang::{ast::Program, corpus};
use retreet_transform::{fuse_main_passes, synthesize_parallel_main};
use retreet_verify::Verifier;

/// Runs `program` on `tree` through both tiers and asserts they agree:
/// identical returns and semantically identical trees on success, same
/// error class on failure.
fn assert_tiers_agree(label: &str, program: &Program, compiled_vm: &mut Vm, tree: &ValueTree) {
    let table = BlockTable::build(program);
    let compiled = compile(program).unwrap_or_else(|e| panic!("{label}: compile failed: {e}"));
    match (
        interp::run_with_table(&table, tree),
        compiled_vm.run(&compiled, tree),
    ) {
        (Ok(expected), Ok(actual)) => {
            assert_eq!(
                expected.returns, actual.returns,
                "{label}: VM returns diverged from the interpreter"
            );
            assert!(
                trees_agree(&expected.tree, &actual.tree),
                "{label}: VM post-run tree diverged from the interpreter"
            );
        }
        (Err(_), Err(_)) => {}
        (exp, act) => panic!("{label}: tier disagreement: interp={exp:?} vm={act:?}"),
    }
}

/// Field names used by a program, as owned strings (for tree construction).
fn fields_of(program: &Program) -> Vec<String> {
    retreet_codegen::program_fields(program)
}

#[test]
fn vm_matches_interpreter_on_the_full_corpus() {
    let mut vm = Vm::new();
    for (name, program) in corpus::all() {
        let fields = fields_of(&program);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        for height in [1, 3, 6] {
            for seed in [0u64, 11, 42] {
                let mut tree = ValueTree::complete(height, &field_refs, |_, _| 0);
                tree.fill_fields(&field_refs, seed);
                assert_tiers_agree(name, &program, &mut vm, &tree);
            }
        }
    }
}

#[test]
fn vm_matches_interpreter_on_nested_par_programs() {
    // Nested `Par` exercises the per-Par flag discipline: a return in an
    // earlier sibling branch of an outer Par must not satisfy the
    // post-branch check of a nested Par in a later branch, and a nested
    // Par's return must propagate outward with last-return-wins.
    let sources = [
        // Nested Par after an early-returning sibling branch.
        "fn Main(n) { { return 1; || { n.a = 1; || n.b = 2; } n.c = 3; } return 0; }",
        // Inner return skips the rest of its branch but not its siblings.
        "fn Main(n) { { { n.a = 1; return 5; || n.b = 2; } n.c = 3; || n.d = 4; } return 9; }",
        // Last return wins across nesting levels.
        "fn Main(n) { { return 1; || { return 2; || n.a = 1; } n.b = 7; } return 0; }",
        // Three levels deep, returns at every level.
        "fn Main(n) { { return 1; || { { n.a = 1; || return 3; } n.b = 2; || n.c = 5; } n.d = 6; \
         || n.e = 7; } return 0; }",
        // Sequential sibling Pars inside one branch.
        "fn Main(n) { { return 4; || { n.a = 1; || n.b = 2; } { n.c = 3; || n.d = 9; } n.e = 8; } \
         return 0; }",
    ];
    let mut vm = Vm::new();
    for (i, source) in sources.iter().enumerate() {
        let program =
            retreet_lang::parser::parse_program(source).unwrap_or_else(|e| panic!("case {i}: {e}"));
        let fields = fields_of(&program);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        for height in [1, 3] {
            let mut tree = ValueTree::complete(height, &field_refs, |_, _| 0);
            tree.fill_fields(&field_refs, 2);
            assert_tiers_agree(&format!("nested-par case {i}"), &program, &mut vm, &tree);
        }
    }
}

#[test]
fn vm_matches_interpreter_on_exhaustive_bounded_trees() {
    let mut vm = Vm::new();
    for (name, program) in corpus::all() {
        let fields = fields_of(&program);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        for tree in retreet_analysis::vtree::test_trees(5, &field_refs, 2) {
            assert_tiers_agree(name, &program, &mut vm, &tree);
        }
    }
}

#[test]
fn vm_matches_interpreter_on_generated_fused_and_parallel_programs() {
    let verifier = Verifier::builder().build();
    let mut vm = Vm::new();
    for (name, program) in corpus::all() {
        let fields = fields_of(&program);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let mut tree = ValueTree::complete(5, &field_refs, |_, _| 0);
        tree.fill_fields(&field_refs, 3);
        if let Ok(fused) = fuse_main_passes(&verifier, &program) {
            assert_tiers_agree(
                &format!("{name} (fused)"),
                &fused.transformed,
                &mut vm,
                &tree,
            );
        }
        if let Ok(parallel) = synthesize_parallel_main(&verifier, &program) {
            assert_tiers_agree(
                &format!("{name} (parallel)"),
                &parallel.transformed,
                &mut vm,
                &tree,
            );
        }
    }
}

#[test]
fn certified_lowering_is_present_and_agrees_on_a_section5_program() {
    let verifier = Verifier::builder().build();
    let program = corpus::tree_mutation_original();
    let compiled = compile_with_lowering(&verifier, &program).expect("compiles");
    assert!(
        !compiled.lowerings.is_empty(),
        "tree mutation's self-recursive passes should lower to worklist loops"
    );
    for cert in &compiled.lowerings {
        assert!(
            cert.verdict.is_equivalent(),
            "{}: lowering shipped without an equivalence certificate",
            cert.func
        );
    }
    let mut vm = Vm::new();
    let mut tree = ValueTree::complete(7, &["v"], |_, _| 0);
    tree.fill_fields(&["v"], 5);
    let table = BlockTable::build(&program);
    let expected = interp::run_with_table(&table, &tree).expect("interpreter runs");
    let actual = vm.run(&compiled, &tree).expect("VM runs");
    assert_eq!(expected.returns, actual.returns);
    assert!(trees_agree(&expected.tree, &actual.tree));
}

#[test]
fn uncertifiable_lowering_is_refused_with_a_witness() {
    let verifier = Verifier::builder().build();
    let program = corpus::tree_mutation_original();
    let func = program
        .funcs
        .iter()
        .find(|f| lower_function(f).is_some())
        .expect("some pass lowers");
    let mut lowering = lower_function(func).expect("lowerable");
    // Sabotage: visit the first child twice and never the second, which
    // drops a subtree — a genuinely inequivalent "lowering".
    lowering.axes[1] = lowering.axes[0];
    lowering.call_results[1] = lowering.call_results[0].clone();
    match certify_lowering(&verifier, &program, &lowering) {
        Err(LoweringError::Rejected { func, verdict }) => {
            assert!(
                verdict.counterexample().is_some(),
                "{func}: refusal must carry a concrete witness"
            );
        }
        other => panic!("sabotaged lowering must be rejected, got {other:?}"),
    }
}

proptest! {
    /// VM == interpreter on random tree shapes and valuations, for both a
    /// pure fold (size counting) and a mutating traversal (tree mutation).
    #[test]
    fn vm_matches_interpreter_on_random_trees(index in 0usize..600, mutating in any::<bool>()) {
        let program = if mutating {
            corpus::tree_mutation_original()
        } else {
            corpus::size_counting_sequential()
        };
        let fields = fields_of(&program);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let corpus_trees = retreet_analysis::vtree::TreeCorpus::new(6, &field_refs, 3);
        let tree = corpus_trees.tree(index % corpus_trees.len());
        let mut vm = Vm::new();
        assert_tiers_agree("random", &program, &mut vm, &tree);
    }
}
