//! The differential harness pinning the automata engine's unbounded
//! verdicts to the bounded engines.
//!
//! `Engine::Automata` now answers race and equivalence queries with
//! `Soundness::Unbounded` (structural access summaries, the
//! fusion-correspondence matcher).  An unbounded engine that quietly
//! disagreed with the exhaustive bounded engines would be worse than no
//! engine at all, so every automata verdict here is checked against:
//!
//! * the bounded configuration engine (`Engine::Configuration`) and the
//!   dynamic trace engine (`Engine::Trace`), via the façade's
//!   single-engine hook `verify_with_engine` (no cache, no portfolio);
//! * the frozen pre-optimization engines in `retreet_analysis::naive`.
//!
//! The sweep covers the whole §5 corpus, every program the transform
//! layer generates, and 100+ proptest-randomized programs under
//! randomized budgets.  Agreement means outcome *and* witness: where the
//! automata engine delegates its witness search to the same bounded
//! procedure an engine runs (races → `check_data_race`, counterexamples →
//! `check_equivalence`), the witnesses must be byte-identical, not merely
//! both present.
//!
//! Skip semantics: when the automata engine cannot discharge a structural
//! race candidate or establish a fusion correspondence, it *declines*
//! rather than answering at bounded soundness (`verify_with_engine`
//! surfaces this as `NoApplicableEngine`).  A skip is only legal when the
//! bounded engines answer positively — a skipped query with a bounded
//! *negative* answer would mean the automata engine failed to extract a
//! witness its own delegate found.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use retreet_analysis::equiv::{EquivOptions, EquivVerdict};
use retreet_analysis::naive;
use retreet_analysis::race::{RaceOptions, RaceVerdict};
use retreet_lang::ast::Program;
use retreet_lang::corpus;
use retreet_lang::parser::parse_program;
use retreet_transform::{fuse_main_passes, parallelize_recursive_calls, synthesize_parallel_main};
use retreet_verify::{Engine, Query, Soundness, Verifier, VerifyError};

/// One race query, all four race procedures, zero tolerated drift.
fn assert_race_agreement(label: &str, program: &Program, max_nodes: usize, valuations: usize) {
    let verifier = Verifier::builder()
        .race_nodes(max_nodes)
        .valuations(valuations)
        .build();
    let by_configuration = verifier
        .verify_with_engine(Engine::Configuration, Query::DataRace(program))
        .unwrap_or_else(|e| panic!("{label}: configuration engine failed: {e}"));
    let by_trace = verifier
        .verify_with_engine(Engine::Trace, Query::DataRace(program))
        .unwrap_or_else(|e| panic!("{label}: trace engine failed: {e}"));
    let by_naive = naive::check_data_race(
        program,
        &RaceOptions::builder()
            .max_nodes(max_nodes)
            .valuations(valuations)
            .build(),
    );

    // The pre-optimization engine and the optimized configuration engine
    // implement the same abstraction and must agree exactly.
    assert_eq!(
        by_configuration.is_race_free(),
        matches!(by_naive, RaceVerdict::RaceFree { .. }),
        "{label}: naive and configuration engines drifted"
    );
    // The dynamic trace engine only reports conflicts that actually occur,
    // so a static all-clear forces a dynamic all-clear.
    if by_configuration.is_race_free() {
        assert!(
            by_trace.is_race_free(),
            "{label}: trace engine found a race the configuration engine missed"
        );
    }

    match verifier.verify_with_engine(Engine::Automata, Query::DataRace(program)) {
        Ok(by_automata) => {
            assert_eq!(by_automata.engine, Engine::Automata, "{label}");
            assert_eq!(
                by_automata.soundness,
                Soundness::Unbounded,
                "{label}: every automata race verdict must be unbounded"
            );
            assert_eq!(
                by_automata.is_race_free(),
                by_configuration.is_race_free(),
                "{label}: automata said {:?}, configuration said {:?}",
                by_automata.outcome,
                by_configuration.outcome
            );
            if let (Some(a), Some(c)) =
                (by_automata.race_witness(), by_configuration.race_witness())
            {
                // Racy programs are delegated to the same bounded witness
                // search the configuration engine runs: byte-identical.
                assert_eq!(
                    format!("{a:?}"),
                    format!("{c:?}"),
                    "{label}: automata and configuration race witnesses differ"
                );
            }
        }
        Err(VerifyError::NoApplicableEngine { .. }) => {
            // The automata engine only declines a race query when its
            // delegate found no race to report — a bounded negative here
            // would be a dropped witness.
            assert!(
                by_configuration.is_race_free(),
                "{label}: automata engine skipped a query with a bounded race witness"
            );
        }
        Err(other) => panic!("{label}: automata engine failed: {other}"),
    }
}

/// One equivalence query, all three equivalence procedures, zero drift.
fn assert_equivalence_agreement(
    label: &str,
    original: &Program,
    transformed: &Program,
    max_nodes: usize,
    valuations: usize,
) {
    let verifier = Verifier::builder()
        .equiv_nodes(max_nodes)
        .valuations(valuations)
        .build();
    let by_trace = verifier
        .verify_with_engine(Engine::Trace, Query::Equivalence(original, transformed))
        .unwrap_or_else(|e| panic!("{label}: trace engine failed: {e}"));
    let by_naive = naive::check_equivalence(
        original,
        transformed,
        &EquivOptions::builder()
            .max_nodes(max_nodes)
            .valuations(valuations)
            .build(),
    );
    assert_eq!(
        by_trace.is_equivalent(),
        matches!(by_naive, EquivVerdict::Equivalent { .. }),
        "{label}: naive and trace equivalence engines drifted"
    );

    match verifier.verify_with_engine(Engine::Automata, Query::Equivalence(original, transformed)) {
        Ok(by_automata) => {
            assert_eq!(by_automata.engine, Engine::Automata, "{label}");
            assert_eq!(
                by_automata.soundness,
                Soundness::Unbounded,
                "{label}: every automata equivalence verdict must be unbounded"
            );
            assert_eq!(
                by_automata.is_equivalent(),
                by_trace.is_equivalent(),
                "{label}: automata said {:?}, trace said {:?}",
                by_automata.outcome,
                by_trace.outcome
            );
            if let (Some(a), Some(t)) = (by_automata.counterexample(), by_trace.counterexample()) {
                // Non-corresponding pairs delegate to the same bounded
                // counterexample search the trace engine runs.
                assert_eq!(
                    format!("{a:?}"),
                    format!("{t:?}"),
                    "{label}: automata and trace counterexamples differ"
                );
            }
        }
        Err(VerifyError::NoApplicableEngine { .. }) => {
            assert!(
                by_trace.is_equivalent(),
                "{label}: automata engine skipped a query with a bounded counterexample"
            );
        }
        Err(other) => panic!("{label}: automata engine failed: {other}"),
    }
}

// ---------------------------------------------------------------------------
// The §5 corpus
// ---------------------------------------------------------------------------

#[test]
fn corpus_race_verdicts_show_zero_drift() {
    for (name, program) in corpus::all() {
        assert_race_agreement(name, &program, 3, 1);
    }
}

#[test]
fn corpus_equivalence_verdicts_show_zero_drift() {
    let pairs = [
        (
            "E1a",
            corpus::size_counting_sequential(),
            corpus::size_counting_fused(),
        ),
        (
            "E1b",
            corpus::size_counting_sequential(),
            corpus::size_counting_fused_invalid(),
        ),
        (
            "E2",
            corpus::tree_mutation_original(),
            corpus::tree_mutation_fused(),
        ),
        (
            "E3",
            corpus::css_minify_original(),
            corpus::css_minify_fused(),
        ),
        (
            "E4a",
            corpus::cycletree_original(),
            corpus::cycletree_fused(),
        ),
    ];
    for (id, original, transformed) in &pairs {
        assert_equivalence_agreement(id, original, transformed, 4, 2);
        // And in the reverse direction: the matcher is directional, the
        // engine must not be.
        assert_equivalence_agreement(&format!("{id}-rev"), transformed, original, 4, 2);
    }
}

// ---------------------------------------------------------------------------
// Programs generated by the transform layer
// ---------------------------------------------------------------------------

#[test]
fn generated_transforms_show_zero_drift() {
    let verifier = Verifier::builder()
        .equiv_nodes(4)
        .race_nodes(3)
        .valuations(1)
        .build();
    for (name, original) in [
        ("size_counting", corpus::size_counting_sequential()),
        ("tree_mutation", corpus::tree_mutation_original()),
        ("css_minify", corpus::css_minify_original()),
        ("cycletree", corpus::cycletree_original()),
    ] {
        let fused = fuse_main_passes(&verifier, &original)
            .unwrap_or_else(|err| panic!("fusing {name} failed: {err}"));
        assert_equivalence_agreement(
            &format!("fuse:{name}"),
            &fused.original,
            &fused.transformed,
            4,
            1,
        );
        assert_race_agreement(
            &format!("fuse:{name}:transformed"),
            &fused.transformed,
            3,
            1,
        );
    }
    let parallel = synthesize_parallel_main(&verifier, &corpus::size_counting_sequential())
        .expect("Odd ‖ Even synthesizes");
    assert_race_agreement("par_main:size_counting", &parallel.transformed, 3, 1);
    for (name, original) in [
        ("size_counting", corpus::size_counting_sequential()),
        ("css_minify", corpus::css_minify_original()),
    ] {
        let par_rec = parallelize_recursive_calls(&verifier, &original)
            .unwrap_or_else(|err| panic!("parallelizing recursion of {name} failed: {err}"));
        assert_race_agreement(&format!("par_rec:{name}"), &par_rec.transformed, 3, 1);
        assert_equivalence_agreement(
            &format!("par_rec:{name}:equiv"),
            &par_rec.original,
            &par_rec.transformed,
            4,
            1,
        );
    }
}

// ---------------------------------------------------------------------------
// Random programs under random budgets
// ---------------------------------------------------------------------------

/// Generates one random self- or mutually-recursive traversal pass.  The
/// bodies cover the shapes the structural analyses reason about:
/// unconditional and guarded field writes, pure accumulation, and
/// field-reading returns over a deliberately small field pool (so that
/// write-write and read-write overlaps between random passes are common).
fn random_pass(name: &str, other: &str, rng: &mut TestRng) -> String {
    const FIELDS: [&str; 3] = ["a", "b", "c"];
    let field = |rng: &mut TestRng| FIELDS[rng.below(3) as usize];
    let callee = if rng.below(4) == 0 { other } else { name };
    let body = match rng.below(4) {
        0 => String::new(),
        1 => format!(
            "        n.{} = n.{} + {};\n",
            field(rng),
            field(rng),
            rng.below(3)
        ),
        2 => format!(
            "        if (n.{} > {}) {{\n            n.{} = {};\n        }}\n",
            field(rng),
            rng.below(2),
            field(rng),
            rng.below(5)
        ),
        _ => format!("        n.{} = {};\n", field(rng), rng.below(4)),
    };
    let ret = match rng.below(3) {
        0 => String::from("x + y"),
        1 => format!("x + y + n.{}", field(rng)),
        _ => String::from("0"),
    };
    format!(
        "fn {name}(n) {{\n    if (n == nil) {{\n        return 0;\n    }} else {{\n        \
         x = {callee}(n.l);\n        y = {callee}(n.r);\n{body}        return {ret};\n    }}\n}}\n"
    )
}

/// A random two-pass program with the given `Main` composition.
fn random_program(seed: u64, parallel: bool) -> Program {
    let mut rng = TestRng::deterministic(&format!("automata-differential-{seed}"));
    let p0 = random_pass("First", "Second", &mut rng);
    let p1 = random_pass("Second", "First", &mut rng);
    let main = if parallel {
        "fn Main(n) {\n    {\n        u = First(n);\n        ||\n        v = Second(n);\n    }\n    return u, v;\n}\n"
    } else {
        "fn Main(n) {\n    u = First(n);\n    v = Second(n);\n    return u, v;\n}\n"
    };
    let source = format!("{p0}{p1}{main}");
    parse_program(&source)
        .unwrap_or_else(|err| panic!("generated program does not parse: {err}\n{source}"))
}

/// Swaps the order of the two pass invocations in the sequential `Main` —
/// equivalent exactly when the passes commute, which the random field pool
/// makes genuinely undecided case by case.
fn reordered(seed: u64) -> Program {
    let mut rng = TestRng::deterministic(&format!("automata-differential-{seed}"));
    let p0 = random_pass("First", "Second", &mut rng);
    let p1 = random_pass("Second", "First", &mut rng);
    let main = "fn Main(n) {\n    v = Second(n);\n    u = First(n);\n    return u, v;\n}\n";
    parse_program(&format!("{p0}{p1}{main}")).expect("generated program parses")
}

proptest! {
    /// Random parallel compositions: the automata engine's structural
    /// race verdicts agree with every bounded engine under random budgets.
    /// Two programs per case (a parallel and a sequential `Main` over the
    /// same random passes), 32 cases by default: 64 differential runs.
    #[test]
    fn random_parallel_programs_show_zero_race_drift(
        seed in any::<u64>(),
        max_nodes in 2usize..4,
        valuations in 1usize..3,
    ) {
        let parallel = random_program(seed, true);
        assert_race_agreement(&format!("random-par-{seed}"), &parallel, max_nodes, valuations);
        let sequential = random_program(seed, false);
        assert_race_agreement(&format!("random-seq-{seed}"), &sequential, max_nodes, valuations);
    }

    /// Random pass reorderings: the automata engine's correspondence
    /// verdicts agree with the bounded differential interpreter under
    /// random budgets.  Two pairs per case (identity and reordered), 32
    /// cases by default: 64 differential runs.
    #[test]
    fn random_reorderings_show_zero_equivalence_drift(
        seed in any::<u64>(),
        max_nodes in 3usize..5,
        valuations in 1usize..3,
    ) {
        let original = random_program(seed, false);
        // Identity: always equivalent, always established unbounded.
        assert_equivalence_agreement(
            &format!("random-id-{seed}"),
            &original,
            &original,
            max_nodes,
            valuations,
        );
        let swapped = reordered(seed);
        assert_equivalence_agreement(
            &format!("random-swap-{seed}"),
            &original,
            &swapped,
            max_nodes,
            valuations,
        );
    }
}
