//! Differential tests for the certified schedule autotuner: every candidate
//! the tuner enumerates — certified *and* refused — must execute identically
//! to the original program.  Certified candidates are checked through the
//! VM on random seeded trees; race-refused candidates (whose programs are
//! still constructible, just not parallel-safe) execute identically under
//! the sequential semantics both tiers implement; equivalence refusals must
//! carry a counterexample the interpreter confirms.

use std::sync::OnceLock;

use proptest::prelude::*;
use retreet_analysis::interp;
use retreet_analysis::vtree::{TreeCorpus, ValueTree};
use retreet_codegen::{compile, program_fields, trees_agree, Vm};
use retreet_lang::ast::Program;
use retreet_lang::blocks::BlockTable;
use retreet_lang::corpus;
use retreet_transform::{certify_fusion, tune, TransformError, TuneOptions};
use retreet_verify::Verifier;

fn verifier() -> Verifier {
    Verifier::builder()
        .equiv_nodes(4)
        .race_nodes(3)
        .valuations(1)
        .build()
}

/// One tuned family: the original program plus every candidate program the
/// tuner enumerated (certified and refused alike), with labels.
struct TunedFamily {
    original: Program,
    candidates: Vec<(String, Program, bool)>,
}

/// Enumerates each §5 family's schedule space once (tuning runs the full
/// batch certification, so the result is cached across proptest cases).
fn families() -> &'static Vec<TunedFamily> {
    static FAMILIES: OnceLock<Vec<TunedFamily>> = OnceLock::new();
    FAMILIES.get_or_init(|| {
        let verifier = verifier();
        [
            corpus::size_counting_sequential(),
            corpus::tree_mutation_original(),
            corpus::css_minify_original(),
            corpus::cycletree_original(),
        ]
        .into_iter()
        .map(|original| {
            let tuned = tune(&verifier, &original, &TuneOptions::quick(), &mut |_| {
                Ok(1.0)
            })
            .expect("every §5 family has a fusable run to tune");
            let candidates = tuned
                .candidates
                .iter()
                .filter_map(|candidate| {
                    candidate.program.clone().map(|program| {
                        (
                            candidate.label.clone(),
                            program,
                            candidate.status.is_certified(),
                        )
                    })
                })
                .collect();
            TunedFamily {
                original,
                candidates,
            }
        })
        .collect()
    })
}

/// Runs `program` on `tree` through the VM (sequential Par semantics) and
/// returns (returns, post-run tree).
fn run_vm(label: &str, program: &Program, tree: &ValueTree) -> (Vec<i64>, ValueTree) {
    let compiled = compile(program).unwrap_or_else(|e| panic!("{label}: compile failed: {e}"));
    let result = Vm::new()
        .run(&compiled, tree)
        .unwrap_or_else(|e| panic!("{label}: VM run failed: {e}"));
    (result.returns, result.tree)
}

proptest! {
    /// Zero drift across the whole enumerated schedule space: on random
    /// seeded trees, every candidate — certified or race-refused — returns
    /// what the original returns and leaves the same tree, through the VM,
    /// with the interpreter as the reference for the original.  Each case
    /// checks every candidate of one family on one tree, so the default
    /// case count runs several hundred candidate executions.
    #[test]
    fn every_enumerated_candidate_matches_the_original(
        family_index in 0usize..4,
        tree_index in 0usize..200,
    ) {
        let family = &families()[family_index];
        let fields = program_fields(&family.original);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let trees = TreeCorpus::new(5, &field_refs, 2);
        let tree = trees.tree(tree_index % trees.len());

        let table = BlockTable::build(&family.original);
        let reference = interp::run_with_table(&table, &tree)
            .expect("the original program runs on every corpus tree");

        for (label, candidate, _certified) in &family.candidates {
            let (returns, post_tree) = run_vm(label, candidate, &tree);
            prop_assert_eq!(
                &returns, &reference.returns,
                "{}: candidate returns drifted from the original", label
            );
            prop_assert!(
                trees_agree(&post_tree, &reference.tree),
                "{}: candidate post-run tree drifted from the original", label
            );
        }
    }
}

#[test]
fn race_refused_candidates_keep_their_witness_and_run_sequentially() {
    // The cycletree family's parallel-passes candidate races on `num`; the
    // tuner must keep it in the table with the concrete witness, and —
    // under the sequential Par semantics both tiers implement — it still
    // executes identically to the original.
    let verifier = verifier();
    let original = corpus::cycletree_original();
    let tuned = tune(&verifier, &original, &TuneOptions::quick(), &mut |_| {
        Ok(1.0)
    })
    .unwrap();
    let refused: Vec<_> = tuned
        .candidates
        .iter()
        .filter_map(|c| match &c.status {
            retreet_transform::CandidateStatus::Refused(TransformError::DataRace(witness)) => {
                Some((c, witness))
            }
            _ => None,
        })
        .collect();
    assert!(
        !refused.is_empty(),
        "cycletree must refuse at least one racy parallel schedule"
    );
    let fields = program_fields(&original);
    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
    for (candidate, witness) in refused {
        assert!(
            !witness.field.is_empty(),
            "{}: empty witness",
            candidate.label
        );
        let program = candidate
            .program
            .as_ref()
            .expect("race refusals are constructible");
        for seed in [0u64, 7, 23] {
            let mut tree = ValueTree::complete(4, &field_refs, |_, _| 0);
            tree.fill_fields(&field_refs, seed);
            let table = BlockTable::build(&original);
            let reference = interp::run_with_table(&table, &tree).expect("reference runs");
            let (returns, post_tree) = run_vm(&candidate.label, program, &tree);
            assert_eq!(returns, reference.returns, "{}", candidate.label);
            assert!(
                trees_agree(&post_tree, &reference.tree),
                "{}",
                candidate.label
            );
        }
    }
}

#[test]
fn equivalence_refusals_carry_interpreter_checked_counterexamples() {
    // A refusal for non-equivalence must hand back a tree on which the two
    // programs *actually* disagree — confirmed here by the interpreter, the
    // semantics of record.
    let verifier = verifier();
    let original = corpus::size_counting_sequential();
    let invalid = corpus::size_counting_fused_invalid();
    match certify_fusion(&verifier, &original, &invalid) {
        Err(TransformError::NotEquivalent(ce)) => {
            let run = |program: &Program| {
                interp::run_with_table(&BlockTable::build(program), &ce.tree)
                    .expect("counterexample trees run on both programs")
            };
            let a = run(&original);
            let b = run(&invalid);
            assert!(
                a.returns != b.returns || !trees_agree(&a.tree, &b.tree),
                "the counterexample must witness a real disagreement"
            );
        }
        other => panic!("expected a non-equivalence refusal, got {other:?}"),
    }
}
