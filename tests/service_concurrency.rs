//! Concurrency tests for the serving tier: one shared `Verifier` (and one
//! shared `retreet_serve::Service`) under many client threads.
//!
//! What must hold under concurrency:
//!
//! * **Single-flight** — N identical concurrent queries trigger exactly one
//!   engine run; every waiter receives the identical witness.
//! * **Determinism** — the parallel portfolio returns the same verdict
//!   (outcome, witness, engine provenance) as the sequential portfolio, on
//!   every run.
//! * **Accounting** — sharded-cache stats stay consistent: every lookup is
//!   exactly one hit or miss (`hits + misses == total cache lookups`), and
//!   the separate `collisions` diagnostic stays 0 for distinct real
//!   queries (a 128-bit key collision is astronomically unlikely).

use std::sync::{Arc, Barrier};

use retreet_repro::retreet_lang::corpus;
use retreet_repro::retreet_serve::{json, ServeOptions, Service};
use retreet_repro::retreet_verify::{Query, Verifier};

fn shared_verifier() -> Arc<Verifier> {
    Arc::new(Verifier::builder().max_nodes(3).valuations(1).build())
}

#[test]
fn single_flight_runs_the_engine_once_for_identical_concurrent_queries() {
    const THREADS: usize = 8;
    let verifier = shared_verifier();
    let program = Arc::new(corpus::cycletree_parallel());
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let verifier = Arc::clone(&verifier);
        let program = Arc::clone(&program);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            verifier.verify(Query::DataRace(&program)).unwrap()
        }));
    }
    let verdicts: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();

    // One portfolio dispatch total: every other query was served by the
    // cache, by coalescing onto the in-flight run, or by the leader's
    // double-check — never by a second engine run.
    let serving = verifier.serving_stats();
    assert_eq!(serving.engine_runs, 1, "single-flight must run once");

    // All N verdicts carry the identical witness.
    let reference = format!("{:?}", verdicts[0].race_witness().unwrap());
    for verdict in &verdicts {
        assert!(!verdict.is_race_free());
        assert_eq!(format!("{:?}", verdict.race_witness().unwrap()), reference);
    }

    // Accounting: every thread did exactly one cache lookup, each counted
    // as exactly one hit or miss.
    let cache = verifier.cache_stats();
    assert_eq!(
        cache.hits + cache.misses,
        THREADS as u64,
        "hits + misses must equal total queries"
    );
    assert_eq!(cache.collisions, 0);
    assert_eq!(cache.entries, 1);
}

#[test]
fn concurrent_identical_and_distinct_queries_keep_stats_consistent() {
    const THREADS: usize = 6;
    const ROUNDS: usize = 4;
    let verifier = shared_verifier();
    let programs: Arc<Vec<_>> = Arc::new(corpus::all().into_iter().collect());
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for thread in 0..THREADS {
        let verifier = Arc::clone(&verifier);
        let programs = Arc::clone(&programs);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut issued = 0u64;
            for round in 0..ROUNDS {
                // Every thread walks the same corpus from a different
                // offset: plenty of identical-query overlap, plus distinct
                // queries in flight at the same time.
                let offset = (thread * 5 + round) % programs.len();
                for i in 0..programs.len() {
                    let (name, program) = &programs[(i + offset) % programs.len()];
                    let verdict = verifier.verify(Query::DataRace(program)).unwrap();
                    issued += 1;
                    // Spot-check the two †-racy programs and one free one.
                    match *name {
                        "cycletree_parallel" | "overlapping_parallel" => {
                            assert!(!verdict.is_race_free(), "{name} must race")
                        }
                        "size_counting_parallel" => {
                            assert!(verdict.is_race_free(), "{name} must be race-free")
                        }
                        _ => {}
                    }
                }
            }
            issued
        }));
    }
    let total: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .sum();
    assert_eq!(total, (THREADS * ROUNDS * programs.len()) as u64);

    let cache = verifier.cache_stats();
    assert_eq!(
        cache.hits + cache.misses,
        total,
        "hits + misses must equal total queries"
    );
    assert_eq!(cache.collisions, 0, "no collisions among distinct programs");
    assert_eq!(cache.entries, programs.len());
    // Engine runs can never exceed one per distinct program (single-flight
    // + cache), and at least one per program had to happen.
    let serving = verifier.serving_stats();
    assert_eq!(serving.engine_runs, programs.len() as u64);
}

#[test]
fn parallel_portfolio_matches_sequential_across_the_corpus_100_runs() {
    // The §5 differential: across 100+ parallel-portfolio runs, the verdict
    // (outcome, witness, engine provenance, soundness) must be identical to
    // the sequential ("authoritative first") portfolio's.  Caches are off
    // so every run exercises the real dispatch race.
    let sequential = Verifier::builder()
        .max_nodes(3)
        .valuations(1)
        .cache_capacity(0)
        .build();
    let parallel = Verifier::builder()
        .max_nodes(3)
        .valuations(1)
        .parallel(true)
        .cache_capacity(0)
        .build();
    let programs = corpus::all();
    let mut runs = 0;
    for round in 0..8 {
        for (name, program) in &programs {
            let expected = sequential.verify(Query::DataRace(program)).unwrap();
            let got = parallel.verify(Query::DataRace(program)).unwrap();
            runs += 1;
            assert_eq!(
                expected.engine, got.engine,
                "round {round}, {name}: engine provenance drifted"
            );
            assert_eq!(
                expected.soundness, got.soundness,
                "round {round}, {name}: soundness drifted"
            );
            assert_eq!(
                format!("{:?}", expected.outcome),
                format!("{:?}", got.outcome),
                "round {round}, {name}: outcome or witness drifted"
            );
        }
    }
    assert!(runs >= 100, "need 100+ differential runs, did {runs}");
}

#[test]
fn shared_service_answers_concurrent_ndjson_clients_consistently() {
    const THREADS: usize = 8;
    let service = Arc::new(Service::new(&ServeOptions {
        race_nodes: 3,
        equiv_nodes: 3,
        validity_nodes: 3,
        valuations: 1,
        parallel: false,
        cache_capacity: 1024,
        ..ServeOptions::default()
    }));
    let racy = Arc::new(format!(
        r#"{{"kind":"race","program":"{}"}}"#,
        json::escape(corpus::CYCLETREE_PARALLEL_SRC)
    ));
    let free = Arc::new(format!(
        r#"{{"kind":"race","program":"{}"}}"#,
        json::escape(corpus::SIZE_COUNTING_PARALLEL_SRC)
    ));
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for thread in 0..THREADS {
        let service = Arc::clone(&service);
        let racy = Arc::clone(&racy);
        let free = Arc::clone(&free);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..6 {
                let (line, expected) = if (thread + i) % 2 == 0 {
                    (&racy, r#""verdict":"race""#)
                } else {
                    (&free, r#""verdict":"race-free""#)
                };
                let response = service.handle_line(line);
                assert!(
                    response.contains(r#""status":"ok""#) && response.contains(expected),
                    "thread {thread} round {i}: unexpected response {response}"
                );
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client thread panicked");
    }
    // Two distinct programs → two engine dispatches, everything else from
    // cache/coalescing; the accounting invariant holds under concurrency.
    let serving = service.verifier().serving_stats();
    assert_eq!(serving.engine_runs, 2);
    let cache = service.verifier().cache_stats();
    assert_eq!(cache.hits + cache.misses, (THREADS * 6) as u64);
    assert_eq!(cache.collisions, 0);
    assert_eq!(service.requests_handled(), (THREADS * 6) as u64);
}

#[test]
fn tcp_service_round_trips_ndjson_over_a_real_socket() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    let service = Arc::new(Service::new(&ServeOptions {
        race_nodes: 3,
        equiv_nodes: 3,
        validity_nodes: 3,
        valuations: 1,
        parallel: false,
        cache_capacity: 1024,
        ..ServeOptions::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = Arc::clone(&service);
    // The acceptor loops forever; it dies with the test process.
    std::thread::spawn(move || {
        let _ = retreet_repro::retreet_serve::serve_tcp(server, listener);
    });

    let mut clients = Vec::new();
    for client in 0..3 {
        clients.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let request = format!(
                "{{\"id\": {client}, \"kind\": \"validity\", \
                 \"formula\": \"(exists x (root x))\"}}\n"
            );
            stream.write_all(request.as_bytes()).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(&format!("\"id\":{client}")), "{line}");
            assert!(line.contains(r#""verdict":"valid""#), "{line}");
            // A second request on the same connection still works, and is
            // now a cache hit.
            stream.write_all(request.as_bytes()).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(r#""cached":true"#), "{line}");
        }));
    }
    for client in clients {
        client.join().expect("tcp client panicked");
    }
    assert_eq!(service.requests_handled(), 6);
}
