//! Property tests for the certified transform layer:
//!
//! 1. **Roundtrip identity** — `parse_program(print_program(p)) == p`
//!    structurally, across the whole paper corpus *and* every program the
//!    transform layer generates (fused traversals and synthesized parallel
//!    schedules).
//! 2. **Differential execution** — the reference interpreter produces the
//!    same return values and the same final field state for the original
//!    and the transformed program, on exhaustive bounded tree corpora and
//!    on randomly-valued trees.

use proptest::prelude::*;
use retreet_analysis::interp;
use retreet_analysis::race::program_fields;
use retreet_analysis::vtree::{test_trees, ValueTree};
use retreet_lang::ast::Program;
use retreet_lang::corpus;
use retreet_lang::parser::parse_program;
use retreet_lang::pretty::print_program;
use retreet_lang::BlockTable;
use retreet_transform::{
    fuse_main_passes, parallelize_recursive_calls, synthesize_parallel_main, CertificateKind,
};
use retreet_verify::Verifier;

fn verifier() -> Verifier {
    Verifier::builder()
        .equiv_nodes(4)
        .race_nodes(3)
        .valuations(1)
        .build()
}

/// Every certified transform the layer can produce on the corpus:
/// `(label, original, transformed)`.  Synthesized and certified once —
/// the proptest below runs per generated case, and re-certifying seven
/// transforms per case would redo identical engine work.
fn certified_pairs() -> &'static Vec<(String, Program, Program)> {
    static PAIRS: std::sync::OnceLock<Vec<(String, Program, Program)>> = std::sync::OnceLock::new();
    PAIRS.get_or_init(build_certified_pairs)
}

fn build_certified_pairs() -> Vec<(String, Program, Program)> {
    let verifier = verifier();
    let mut pairs = Vec::new();
    for (name, original) in [
        ("size_counting", corpus::size_counting_sequential()),
        ("tree_mutation", corpus::tree_mutation_original()),
        ("css_minify", corpus::css_minify_original()),
        ("cycletree", corpus::cycletree_original()),
    ] {
        let certified = fuse_main_passes(&verifier, &original)
            .unwrap_or_else(|err| panic!("fusing {name} failed: {err}"));
        assert_eq!(certified.certificate.kind, CertificateKind::Equivalence);
        pairs.push((
            format!("fuse:{name}"),
            certified.original,
            certified.transformed,
        ));
    }
    let certified = synthesize_parallel_main(&verifier, &corpus::size_counting_sequential())
        .unwrap_or_else(|err| panic!("parallelizing size_counting failed: {err}"));
    assert_eq!(certified.certificate.kind, CertificateKind::RaceFreedom);
    pairs.push((
        String::from("par_main:size_counting"),
        certified.original,
        certified.transformed,
    ));
    for (name, original) in [
        ("size_counting", corpus::size_counting_sequential()),
        ("css_minify", corpus::css_minify_original()),
    ] {
        let certified = parallelize_recursive_calls(&verifier, &original)
            .unwrap_or_else(|err| panic!("parallelizing recursion of {name} failed: {err}"));
        assert_eq!(certified.certificate.kind, CertificateKind::RaceFreedom);
        pairs.push((
            format!("par_rec:{name}"),
            certified.original,
            certified.transformed,
        ));
    }
    pairs
}

/// The union of both programs' field vocabularies, so differential trees
/// carry every field either side reads.
fn shared_fields(a: &Program, b: &Program) -> Vec<String> {
    let mut fields = program_fields(&BlockTable::build(a));
    for field in program_fields(&BlockTable::build(b)) {
        if !fields.contains(&field) {
            fields.push(field);
        }
    }
    fields
}

fn assert_same_behaviour(label: &str, original: &Program, transformed: &Program, tree: &ValueTree) {
    let before = interp::run(original, tree)
        .unwrap_or_else(|err| panic!("{label}: original run failed: {err}"));
    let after = interp::run(transformed, tree)
        .unwrap_or_else(|err| panic!("{label}: transformed run failed: {err}"));
    assert_eq!(
        before.returns, after.returns,
        "{label}: return values diverge"
    );
    assert_eq!(
        before.tree.field_snapshot(),
        after.tree.field_snapshot(),
        "{label}: final field states diverge"
    );
}

#[test]
fn parse_print_roundtrip_is_identity_on_the_corpus() {
    for (name, program) in corpus::all() {
        let printed = print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|err| panic!("printed {name} does not re-parse: {err}"));
        assert_eq!(reparsed, program, "{name} roundtrips to identity");
    }
}

#[test]
fn parse_print_roundtrip_is_identity_on_generated_transforms() {
    for (label, _, transformed) in certified_pairs().iter() {
        let printed = print_program(transformed);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|err| panic!("printed {label} output does not re-parse: {err}"));
        assert_eq!(&reparsed, transformed, "{label} output roundtrips");
    }
}

#[test]
fn transformed_programs_match_originals_on_exhaustive_bounded_trees() {
    for (label, original, transformed) in certified_pairs().iter() {
        let fields = shared_fields(original, transformed);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        for tree in test_trees(5, &field_refs, 2) {
            assert_same_behaviour(label, original, transformed, &tree);
        }
    }
}

proptest! {
    /// Differential runs on complete trees with pseudo-random field
    /// valuations: the certified transform never changes observable
    /// behaviour.
    #[test]
    fn transformed_programs_match_originals_on_random_trees(
        height in 1usize..5,
        seed in 0u64..25,
    ) {
        for (label, original, transformed) in certified_pairs().iter() {
            let fields = shared_fields(original, transformed);
            let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
            let mut tree = ValueTree::complete(height, &field_refs, |_, _| 0);
            tree.fill_fields(&field_refs, seed);
            assert_same_behaviour(label, original, transformed, &tree);
        }
    }
}
