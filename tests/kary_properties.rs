//! Arity-generic property tests: random traversal programs at arities 2–4
//! must roundtrip through the printer and execute identically on the
//! reference interpreter and the bytecode VM, over enumerated k-ary trees.

use proptest::prelude::*;
use retreet_analysis::interp;
use retreet_analysis::vtree::TreeCorpus;
use retreet_codegen::{compile, trees_agree, Vm};
use retreet_lang::parser::parse_program;
use retreet_lang::pretty::print_program;

/// Decodes `index` into a permutation of `0..n` (factorial number system).
fn permutation(n: usize, mut index: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for k in (1..=n).rev() {
        let fact: usize = (1..k).product();
        let pick = (index / fact) % k;
        index %= fact.max(1);
        out.push(pool.remove(pick));
    }
    out
}

/// A nil-guarded self-recursive traversal over every axis of an arity-`k`
/// program, visiting children in `order` and folding seeded constants into
/// `v` between the visits.  Axes are spelled `c0..c{k-1}`, so the program
/// exercises the indexed spelling end to end.
fn traversal_source(arity: usize, order: &[usize], seed: u64) -> String {
    let mut src = String::new();
    if arity != 2 {
        src.push_str(&format!("arity {arity};\n"));
    }
    src.push_str("fn Main(n) {\n    if (n == nil) {\n        return 0;\n    } else {\n");
    for (i, axis) in order.iter().enumerate() {
        let bump = ((seed >> (8 * i)) & 0xff) as i64;
        src.push_str(&format!("        n.v = n.v + {bump};\n"));
        src.push_str(&format!("        x{i} = Main(n.c{axis});\n"));
    }
    src.push_str("        n.total = ");
    for i in 0..order.len() {
        src.push_str(&format!("x{i} + "));
    }
    src.push_str("n.v;\n        return n.total;\n    }\n}\n");
    src
}

proptest! {
    /// `parse(print(p)) == p` for random k-ary programs at arities 2–4, in
    /// both the indexed (`c0..c{k-1}`) and the printed-back spelling.
    #[test]
    fn kary_programs_roundtrip_through_the_printer(
        arity in 2usize..5,
        perm in 0usize..24,
        seed in any::<u64>(),
    ) {
        let source = traversal_source(arity, &permutation(arity, perm), seed);
        let program = parse_program(&source).expect("generated program parses");
        prop_assert_eq!(program.arity as usize, arity);
        let printed = print_program(&program);
        let reparsed = parse_program(&printed).expect("printed program reparses");
        prop_assert_eq!(&reparsed, &program);
        // The printer is a fixpoint: printing the reparse changes nothing.
        prop_assert_eq!(print_program(&reparsed), printed);
    }

    /// The bytecode VM is observationally identical to the reference
    /// interpreter on random k-ary programs and enumerated k-ary trees.
    #[test]
    fn vm_matches_interpreter_on_random_kary_programs(
        arity in 2usize..5,
        perm in 0usize..24,
        seed in any::<u64>(),
        tree_index in 0usize..200,
    ) {
        let source = traversal_source(arity, &permutation(arity, perm), seed);
        let program = parse_program(&source).expect("generated program parses");
        let corpus = TreeCorpus::with_arity(arity as u8, 4, &["v", "total"], 2);
        let tree = corpus.tree(tree_index % corpus.len());
        let compiled = compile(&program).expect("generated program compiles");
        let mut vm = Vm::new();
        match (interp::run(&program, &tree), vm.run(&compiled, &tree)) {
            (Ok(expected), Ok(actual)) => {
                prop_assert_eq!(expected.returns, actual.returns);
                prop_assert!(trees_agree(&expected.tree, &actual.tree));
            }
            (Err(_), Err(_)) => {}
            (exp, act) => prop_assert!(false, "tier disagreement: interp={exp:?} vm={act:?}"),
        }
    }
}

#[test]
fn lowered_kary_traversals_match_the_interpreter_exhaustively() {
    // The lowerable shape (constant returns, one call per axis) at each
    // arity, checked interpreter-vs-VM over every enumerated tree: the
    // k+1-segment worklist loop must be exact, not just certified.
    let verifier = retreet_verify::Verifier::builder()
        .equiv_nodes(3)
        .valuations(1)
        .build();
    for arity in 2usize..5 {
        let mut src = String::new();
        if arity != 2 {
            src.push_str(&format!("arity {arity};\n"));
        }
        src.push_str("fn Main(n) {\n    if (n == nil) {\n        return 0;\n    } else {\n");
        src.push_str("        n.v = n.v + 1;\n");
        for axis in 0..arity {
            src.push_str(&format!("        x{axis} = Main(n.c{axis});\n"));
        }
        src.push_str("        n.total = n.v;\n        return 0;\n    }\n}\n");
        let program = parse_program(&src).expect("lowerable program parses");
        let compiled =
            retreet_codegen::compile_with_lowering(&verifier, &program).expect("compiles");
        assert!(
            !compiled.lowerings.is_empty(),
            "arity {arity}: the traversal should lower to a worklist loop"
        );
        let corpus = TreeCorpus::with_arity(arity as u8, 4, &["v", "total"], 2);
        let mut vm = Vm::new();
        for index in 0..corpus.len() {
            let tree = corpus.tree(index);
            let expected = interp::run(&program, &tree).expect("interp runs");
            let actual = vm.run(&compiled, &tree).expect("vm runs");
            assert_eq!(expected.returns, actual.returns, "arity {arity}");
            assert!(trees_agree(&expected.tree, &actual.tree), "arity {arity}");
        }
    }
}
