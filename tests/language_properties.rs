//! Property-style tests over the language front-end: the corpus, the block
//! relations of Fig. 11, and the interpreter's agreement with the
//! configuration abstraction.

use retreet_analysis::configs::{enumerate, EnumOptions};
use retreet_analysis::interp;
use retreet_analysis::race::program_fields;
use retreet_analysis::vtree::{test_trees, ValueTree};
use retreet_lang::{corpus, BlockTable, Relation};

#[test]
fn block_relations_partition_same_function_pairs() {
    // Lemma 2: two distinct blocks of the same function are related by
    // exactly one of ≺, ↑, ‖ (here: SeqBefore/SeqAfter collapse to ≺).
    for (name, program) in corpus::all() {
        let table = BlockTable::build(&program);
        for a in table.blocks() {
            for b in table.blocks() {
                let relation = table.relation(a.id, b.id);
                if a.id == b.id {
                    assert_eq!(relation, Relation::Same);
                } else if a.func == b.func {
                    assert_ne!(relation, Relation::Same, "{name}");
                    assert_ne!(relation, Relation::DifferentFunc, "{name}");
                    // Symmetry/antisymmetry of the sequential order.
                    let back = table.relation(b.id, a.id);
                    match relation {
                        Relation::SeqBefore => assert_eq!(back, Relation::SeqAfter),
                        Relation::SeqAfter => assert_eq!(back, Relation::SeqBefore),
                        other => assert_eq!(back, other),
                    }
                } else {
                    assert_eq!(relation, Relation::DifferentFunc, "{name}");
                }
            }
        }
    }
}

#[test]
fn every_executed_iteration_is_covered_by_some_configuration() {
    // Soundness link between the two engines (the over-approximation claim of
    // §3): every (block, node) iteration the interpreter actually executes
    // appears as the target of some enumerated configuration.
    for program in [
        corpus::size_counting_parallel(),
        corpus::css_minify_original(),
        corpus::tree_mutation_original(),
    ] {
        let table = BlockTable::build(&program);
        let fields = program_fields(&table);
        let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        for tree in test_trees(3, &field_refs, 1) {
            let run = interp::run_with_table(&table, &tree).expect("run succeeds");
            let configs = enumerate(&table, &tree, &EnumOptions::default());
            for iteration in &run.trace.iterations {
                if table.info(iteration.block).is_call() {
                    continue; // configurations end at non-call blocks
                }
                let covered = configs.iter().any(|c| {
                    c.target == iteration.block
                        && c.target_loc().node().map(|n| n.0) == iteration.node.map(|n| n.0)
                });
                assert!(
                    covered,
                    "iteration ({}, {:?}) not covered by any configuration",
                    iteration.block, iteration.node
                );
            }
        }
    }
}

#[test]
fn interpreter_matches_manual_expectations_on_known_trees() {
    // Odd/Even counts on hand-built trees.
    let program = corpus::size_counting_parallel();
    // A left chain of three nodes: layers 1, 2, 3 → odd = 2, even = 1.
    let mut chain = ValueTree::single();
    let root = chain.root();
    let l = chain.add_left(root);
    chain.add_left(l);
    let result = interp::run(&program, &chain).unwrap();
    assert_eq!(result.returns, vec![2, 1]);
}
