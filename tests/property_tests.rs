//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use proptest::prelude::*;
use retreet_analysis::equiv::{check_equivalence, EquivOptions};
use retreet_analysis::race::{check_data_race, RaceOptions};
use retreet_css::css::{generate_stylesheet, parse_css};
use retreet_css::minify::{minify_fused, minify_reference, minify_unfused};
use retreet_cycletree::numbering::{fused_number_and_route, number_cycletree, random_cycletree};
use retreet_cycletree::routing::{compute_routing, route_path};
use retreet_lang::corpus;
use retreet_logic::{Atom, LinExpr, Solver, Sym, System};
use retreet_runtime::tree::random_tree;
use retreet_runtime::visit::{par_fold, seq_fold};

proptest! {
    /// Linear-expression substitution agrees with evaluation: evaluating
    /// e[x := r] equals evaluating e with x bound to the value of r.
    #[test]
    fn linexpr_substitution_commutes_with_evaluation(
        coeff_x in -10i64..10,
        coeff_y in -10i64..10,
        constant in -50i64..50,
        replacement_coeff in -10i64..10,
        replacement_const in -50i64..50,
        x_val in -100i64..100,
        y_val in -100i64..100,
    ) {
        let x = Sym::from_usize(0);
        let y = Sym::from_usize(1);
        let e = LinExpr::scaled_var(x, coeff_x) + LinExpr::scaled_var(y, coeff_y) + LinExpr::constant(constant);
        let r = LinExpr::scaled_var(y, replacement_coeff) + LinExpr::constant(replacement_const);
        let substituted = e.substitute(x, &r);
        let lookup = |s: Sym| Some(if s == x { x_val } else { y_val });
        let r_value = r.eval(lookup).unwrap();
        let direct = e.eval(|s| Some(if s == x { r_value } else { y_val })).unwrap();
        prop_assert_eq!(substituted.eval(lookup).unwrap(), direct);
    }

    /// The solver never reports Unsat for a system that has an explicit
    /// integer witness, and any model it returns satisfies the system.
    #[test]
    fn solver_is_sound_on_random_difference_systems(
        bounds in proptest::collection::vec((-20i64..20, 0i64..10), 1..6),
    ) {
        // Build x_i >= a_i && x_i <= a_i + d_i, satisfiable by construction.
        let mut system = System::new();
        for (i, (lo, width)) in bounds.iter().enumerate() {
            let var = LinExpr::var(Sym::from_usize(i));
            system.push(Atom::ge(var.clone(), LinExpr::constant(*lo)));
            system.push(Atom::le(var, LinExpr::constant(lo + width)));
        }
        let outcome = Solver::new().check(&system);
        prop_assert!(outcome.is_sat());
        if let Some(model) = outcome.model() {
            prop_assert!(model.satisfies(&system));
        }
    }

    /// Parallel and sequential folds agree on arbitrary tree shapes.
    #[test]
    fn par_fold_equals_seq_fold(nodes in 1usize..400, seed in any::<u64>(), threshold in 1usize..64) {
        let tree = random_tree(nodes, seed, &|i| i as u64);
        let combine = |v: &u64, l: u64, r: u64| v.wrapping_add(l).wrapping_add(r);
        let seq = seq_fold(&tree, &|| 0u64, &combine);
        let par = par_fold(&tree, threshold, &|| 0u64, &combine);
        prop_assert_eq!(seq, par);
    }

    /// The cyclic numbering is always a permutation, and the fused traversal
    /// always agrees with the two-pass composition (the E4a invariant).
    #[test]
    fn cycletree_numbering_is_a_permutation(nodes in 1usize..120, seed in any::<u64>()) {
        let mut two_pass = random_cycletree(nodes, seed);
        number_cycletree(&mut two_pass);
        compute_routing(&mut two_pass);
        let mut fused = random_cycletree(nodes, seed);
        fused_number_and_route(&mut fused);
        prop_assert_eq!(&two_pass, &fused);
        let mut nums: Vec<i64> = fused.preorder().into_iter().map(|n| n.num).collect();
        nums.sort_unstable();
        prop_assert_eq!(nums, (0..nodes as i64).collect::<Vec<_>>());
    }

    /// Routing always terminates at the requested destination.
    #[test]
    fn cycletree_routing_reaches_destination(nodes in 2usize..80, seed in any::<u64>(), from in 0usize..80, to in 0usize..80) {
        let mut tree = random_cycletree(nodes, seed);
        fused_number_and_route(&mut tree);
        let from = (from % nodes) as i64;
        let to = (to % nodes) as i64;
        let path = route_path(&tree, from, to);
        prop_assert_eq!(*path.first().unwrap(), from);
        prop_assert_eq!(*path.last().unwrap(), to);
    }

    /// Fused and unfused CSS minification agree (and agree with the flat
    /// reference) on arbitrary generated style sheets, and minified output
    /// still parses.
    #[test]
    fn css_minification_is_fusion_invariant(rules in 0usize..60, seed in any::<u64>()) {
        let sheet = generate_stylesheet(rules, seed);
        let reference = minify_reference(&sheet);
        prop_assert_eq!(&minify_unfused(&sheet), &reference);
        prop_assert_eq!(&minify_fused(&sheet), &reference);
        prop_assert_eq!(parse_css(&reference.to_css()).unwrap(), reference);
    }

    /// The optimized race engine (incremental solving, memo caches,
    /// parallel pair loops) returns a verdict — and, for races, the exact
    /// same witness — as the frozen pre-optimization naive engine, for
    /// every program of the §5 corpus under arbitrary bounded budgets.
    #[test]
    fn optimized_race_engine_matches_naive_across_corpus(
        max_nodes in 1usize..4,
        valuations in 1usize..3,
    ) {
        let options = RaceOptions::builder()
            .max_nodes(max_nodes)
            .valuations(valuations)
            .build();
        for (name, program) in corpus::all() {
            let naive = retreet_analysis::naive::check_data_race(&program, &options);
            let optimized = check_data_race(&program, &options);
            prop_assert_eq!(
                naive.is_race_free(),
                optimized.is_race_free(),
                "{}: race verdicts diverge at max_nodes={} valuations={}",
                name,
                max_nodes,
                valuations
            );
            match (naive.witness(), optimized.witness()) {
                (None, None) => {}
                (Some(a), Some(b)) => prop_assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "{}: race witnesses diverge",
                    name
                ),
                _ => prop_assert!(false, "{}: witness presence diverges", name),
            }
        }
    }

    /// The optimized equivalence engine returns verdicts — and identical
    /// counterexamples — matching the naive path on every §5 fusion pair
    /// under arbitrary bounded budgets.
    #[test]
    fn optimized_equivalence_engine_matches_naive_across_corpus(
        max_nodes in 1usize..5,
        valuations in 1usize..3,
        check_dependence_order in any::<bool>(),
    ) {
        let options = EquivOptions::builder()
            .max_nodes(max_nodes)
            .valuations(valuations)
            .check_dependence_order(check_dependence_order)
            .build();
        let pairs = [
            ("E1a", corpus::size_counting_sequential(), corpus::size_counting_fused()),
            ("E1b", corpus::size_counting_sequential(), corpus::size_counting_fused_invalid()),
            ("E2", corpus::tree_mutation_original(), corpus::tree_mutation_fused()),
            ("E3", corpus::css_minify_original(), corpus::css_minify_fused()),
            ("E4a", corpus::cycletree_original(), corpus::cycletree_fused()),
        ];
        for (name, original, transformed) in &pairs {
            let naive = retreet_analysis::naive::check_equivalence(original, transformed, &options);
            let optimized = check_equivalence(original, transformed, &options);
            prop_assert_eq!(
                naive.is_equivalent(),
                optimized.is_equivalent(),
                "{}: equivalence verdicts diverge at max_nodes={} valuations={}",
                name,
                max_nodes,
                valuations
            );
            match (naive.counterexample(), optimized.counterexample()) {
                (None, None) => {}
                (Some(a), Some(b)) => prop_assert_eq!(
                    format!("{:?}", a.disagreement),
                    format!("{:?}", b.disagreement),
                    "{}: counterexamples diverge",
                    name
                ),
                _ => prop_assert!(false, "{}: counterexample presence diverges", name),
            }
        }
    }
}
