//! Cross-crate integration tests pinning every verdict of the paper's
//! evaluation (§5).  These are the rows EXPERIMENTS.md reports; if any of
//! them flips, the reproduction no longer reproduces the paper.

use retreet_bench::{ablation_granularity, run_all, Budget, Verdict};

#[test]
fn all_evaluation_rows_match_the_paper() {
    let results = run_all(&Budget::quick());
    assert_eq!(results.len(), 7);
    for result in &results {
        assert!(
            result.matches_paper(),
            "{}: got {:?}, paper reports {:?} ({})",
            result.id,
            result.verdict,
            result.expected,
            result.detail
        );
    }
}

#[test]
fn the_difficulty_ordering_holds() {
    // The paper's hardest query is the cycletree fusion (490 s), then CSS
    // (6.9 s), then the small cases (< 0.2 s).  Our absolute times differ,
    // but the ordering of the equivalence queries must be preserved.
    let results = run_all(&Budget::default());
    let seconds = |id: &str| {
        results
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.measured_seconds)
            .unwrap()
    };
    assert!(seconds("E4a") > seconds("E1a"));
    assert!(seconds("E3") > seconds("E1a"));
}

#[test]
fn race_queries_report_the_expected_verdict_kinds() {
    let results = run_all(&Budget::quick());
    let by_id = |id: &str| results.iter().find(|r| r.id == id).unwrap().verdict;
    assert_eq!(by_id("E1c"), Verdict::RaceFree);
    assert_eq!(by_id("E4b"), Verdict::Race);
    assert_eq!(by_id("E1b"), Verdict::Invalid);
}

#[test]
fn coarse_baseline_is_strictly_less_precise() {
    let rows = ablation_granularity(&Budget::quick());
    // Fine-grained accepts everything the coarse baseline accepts…
    for row in &rows {
        if row.coarse_accepts {
            assert!(row.fine_grained_accepts, "{} regressed", row.case);
        }
    }
    // …and accepts at least two fusions the baseline rejects.
    let gap = rows
        .iter()
        .filter(|r| !r.coarse_accepts && r.fine_grained_accepts)
        .count();
    assert!(gap >= 2);
}
