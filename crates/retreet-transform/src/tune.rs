//! The certified schedule autotuner: enumerate the schedule space of
//! `Main`'s pass pipeline, certify every candidate through the verifier,
//! measure the survivors with a caller-supplied cost model, and return the
//! cheapest *certified* schedule — never slower than the best baseline.
//!
//! # The search space
//!
//! [`fuse_main_passes`](crate::fuse_main_passes) emits the single canonical
//! whole-run fusion and
//! [`synthesize_parallel_main`](crate::synthesize_parallel_main) the single
//! canonical parallel composition.  Neither is always the best schedule:
//! the committed BENCH_codegen numbers show the fused cycletree pipeline
//! *losing* to the unfused one on the VM, and the E3 whole-pass fusion wins
//! only marginally.  Following Sakka et al.'s fine-grained-fusion insight,
//! the tuner enumerates **contiguous partial-fusion groupings** of the
//! fusable pass run — for a run of `k` passes, every one of the `2^(k-1)`
//! compositions (`[A+B+C]`, `[A+B][C]`, `[A][B+C]`, `[A][B][C]`) — and, per
//! grouping, up to three schedule variants:
//!
//! * `seq` — the grouped passes composed sequentially (the all-singleton
//!   sequential grouping is the original program itself and is skipped: it
//!   *is* the baseline);
//! * `par-passes` — the group calls wrapped in a parallel composition
//!   (needs two or more groups);
//! * `par-rec` — sibling recursive calls on distinct children parallelized
//!   inside every traversal function of the grouped program.
//!
//! Enumeration order is deterministic (grouping masks ascending from the
//! whole-run fusion to the all-singleton split; `seq`, `par-passes`,
//! `par-rec` within a grouping) and truncated at
//! [`TuneOptions::max_candidates`].
//!
//! # Certification
//!
//! Every constructible candidate goes to the verifier in **one
//! [`Verifier::verify_batch`] call** — an equivalence query against the
//! original for each candidate, plus a data-race query for each candidate
//! containing parallel composition — so the whole search shares the façade's
//! verdict cache, single-flight coalescing and incremental solver state.  A
//! candidate is certified only when its equivalence verdict is positive
//! *and* (when parallel) its race verdict is `RaceFree`.  Refused candidates
//! are kept in the candidate table with their typed refusal — the
//! counterexample or race witness — never silently dropped.
//!
//! # Measurement
//!
//! The tuner does not execute programs itself: it takes a cost closure and
//! charges it with measuring each certified candidate (plus the original
//! baseline).  The canonical cost model is `retreet_runtime`'s
//! `tune_and_compile`, which compiles each candidate once through the
//! `retreet-codegen` VM tier (with certified iterative lowering) and times
//! best-of-N runs on a seeded tree — never the interpreter.  The crate
//! layering forces this inversion: `retreet-codegen` depends on this crate
//! for [`CertifiedTransform`], so the VM cannot be named here.
//!
//! # The guarantee
//!
//! The winner is the cheapest *measured, certified* program among the
//! candidates and the original; the canonical whole-run fusion is itself the
//! first enumerated candidate.  A search that finds nothing faster therefore
//! falls back to a baseline, and [`TunedSchedule::winner`] is never slower
//! than `min(original, canonical fusion)` on the measured workload.

use std::ops::Range;

use retreet_lang::ast::{Block, CallBlock, Func, Program, Stmt, MAIN};
use retreet_lang::pretty::print_program;
use retreet_lang::rewrite;
use retreet_lang::validate::{has_parallelism, validate};
use retreet_verify::{Outcome, Query, Verdict, Verifier};

use crate::fusion::{find_fusable_run, FusionBuilder};
use crate::schedule::parallelize_stmt;
use crate::{
    finalize_program, unsupported, Certificate, CertificateKind, CertifiedTransform, TransformError,
};

/// Widest pass run the tuner will enumerate groupings for (`2^(k-1)`
/// compositions; beyond this the space is truncated by the candidate cap
/// anyway, but the mask arithmetic needs a hard bound).
const MAX_RUN_WIDTH: usize = 16;

/// Knobs for the schedule search.  The search fields (`max_candidates`)
/// are interpreted here; the measurement fields (`tree_height`, `seed`,
/// `batches`, `per_batch`) travel with the options so cost models — e.g.
/// `retreet_runtime::tune_and_compile`'s VM timer — build their workload
/// from the same record the search was configured with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneOptions {
    /// Upper bound on enumerated candidates (deterministic truncation).
    pub max_candidates: usize,
    /// Height of the complete measurement tree the cost model seeds.
    pub tree_height: usize,
    /// Arity of the complete measurement tree (2 = binary, the default).
    /// Cost models clamp this up to the program's declared arity so a
    /// k-ary program is always measured on a tree with all its axes.
    pub tree_arity: u8,
    /// Seed for the measurement tree's field values.
    pub seed: u64,
    /// Timing batches per measurement (the cost model keeps the best).
    pub batches: usize,
    /// Runs per timing batch.
    pub per_batch: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            max_candidates: 32,
            tree_height: 12,
            tree_arity: 2,
            seed: 7,
            batches: 3,
            per_batch: 3,
        }
    }
}

impl TuneOptions {
    /// A smaller configuration for smoke tests and `--quick` bench runs.
    pub fn quick() -> Self {
        TuneOptions {
            max_candidates: 16,
            tree_height: 8,
            tree_arity: 2,
            seed: 7,
            batches: 2,
            per_batch: 2,
        }
    }
}

/// How a candidate schedules its grouped passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Group calls composed sequentially.
    Sequential,
    /// Group calls wrapped in a parallel composition (`g1 ‖ g2 ‖ …`).
    ParallelPasses,
    /// Sibling recursive calls on distinct children parallelized inside
    /// every traversal function.
    ParallelRecursion,
}

impl ScheduleKind {
    /// The short label used in candidate names and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ScheduleKind::Sequential => "seq",
            ScheduleKind::ParallelPasses => "par-passes",
            ScheduleKind::ParallelRecursion => "par-rec",
        }
    }
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened to one enumerated candidate.
#[derive(Debug, Clone)]
pub enum CandidateStatus {
    /// The verifier certified the candidate equivalent (and, when parallel,
    /// race-free).
    Certified {
        /// The equivalence verdict against the original (Theorem 3).
        equivalence: Verdict,
        /// The race-freedom verdict (Theorem 2); `None` for sequential
        /// candidates, which pose no race question.
        race: Option<Verdict>,
        /// The cost model's measurement, or why the candidate could not be
        /// measured (and therefore cannot win).
        cost: Result<f64, String>,
    },
    /// The candidate was refused — construction failure, equivalence
    /// counterexample, or race witness — with the typed reason kept.
    Refused(TransformError),
}

impl CandidateStatus {
    /// True for certified candidates (measured or not).
    pub fn is_certified(&self) -> bool {
        matches!(self, CandidateStatus::Certified { .. })
    }

    /// The measured cost, when certified and measured.
    pub fn cost_seconds(&self) -> Option<f64> {
        match self {
            CandidateStatus::Certified { cost: Ok(c), .. } => Some(*c),
            _ => None,
        }
    }
}

/// One enumerated point of the schedule space.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TuneCandidate {
    /// Deterministic label, e.g. `[ConvertValues+MinifyFont][ReduceInit]/seq`.
    pub label: String,
    /// The grouping: callee names per contiguous group of the pass run.
    pub grouping: Vec<Vec<String>>,
    /// The schedule variant applied to the grouping.
    pub schedule: ScheduleKind,
    /// The constructed program (`None` when construction itself failed).
    pub program: Option<Program>,
    /// Names of the functions the construction synthesized.
    pub synthesized: Vec<String>,
    /// Certification / measurement outcome.
    pub status: CandidateStatus,
}

impl TuneCandidate {
    /// The candidate rendered as `.retreet` surface syntax (empty when
    /// construction failed).
    pub fn source(&self) -> String {
        self.program.as_ref().map(print_program).unwrap_or_default()
    }
}

/// The autotuner's result: the winning certified schedule, the measured
/// baselines, and the full scored candidate table.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TunedSchedule {
    /// The winning schedule with its certificate.  When no candidate beat
    /// the baselines this is the best baseline itself (the original under
    /// a trivial equivalence certificate, or the canonical fusion).
    pub winner: CertifiedTransform,
    /// Label of the winner (`"original"` for the untransformed baseline).
    pub winner_label: String,
    /// Measured cost of the winner, seconds.
    pub winner_seconds: f64,
    /// Measured cost of the original program, seconds.
    pub baseline_original_seconds: f64,
    /// Measured cost of the canonical whole-run fusion (the first
    /// enumerated candidate), when it certified and measured.
    pub baseline_fused_seconds: Option<f64>,
    /// Every enumerated candidate in enumeration order — certified with
    /// costs, refused with witnesses.
    pub candidates: Vec<TuneCandidate>,
}

impl TunedSchedule {
    /// The better of the two baselines.
    pub fn best_baseline_seconds(&self) -> f64 {
        match self.baseline_fused_seconds {
            Some(fused) => self.baseline_original_seconds.min(fused),
            None => self.baseline_original_seconds,
        }
    }

    /// best-baseline / winner (≥ 1 by construction).
    pub fn speedup(&self) -> f64 {
        self.best_baseline_seconds() / self.winner_seconds
    }

    /// How many candidates were certified.
    pub fn certified_count(&self) -> usize {
        self.candidates
            .iter()
            .filter(|c| c.status.is_certified())
            .count()
    }

    /// How many candidates were refused (with their witnesses kept).
    pub fn refused_count(&self) -> usize {
        self.candidates.len() - self.certified_count()
    }
}

/// Splits `k` passes into contiguous groups per `mask`: bit `i` set means a
/// group boundary between pass `i` and pass `i + 1`.
fn grouping_for(mask: u32, k: usize) -> Vec<Range<usize>> {
    let mut groups = Vec::new();
    let mut start = 0;
    for i in 0..k - 1 {
        if mask & (1 << i) != 0 {
            groups.push(start..i + 1);
            start = i + 1;
        }
    }
    groups.push(start..k);
    groups
}

/// One grouped construction before certification.
struct Construction {
    grouping: Vec<Vec<String>>,
    schedule: ScheduleKind,
    program: Program,
    synthesized: Vec<String>,
}

fn grouping_label(grouping: &[Vec<String>], schedule: ScheduleKind) -> String {
    let groups: String = grouping
        .iter()
        .map(|g| format!("[{}]", g.join("+")))
        .collect();
    format!("{groups}/{schedule}")
}

/// The pre-finalization pieces of one grouped program: the function list,
/// the group call statements (so schedule variants can rearrange them) and
/// the names of the freshly synthesized fused functions.
struct GroupedRun {
    funcs: Vec<Func>,
    group_calls: Vec<CallBlock>,
    synthesized: Vec<String>,
}

/// Builds the sequentially grouped program for one grouping of the run:
/// fused functions for every multi-pass group, original calls for
/// singletons, `Main` rewritten with one call per group.
fn build_grouping(
    program: &Program,
    items: &[Stmt],
    start: usize,
    run: &[CallBlock],
    groups: &[Range<usize>],
) -> Result<GroupedRun, TransformError> {
    let mut builder = FusionBuilder::new(program);
    let mut group_calls: Vec<CallBlock> = Vec::new();
    for range in groups {
        let calls = &run[range.clone()];
        if calls.len() == 1 {
            group_calls.push(calls[0].clone());
            continue;
        }
        let tuple: Vec<String> = calls.iter().map(|c| c.callee.clone()).collect();
        let callee = builder.fused_name_for(&tuple);
        group_calls.push(CallBlock {
            results: calls
                .iter()
                .flat_map(|c| c.results.iter().cloned())
                .collect(),
            callee,
            target: calls[0].target,
            args: calls.iter().flat_map(|c| c.args.iter().cloned()).collect(),
        });
    }
    builder.build_all()?;
    let mut funcs = std::mem::take(&mut builder.fused);
    let synthesized: Vec<String> = funcs.iter().map(|f| f.name.clone()).collect();
    funcs.extend(program.funcs.iter().filter(|f| f.name != MAIN).cloned());

    let main = program.main().expect("validated programs have a Main");
    let mut new_items: Vec<Stmt> = items[..start].to_vec();
    new_items.extend(
        group_calls
            .iter()
            .map(|call| Stmt::Block(Block::call(call.clone()))),
    );
    new_items.extend(items[start + run.len()..].iter().cloned());
    funcs.push(Func {
        body: rewrite::compose(new_items),
        ..main.clone()
    });
    Ok(GroupedRun {
        funcs,
        group_calls,
        synthesized,
    })
}

/// Replaces the sequential group calls in `Main` with a single parallel
/// composition of the same calls.
fn par_passes_main(
    program: &Program,
    items: &[Stmt],
    start: usize,
    run_len: usize,
    group_calls: &[CallBlock],
) -> Stmt {
    let main = program.main().expect("validated programs have a Main");
    let mut new_items: Vec<Stmt> = items[..start].to_vec();
    new_items.push(Stmt::Par(
        group_calls
            .iter()
            .map(|call| Stmt::Block(Block::call(call.clone())))
            .collect(),
    ));
    new_items.extend(items[start + run_len..].iter().cloned());
    let _ = main;
    rewrite::compose(new_items)
}

/// Enumerates the candidate constructions for `program`'s fusable run, in
/// deterministic order, truncated at `max_candidates`.  Construction
/// failures are returned alongside the successes so the candidate table
/// never drops an enumerated point.
#[allow(clippy::type_complexity)]
fn enumerate_candidates(
    program: &Program,
    options: &TuneOptions,
) -> Result<Vec<Result<Construction, TuneCandidate>>, TransformError> {
    let main = program.main().expect("validated programs have a Main");
    let items = rewrite::flatten_seq(&main.body);
    let (start, run) = find_fusable_run(&items)?;
    let k = run.len();
    if k > MAX_RUN_WIDTH {
        return unsupported(format!(
            "pass run of {k} calls exceeds the tuner's width bound of {MAX_RUN_WIDTH}"
        ));
    }

    let mut out: Vec<Result<Construction, TuneCandidate>> = Vec::new();
    let cap = options.max_candidates.max(1);
    'masks: for mask in 0..(1u32 << (k - 1)) {
        let groups = grouping_for(mask, k);
        let all_singletons = groups.len() == k;
        let grouping_names: Vec<Vec<String>> = groups
            .iter()
            .map(|range| {
                run[range.clone()]
                    .iter()
                    .map(|c| c.callee.clone())
                    .collect()
            })
            .collect();
        let built = build_grouping(program, &items, start, &run, &groups);
        let GroupedRun {
            funcs,
            group_calls,
            synthesized,
        } = match built {
            Ok(parts) => parts,
            Err(err) => {
                // The grouping itself cannot be constructed (a group's
                // functions fall outside the fusable fragment); record one
                // refused candidate for the whole grouping and move on.
                out.push(Err(TuneCandidate {
                    label: grouping_label(&grouping_names, ScheduleKind::Sequential),
                    grouping: grouping_names,
                    schedule: ScheduleKind::Sequential,
                    program: None,
                    synthesized: Vec::new(),
                    status: CandidateStatus::Refused(err),
                }));
                if out.len() >= cap {
                    break 'masks;
                }
                continue;
            }
        };

        let mut variants: Vec<(ScheduleKind, Result<Program, TransformError>)> = Vec::new();
        // seq — skipped for the all-singleton grouping, which reconstructs
        // the original program (that is the baseline, not a candidate).
        if !all_singletons {
            variants.push((
                ScheduleKind::Sequential,
                finalize_program(program.with_funcs(funcs.clone())),
            ));
        }
        // par-passes — needs at least two groups to compose in parallel.
        if groups.len() >= 2 {
            let mut par_funcs = funcs.clone();
            let main_slot = par_funcs.len() - 1;
            par_funcs[main_slot].body =
                par_passes_main(program, &items, start, run.len(), &group_calls);
            variants.push((
                ScheduleKind::ParallelPasses,
                finalize_program(program.with_funcs(par_funcs)),
            ));
        }
        // par-rec — parallelize sibling recursion inside every traversal
        // function; only a candidate when the rewrite changed something.
        {
            let mut changed_total = 0usize;
            let rec_funcs: Vec<Func> = funcs
                .iter()
                .map(|func| {
                    if func.name == MAIN {
                        return func.clone();
                    }
                    let (body, changed) = parallelize_stmt(&func.body, true);
                    changed_total += changed;
                    Func {
                        body,
                        ..func.clone()
                    }
                })
                .collect();
            if changed_total > 0 {
                variants.push((
                    ScheduleKind::ParallelRecursion,
                    finalize_program(program.with_funcs(rec_funcs)),
                ));
            }
        }

        for (schedule, constructed) in variants {
            let label = grouping_label(&grouping_names, schedule);
            out.push(match constructed {
                Ok(candidate) => Ok(Construction {
                    grouping: grouping_names.clone(),
                    schedule,
                    program: candidate,
                    synthesized: synthesized.clone(),
                }),
                Err(err) => Err(TuneCandidate {
                    label,
                    grouping: grouping_names.clone(),
                    schedule,
                    program: None,
                    synthesized: Vec::new(),
                    status: CandidateStatus::Refused(err),
                }),
            });
            if out.len() >= cap {
                break 'masks;
            }
        }
    }
    Ok(out)
}

/// Runs the schedule search for `program` and returns the winning certified
/// schedule (see the [module docs](self) for the search space, the batch
/// certification flow and the never-slower-than-baseline guarantee).
///
/// `cost` measures one program and returns its cost in seconds — smaller is
/// better — or an error when the program cannot be measured on the required
/// tier (such a candidate stays in the table but cannot win).  Use
/// `retreet_runtime::tune_and_compile` for the canonical VM-backed cost
/// model; the closure indirection exists because the VM crate sits above
/// this one in the dependency order.
///
/// Errors: [`TransformError::UnsupportedShape`] when `Main` has no fusable
/// run or the original program cannot be measured;
/// [`TransformError::Rejected`] when the verifier refuses the identity
/// certificate for a baseline winner.
pub fn tune(
    verifier: &Verifier,
    program: &Program,
    options: &TuneOptions,
    cost: &mut dyn FnMut(&Program) -> Result<f64, String>,
) -> Result<TunedSchedule, TransformError> {
    if let Some(first) = validate(program).first() {
        return unsupported(format!("input program fails validation: {first}"));
    }
    let enumerated = enumerate_candidates(program, options)?;

    // One batch for the whole space: an equivalence query per constructible
    // candidate, plus a race query per parallel candidate.
    enum Role {
        Equivalence,
        Race,
    }
    let mut queries: Vec<Query<'_>> = Vec::new();
    let mut slots: Vec<(usize, Role)> = Vec::new();
    for (index, entry) in enumerated.iter().enumerate() {
        if let Ok(construction) = entry {
            queries.push(Query::Equivalence(program, &construction.program));
            slots.push((index, Role::Equivalence));
            if construction
                .program
                .funcs
                .iter()
                .any(|f| has_parallelism(&f.body))
            {
                queries.push(Query::DataRace(&construction.program));
                slots.push((index, Role::Race));
            }
        }
    }
    let verdicts = verifier.verify_batch(&queries);

    let mut equivalence: Vec<Option<Result<Verdict, TransformError>>> = Vec::new();
    equivalence.resize_with(enumerated.len(), || None);
    let mut race: Vec<Option<Result<Verdict, TransformError>>> = Vec::new();
    race.resize_with(enumerated.len(), || None);
    for ((index, role), verdict) in slots.into_iter().zip(verdicts) {
        let resolved = match verdict {
            Ok(verdict) => match (&role, &verdict.outcome) {
                (Role::Equivalence, Outcome::Equivalent { .. }) => Ok(verdict),
                (Role::Equivalence, Outcome::NotEquivalent(_)) => {
                    let Outcome::NotEquivalent(ce) = verdict.outcome else {
                        unreachable!()
                    };
                    Err(TransformError::NotEquivalent(ce))
                }
                (Role::Race, Outcome::RaceFree { .. }) => Ok(verdict),
                (Role::Race, Outcome::Race(_)) => {
                    let Outcome::Race(witness) = verdict.outcome else {
                        unreachable!()
                    };
                    Err(TransformError::DataRace(witness))
                }
                (_, other) => Err(TransformError::UnsupportedShape(format!(
                    "certification query produced unexpected outcome {other:?}"
                ))),
            },
            Err(err) => Err(TransformError::Rejected(err)),
        };
        match role {
            Role::Equivalence => equivalence[index] = Some(resolved),
            Role::Race => race[index] = Some(resolved),
        }
    }

    // Fold verdicts into the candidate table, measuring the certified ones.
    let mut candidates: Vec<TuneCandidate> = Vec::new();
    for (index, entry) in enumerated.into_iter().enumerate() {
        match entry {
            Err(refused) => candidates.push(refused),
            Ok(construction) => {
                let label = grouping_label(&construction.grouping, construction.schedule);
                let equivalence_result = equivalence[index]
                    .take()
                    .expect("every construction was queried");
                let race_result = race[index].take();
                let status = match (equivalence_result, race_result) {
                    (Ok(equiv), None) => CandidateStatus::Certified {
                        equivalence: equiv,
                        race: None,
                        cost: cost(&construction.program),
                    },
                    (Ok(equiv), Some(Ok(race_verdict))) => CandidateStatus::Certified {
                        equivalence: equiv,
                        race: Some(race_verdict),
                        cost: cost(&construction.program),
                    },
                    (Ok(_), Some(Err(refusal))) => CandidateStatus::Refused(refusal),
                    (Err(refusal), _) => CandidateStatus::Refused(refusal),
                };
                candidates.push(TuneCandidate {
                    label,
                    grouping: construction.grouping,
                    schedule: construction.schedule,
                    program: Some(construction.program),
                    synthesized: construction.synthesized,
                    status,
                });
            }
        }
    }

    // Baselines.  The canonical whole-run fusion is the first enumerated
    // candidate (grouping mask 0, sequential), so its measurement doubles
    // as the fused baseline.
    let baseline_original_seconds = cost(program).map_err(|err| {
        TransformError::UnsupportedShape(format!("the original program cannot be measured: {err}"))
    })?;
    let baseline_fused_seconds = candidates
        .iter()
        .find(|c| c.grouping.len() == 1 && c.schedule == ScheduleKind::Sequential)
        .and_then(|c| c.status.cost_seconds());

    // Winner: cheapest measured certified candidate, strictly cheaper than
    // the original baseline (ties go to the baseline / earlier candidate).
    let mut winner_index: Option<usize> = None;
    let mut winner_seconds = baseline_original_seconds;
    for (index, candidate) in candidates.iter().enumerate() {
        if let Some(seconds) = candidate.status.cost_seconds() {
            if seconds < winner_seconds {
                winner_index = Some(index);
                winner_seconds = seconds;
            }
        }
    }

    let (winner, winner_label) = match winner_index {
        Some(index) => {
            let candidate = &candidates[index];
            let CandidateStatus::Certified { equivalence, .. } = &candidate.status else {
                unreachable!("only certified candidates carry costs")
            };
            (
                CertifiedTransform {
                    original: program.clone(),
                    transformed: candidate
                        .program
                        .clone()
                        .expect("certified candidates were constructed"),
                    synthesized: candidate.synthesized.clone(),
                    certificate: Certificate {
                        kind: CertificateKind::Equivalence,
                        verdict: equivalence.clone(),
                    },
                },
                candidate.label.clone(),
            )
        }
        None => {
            // Nothing certified-and-measured beat the original: fall back to
            // the baseline, certified by the (trivial) identity equivalence
            // so even the fallback carries a verifier verdict.
            let verdict = verifier.verify(Query::Equivalence(program, program))?;
            if !matches!(verdict.outcome, Outcome::Equivalent { .. }) {
                return unsupported(format!(
                    "identity equivalence produced unexpected outcome {:?}",
                    verdict.outcome
                ));
            }
            (
                CertifiedTransform {
                    original: program.clone(),
                    transformed: program.clone(),
                    synthesized: Vec::new(),
                    certificate: Certificate {
                        kind: CertificateKind::Equivalence,
                        verdict,
                    },
                },
                String::from("original"),
            )
        }
    };

    Ok(TunedSchedule {
        winner,
        winner_label,
        winner_seconds,
        baseline_original_seconds,
        baseline_fused_seconds,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_lang::validate::has_parallelism;

    fn verifier() -> Verifier {
        Verifier::builder()
            .equiv_nodes(4)
            .race_nodes(3)
            .valuations(1)
            .build()
    }

    /// A deterministic fake cost model: every program costs `base`, except
    /// sources containing `cheap_marker`, which cost half.
    fn marker_cost(cheap_marker: &'static str) -> impl FnMut(&Program) -> Result<f64, String> {
        move |program: &Program| {
            let source = print_program(program);
            Ok(if source.contains(cheap_marker) {
                0.5
            } else {
                1.0
            })
        }
    }

    #[test]
    fn enumerates_the_css_grouping_space() {
        let program = corpus::css_minify_original();
        let options = TuneOptions::default();
        let enumerated = enumerate_candidates(&program, &options).expect("E3 has a fusable run");
        let labels: Vec<String> = enumerated
            .iter()
            .map(|entry| match entry {
                Ok(c) => grouping_label(&c.grouping, c.schedule),
                Err(c) => c.label.clone(),
            })
            .collect();
        // Whole-run fusion first, all-singleton split last; the sequential
        // all-singleton variant (the original itself) is never a candidate.
        assert_eq!(
            labels[0],
            "[ConvertValues+MinifyFont+ReduceInit]/seq".to_string()
        );
        assert!(labels.contains(&"[ConvertValues+MinifyFont][ReduceInit]/seq".to_string()));
        assert!(labels.contains(&"[ConvertValues][MinifyFont+ReduceInit]/seq".to_string()));
        assert!(labels.contains(&"[ConvertValues][MinifyFont][ReduceInit]/par-passes".to_string()));
        assert!(!labels.contains(&"[ConvertValues][MinifyFont][ReduceInit]/seq".to_string()));
        // Deterministic: a second enumeration is identical.
        let again: Vec<String> = enumerate_candidates(&program, &options)
            .unwrap()
            .iter()
            .map(|entry| match entry {
                Ok(c) => grouping_label(&c.grouping, c.schedule),
                Err(c) => c.label.clone(),
            })
            .collect();
        assert_eq!(labels, again);
    }

    #[test]
    fn candidate_cap_truncates_deterministically() {
        let program = corpus::css_minify_original();
        let options = TuneOptions {
            max_candidates: 3,
            ..TuneOptions::default()
        };
        let enumerated = enumerate_candidates(&program, &options).unwrap();
        assert_eq!(enumerated.len(), 3);
        let full = enumerate_candidates(&program, &TuneOptions::default()).unwrap();
        assert!(full.len() > 3);
        for (short, long) in enumerated.iter().zip(full.iter()) {
            let label = |entry: &Result<Construction, TuneCandidate>| match entry {
                Ok(c) => grouping_label(&c.grouping, c.schedule),
                Err(c) => c.label.clone(),
            };
            assert_eq!(label(short), label(long));
        }
    }

    #[test]
    fn tune_certifies_partial_fusions_and_keeps_refusals() {
        let verifier = verifier();
        let program = corpus::size_counting_sequential();
        let tuned = tune(
            &verifier,
            &program,
            &TuneOptions::quick(),
            &mut marker_cost("Fused_Odd_Even"),
        )
        .expect("E1 tunes");
        // The whole-run fusion exists, certified, and (being the cheap
        // marker) wins with the fused baseline cost.
        assert_eq!(tuned.winner_label, "[Odd+Even]/seq");
        assert_eq!(tuned.baseline_fused_seconds, Some(0.5));
        assert_eq!(tuned.winner_seconds, 0.5);
        assert!(tuned.speedup() >= 1.0);
        assert!(tuned.certified_count() >= 2, "seq + par variants certify");
        // The winner carries a real equivalence certificate.
        assert_eq!(tuned.winner.certificate.kind, CertificateKind::Equivalence);
        // par-passes over the singletons is the Fig. 3 parallel schedule:
        // certified race-free with both verdicts recorded.
        let par = tuned
            .candidates
            .iter()
            .find(|c| c.label == "[Odd][Even]/par-passes")
            .expect("the parallel-passes candidate is enumerated");
        match &par.status {
            CandidateStatus::Certified {
                race: Some(race), ..
            } => assert!(race.is_race_free()),
            other => panic!("expected a certified parallel candidate, got {other:?}"),
        }
    }

    #[test]
    fn tune_falls_back_to_the_original_when_nothing_is_cheaper() {
        let verifier = verifier();
        let program = corpus::size_counting_sequential();
        // Every program costs the same: no candidate is *strictly* cheaper,
        // so the winner is the original baseline under an identity
        // certificate.
        let tuned =
            tune(&verifier, &program, &TuneOptions::quick(), &mut |_| Ok(1.0)).expect("E1 tunes");
        assert_eq!(tuned.winner_label, "original");
        assert_eq!(tuned.winner.transformed, program);
        assert!(tuned.winner.certificate.verdict.is_equivalent());
        assert_eq!(tuned.winner_seconds, tuned.baseline_original_seconds);
    }

    #[test]
    fn racy_parallel_candidates_are_refused_with_the_witness() {
        let verifier = verifier();
        let program = corpus::cycletree_original();
        let tuned =
            tune(&verifier, &program, &TuneOptions::quick(), &mut |_| Ok(1.0)).expect("E4 tunes");
        // RootMode ‖ ComputeRouting races on `num` (the E4b refusal): the
        // par-passes candidate must be in the table, refused, witness kept.
        let refused = tuned
            .candidates
            .iter()
            .find(|c| c.schedule == ScheduleKind::ParallelPasses && c.grouping.len() == 2)
            .expect("the parallel-passes candidate is enumerated");
        match &refused.status {
            CandidateStatus::Refused(TransformError::DataRace(witness)) => {
                assert_eq!(witness.field, "num");
            }
            other => panic!("expected the E4b race refusal, got {other:?}"),
        }
        assert!(tuned.refused_count() >= 1);
    }

    #[test]
    fn measurement_failures_keep_the_candidate_but_cannot_win() {
        let verifier = verifier();
        let program = corpus::size_counting_sequential();
        // The cost model refuses everything but the original: the tuner
        // must fall back to the baseline instead of crowning an unmeasured
        // candidate.
        let original_source = print_program(&program);
        let tuned = tune(
            &verifier,
            &program,
            &TuneOptions::quick(),
            &mut |candidate: &Program| {
                if print_program(candidate) == original_source {
                    Ok(1.0)
                } else {
                    Err(String::from("tier unavailable"))
                }
            },
        )
        .expect("E1 tunes");
        assert_eq!(tuned.winner_label, "original");
        assert_eq!(tuned.baseline_fused_seconds, None);
        assert!(tuned
            .candidates
            .iter()
            .any(|c| matches!(&c.status, CandidateStatus::Certified { cost: Err(_), .. })));
    }

    #[test]
    fn parallel_recursion_candidates_contain_parallelism() {
        let program = corpus::size_counting_sequential();
        let enumerated = enumerate_candidates(&program, &TuneOptions::default()).unwrap();
        let par_rec = enumerated
            .iter()
            .filter_map(|entry| entry.as_ref().ok())
            .find(|c| c.schedule == ScheduleKind::ParallelRecursion)
            .expect("sibling recursion parallelizes");
        assert!(par_rec
            .program
            .funcs
            .iter()
            .any(|f| has_parallelism(&f.body)));
    }

    #[test]
    fn programs_without_a_fusable_run_are_refused() {
        let fused_already = corpus::size_counting_fused();
        assert!(matches!(
            tune(
                &verifier(),
                &fused_already,
                &TuneOptions::quick(),
                &mut |_| Ok(1.0)
            ),
            Err(TransformError::UnsupportedShape(_))
        ));
    }
}
