//! Traversal fusion: merge the consecutive traversal passes of `Main` into
//! a single fused traversal, certified by an equivalence verdict.
//!
//! # The construction
//!
//! Fusing `r1 = F(n, ā); r2 = G(n, b̄);` means synthesizing one function
//! that computes both results in a single walk.  Because Retreet traversals
//! may be *mutually recursive* (`Odd` calls `Even`) and *mode-switching*
//! (the cycletree's `InMode` calls `PostMode` on one child and `PreMode` on
//! the other), the unit of fusion is not a pair of functions but a **tuple**
//! of functions, discovered through a worklist:
//!
//! 1. The root tuple is the run of callees in `Main`, e.g. `(Odd, Even)`.
//! 2. For each tuple, every component is alpha-renamed apart
//!    (`f0_`, `f1_`, …) and decomposed into its *traversal shape*: the
//!    nil-branch, the recursive branch's call-free segments, the recursive
//!    calls (one per child), and the final return.
//! 3. The fused body interleaves the components segment by segment; at each
//!    call position the components' calls merge into a single call to the
//!    fused function of the *callee tuple* — which is pushed onto the
//!    worklist if it has not been built yet.  `(Odd, Even)` thus discovers
//!    `(Even, Odd)`, and `(RootMode, ComputeRouting)` discovers the three
//!    other cycletree mode pairs, reconstructing Fig. 9's hand-fused shape
//!    mechanically.
//! 4. Returns concatenate: the fused function returns every component's
//!    results, and the rewritten `Main` binds them to the original result
//!    variables in one call.
//!
//! The construction is deliberately *heuristic* — components whose call
//! orders differ are re-aligned to the first component's order, and segment
//! interleavings may reorder field accesses.  Soundness never rests on the
//! construction: the resulting program is only released inside a
//! [`CertifiedTransform`] whose equivalence verdict the verifier produced,
//! and incorrect constructions are refused with the counterexample.

use std::collections::{HashMap, HashSet, VecDeque};

use retreet_lang::ast::{
    AExpr, BExpr, Block, BlockKind, CallBlock, Func, NodeRef, Program, Stmt, StraightBlock, MAIN,
};
use retreet_lang::rewrite;
use retreet_lang::validate::validate;
use retreet_verify::Verifier;

use crate::{certify_fusion, finalize_program, unsupported, CertifiedTransform, TransformError};

/// The decomposed shape of a traversal function: a nil-guard conditional
/// whose recursive branch is a sequence of call-free segments separated by
/// recursive calls, ending in a return.
struct Shape {
    /// The nil branch: straight-line assignments plus the return values.
    nil: StraightBlock,
    /// `calls.len() + 1` call-free segment item lists (final return
    /// stripped from the last).
    segments: Vec<Vec<Stmt>>,
    /// The recursive calls, in the component's own syntactic order.
    calls: Vec<CallBlock>,
    /// The recursive branch's return values.
    rec_ret: Vec<AExpr>,
}

impl Shape {
    fn call_on(&self, target: NodeRef) -> Option<&CallBlock> {
        self.calls.iter().find(|c| c.target == target)
    }
}

fn stmt_contains_call(stmt: &Stmt) -> bool {
    stmt.blocks().iter().any(|b| b.is_call())
}

fn stmt_contains_ret(stmt: &Stmt) -> bool {
    stmt.blocks()
        .iter()
        .any(|b| b.as_straight().is_some_and(|s| s.ret.is_some()))
}

/// Decomposes a (locally renamed) traversal function into its [`Shape`],
/// refusing anything outside the supported fragment with a precise reason.
fn shape_of(func: &Func) -> Result<Shape, TransformError> {
    let body = rewrite::normalize_stmt(&func.body);
    let Stmt::If(cond, then_branch, else_branch) = body else {
        return unsupported(format!(
            "function `{}` does not start with a nil-guard conditional",
            func.name
        ));
    };
    let (nil_stmt, rec_stmt) = match &cond {
        BExpr::IsNil(NodeRef::Cur) => (*then_branch, *else_branch),
        BExpr::Not(inner) if matches!(**inner, BExpr::IsNil(NodeRef::Cur)) => {
            (*else_branch, *then_branch)
        }
        _ => {
            return unsupported(format!(
                "function `{}` is not guarded by a nil check on the current node",
                func.name
            ))
        }
    };

    // Nil branch: a single straight-line block ending in a return.
    let nil_items = rewrite::flatten_seq(&nil_stmt);
    let nil = match nil_items.as_slice() {
        [Stmt::Block(block)] => match &block.kind {
            BlockKind::Straight(straight) if straight.ret.is_some() => straight.clone(),
            _ => {
                return unsupported(format!(
                    "function `{}`: nil branch is not a returning straight-line block",
                    func.name
                ))
            }
        },
        _ => {
            return unsupported(format!(
                "function `{}`: nil branch is not a single straight-line block",
                func.name
            ))
        }
    };

    // Recursive branch: split into call-free segments around the calls.
    let mut segments: Vec<Vec<Stmt>> = vec![Vec::new()];
    let mut calls: Vec<CallBlock> = Vec::new();
    for item in rewrite::flatten_seq(&rec_stmt) {
        match &item {
            Stmt::Block(block) => match &block.kind {
                BlockKind::Call(call) => {
                    if call.target == NodeRef::Cur {
                        return unsupported(format!(
                            "function `{}` calls `{}` on the current node; only \
                             child-descending recursive calls can be fused",
                            func.name, call.callee
                        ));
                    }
                    if call.results.is_empty() {
                        return unsupported(format!(
                            "function `{}`: call to `{}` binds no results",
                            func.name, call.callee
                        ));
                    }
                    calls.push(call.clone());
                    segments.push(Vec::new());
                }
                BlockKind::Straight(_) => segments.last_mut().unwrap().push(item),
            },
            other => {
                if stmt_contains_call(other) {
                    return unsupported(format!(
                        "function `{}` nests a recursive call under a conditional or \
                         parallel composition",
                        func.name
                    ));
                }
                segments.last_mut().unwrap().push(item.clone());
            }
        }
    }

    // The final return must close the last segment; returns anywhere else
    // (early returns) cannot be merged.
    let last = segments.last_mut().unwrap();
    let rec_ret = match last.pop() {
        Some(Stmt::Block(block)) => match block.kind {
            BlockKind::Straight(straight) if straight.ret.is_some() => {
                let StraightBlock { assigns, ret } = straight;
                if !assigns.is_empty() {
                    last.push(Stmt::Block(Block::straight(StraightBlock {
                        assigns,
                        ret: None,
                    })));
                }
                ret.unwrap()
            }
            _ => {
                return unsupported(format!(
                    "function `{}`: recursive branch does not end in a return",
                    func.name
                ))
            }
        },
        _ => {
            return unsupported(format!(
                "function `{}`: recursive branch does not end in a return",
                func.name
            ))
        }
    };
    if segments.iter().flatten().any(stmt_contains_ret) {
        return unsupported(format!(
            "function `{}` returns before the end of its recursive branch",
            func.name
        ));
    }

    Ok(Shape {
        nil,
        segments,
        calls,
        rec_ret,
    })
}

/// The worklist-driven builder: tuple of function names → fused function.
/// `pub(crate)` so the schedule autotuner ([`crate::tune`]) can drive the
/// same construction over *partial* groupings of a pass run.
pub(crate) struct FusionBuilder<'a> {
    program: &'a Program,
    used_names: HashSet<String>,
    tuple_names: HashMap<Vec<String>, String>,
    queue: VecDeque<Vec<String>>,
    pub(crate) fused: Vec<Func>,
}

impl<'a> FusionBuilder<'a> {
    pub(crate) fn new(program: &'a Program) -> Self {
        FusionBuilder {
            program,
            used_names: program.funcs.iter().map(|f| f.name.clone()).collect(),
            tuple_names: HashMap::new(),
            queue: VecDeque::new(),
            fused: Vec::new(),
        }
    }

    /// The fused function's name for a tuple, enqueueing the tuple for
    /// construction on first sight.
    pub(crate) fn fused_name_for(&mut self, tuple: &[String]) -> String {
        if let Some(name) = self.tuple_names.get(tuple) {
            return name.clone();
        }
        let base = format!("Fused_{}", tuple.join("_"));
        let name = rewrite::fresh_name(&base, &mut self.used_names);
        self.tuple_names.insert(tuple.to_vec(), name.clone());
        self.queue.push_back(tuple.to_vec());
        name
    }

    /// Builds every queued tuple function (the queue grows as call-site
    /// tuples are discovered).
    pub(crate) fn build_all(&mut self) -> Result<(), TransformError> {
        while let Some(tuple) = self.queue.pop_front() {
            let name = self.tuple_names[&tuple].clone();
            let func = self.build_tuple_func(&tuple, name)?;
            self.fused.push(func);
        }
        Ok(())
    }

    fn build_tuple_func(&mut self, tuple: &[String], name: String) -> Result<Func, TransformError> {
        // Alpha-rename each component apart so the merged body is
        // capture-free.
        let components: Vec<Func> = tuple
            .iter()
            .enumerate()
            .map(|(i, fname)| {
                let func = self.program.func(fname).ok_or_else(|| {
                    TransformError::UnsupportedShape(format!(
                        "call to undefined function `{fname}`"
                    ))
                })?;
                Ok(rewrite::prefix_locals(func, &format!("f{i}_")))
            })
            .collect::<Result<_, TransformError>>()?;
        let shapes: Vec<Shape> = components
            .iter()
            .map(shape_of)
            .collect::<Result<_, TransformError>>()?;

        // Canonical call order: the first component's; every component must
        // call exactly the same set of children, once each.
        let canonical: Vec<NodeRef> = shapes[0].calls.iter().map(|c| c.target).collect();
        let mut sorted = canonical.clone();
        sorted.sort();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return unsupported(format!(
                "function `{}` calls the same child more than once",
                tuple[0]
            ));
        }
        for (fname, shape) in tuple.iter().zip(&shapes) {
            let mut targets: Vec<NodeRef> = shape.calls.iter().map(|c| c.target).collect();
            targets.sort();
            if targets != sorted {
                return unsupported(format!(
                    "functions `{}` and `{fname}` descend into different children and \
                     cannot be aligned",
                    tuple[0]
                ));
            }
        }

        // Interleave: per merge position, every component's segment in tuple
        // order, then the single fused call for the canonical child.
        let mut items: Vec<Stmt> = Vec::new();
        for position in 0..=canonical.len() {
            for shape in &shapes {
                items.extend(shape.segments[position].iter().cloned());
            }
            if let Some(&target) = canonical.get(position) {
                let mut results = Vec::new();
                let mut args = Vec::new();
                let mut callee_tuple = Vec::new();
                for shape in &shapes {
                    let call = shape.call_on(target).expect("target set was checked");
                    results.extend(call.results.iter().cloned());
                    args.extend(call.args.iter().cloned());
                    callee_tuple.push(call.callee.clone());
                }
                let callee = self.fused_name_for(&callee_tuple);
                items.push(Stmt::Block(Block::call(CallBlock {
                    results,
                    callee,
                    target,
                    args,
                })));
            }
        }
        let rec_ret: Vec<AExpr> = shapes.iter().flat_map(|s| s.rec_ret.clone()).collect();
        items.push(Stmt::Block(Block::straight(StraightBlock::ret(rec_ret))));
        let rec_branch = rewrite::normalize_stmt(&Stmt::Seq(items));

        let nil_branch = Stmt::Block(Block::straight(StraightBlock {
            assigns: shapes
                .iter()
                .flat_map(|s| s.nil.assigns.iter().cloned())
                .collect(),
            ret: Some(
                shapes
                    .iter()
                    .flat_map(|s| s.nil.ret.clone().unwrap_or_default())
                    .collect(),
            ),
        }));

        let num_returns = components.iter().map(|c| c.num_returns).sum();
        if num_returns == 0 {
            return unsupported("fused traversal would return no values");
        }
        Ok(Func {
            name,
            loc_param: "n".to_string(),
            int_params: components
                .iter()
                .flat_map(|c| c.int_params.iter().cloned())
                .collect(),
            num_returns,
            body: Stmt::if_else(BExpr::IsNil(NodeRef::Cur), nil_branch, rec_branch),
        })
    }
}

/// The run of consecutive fusable calls in `Main`: start index into the
/// flattened body and the calls themselves.
pub(crate) fn find_fusable_run(items: &[Stmt]) -> Result<(usize, Vec<CallBlock>), TransformError> {
    let mut start = 0;
    while start < items.len() {
        let Stmt::Block(block) = &items[start] else {
            start += 1;
            continue;
        };
        let Some(first) = block.as_call() else {
            start += 1;
            continue;
        };
        // Grow the run while the next item is a call on the same node that
        // is independent of the run so far; a dependent call *ends* the run
        // rather than refusing the program — the suffix starting at it may
        // still fuse.  Dependence is (a) reading or rebinding an earlier
        // call's result, or (b) reading any tree field in an argument once
        // the run is non-empty: an earlier traversal may write any field,
        // and merging would move the read before it.
        let mut run: Vec<CallBlock> = vec![first.clone()];
        let mut bound: HashSet<&String> = first.results.iter().collect();
        for item in &items[start + 1..] {
            let Stmt::Block(block) = item else { break };
            let Some(call) = block.as_call() else { break };
            if call.target != first.target
                || call.results.iter().any(|r| bound.contains(r))
                || call
                    .args
                    .iter()
                    .any(|arg| arg.vars().iter().any(|v| bound.contains(*v)))
                || call.args.iter().any(|arg| !arg.field_reads().is_empty())
            {
                break;
            }
            bound.extend(call.results.iter());
            run.push(call.clone());
        }
        if run.len() >= 2 {
            return Ok((start, run));
        }
        start += run.len();
    }
    unsupported(
        "Main contains no run of two or more consecutive, independent same-node traversal calls",
    )
}

/// Fuses the first run of two or more consecutive traversal calls in `Main`
/// into a single fused traversal, and certifies the transformation with an
/// equivalence verdict from `verifier`.
///
/// On the paper corpus this synthesizes Fig. 6a from the sequential
/// size-counting program (E1), the fused CSS minifier from the three-pass
/// original (E3), the fused `Swap`+`IncrmLeft` traversal (E2), and the four
/// fused cycletree modes of Fig. 9 (E4a) — each carrying its own
/// certificate.
///
/// Errors: [`TransformError::UnsupportedShape`] when no fusable run exists
/// or a callee is outside the supported traversal fragment;
/// [`TransformError::NotEquivalent`] when the verifier refuses the
/// construction with a counterexample.
pub fn fuse_main_passes(
    verifier: &Verifier,
    program: &Program,
) -> Result<CertifiedTransform, TransformError> {
    if let Some(first) = validate(program).first() {
        return unsupported(format!("input program fails validation: {first}"));
    }
    let main = program.main().expect("validated programs have a Main");
    let items = rewrite::flatten_seq(&main.body);
    let (start, run) = find_fusable_run(&items)?;

    let mut builder = FusionBuilder::new(program);
    let tuple: Vec<String> = run.iter().map(|c| c.callee.clone()).collect();
    let fused_entry = builder.fused_name_for(&tuple);
    builder.build_all()?;

    // Rewrite Main: the run becomes one call binding every original result.
    let fused_call = CallBlock {
        results: run.iter().flat_map(|c| c.results.iter().cloned()).collect(),
        callee: fused_entry,
        target: run[0].target,
        args: run.iter().flat_map(|c| c.args.iter().cloned()).collect(),
    };
    let mut new_items: Vec<Stmt> = items[..start].to_vec();
    new_items.push(Stmt::Block(Block::call(fused_call)));
    new_items.extend(items[start + run.len()..].iter().cloned());
    let new_main = Func {
        body: rewrite::compose(new_items),
        ..main.clone()
    };

    let mut funcs = std::mem::take(&mut builder.fused);
    let synthesized: Vec<String> = funcs.iter().map(|f| f.name.clone()).collect();
    funcs.extend(program.funcs.iter().filter(|f| f.name != MAIN).cloned());
    funcs.push(new_main);
    let transformed = finalize_program(program.with_funcs(funcs))?;
    let mut certified = certify_fusion(verifier, program, &transformed)?;
    certified.synthesized = synthesized;
    Ok(certified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::ast::ChildAxis;
    use retreet_lang::corpus;
    use retreet_lang::parser::parse_program;
    use retreet_lang::pretty::print_program;
    use retreet_verify::Engine;

    fn verifier() -> Verifier {
        Verifier::builder().equiv_nodes(4).valuations(2).build()
    }

    #[test]
    fn fuses_the_mutually_recursive_size_counting_pair() {
        let certified =
            fuse_main_passes(&verifier(), &corpus::size_counting_sequential()).expect("E1 fuses");
        // The worklist discovers the swapped tuple: two fused functions plus
        // Main, and Main performs a single traversal call.
        let names: Vec<&str> = certified
            .transformed
            .funcs
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["Fused_Odd_Even", "Fused_Even_Odd", "Main"]);
        let main = certified.transformed.main().unwrap();
        assert_eq!(
            main.blocks().iter().filter(|b| b.is_call()).count(),
            1,
            "Main performs a single fused call"
        );
        // The automata tier establishes the synthesized fusion's
        // correspondence directly, so the certificate is unbounded.
        assert_eq!(certified.certificate.engine(), Engine::Automata);
    }

    #[test]
    fn fuses_the_three_css_minification_passes() {
        let certified =
            fuse_main_passes(&verifier(), &corpus::css_minify_original()).expect("E3 fuses");
        // All three passes are self-recursive, so a single fused function
        // covers the whole tuple.
        assert_eq!(certified.transformed.funcs.len(), 2);
        let fused = &certified.transformed.funcs[0];
        assert_eq!(fused.name, "Fused_ConvertValues_MinifyFont_ReduceInit");
        assert_eq!(fused.num_returns, 3);
    }

    #[test]
    fn fuses_the_reordered_tree_mutation_pair() {
        // Swap descends l-then-r, IncrmLeft r-then-l; the builder re-aligns
        // IncrmLeft to Swap's order and the verifier confirms equivalence.
        let certified =
            fuse_main_passes(&verifier(), &corpus::tree_mutation_original()).expect("E2 fuses");
        assert!(certified.certificate.verdict.is_equivalent());
        // Exact reconstruction of the axis permutation: the fused function
        // descends in the *first* component's (Swap's) order — axis 0, then
        // axis 1 — even though IncrmLeft's own order was the reverse.
        let fused = certified
            .transformed
            .funcs
            .iter()
            .find(|f| f.name.starts_with("Fused_"))
            .expect("a fused function");
        let call_order: Vec<NodeRef> = fused
            .blocks()
            .into_iter()
            .filter_map(|b| b.as_call().map(|c| c.target))
            .collect();
        assert_eq!(
            call_order,
            vec![
                NodeRef::Child(ChildAxis::LEFT),
                NodeRef::Child(ChildAxis::RIGHT)
            ]
        );
    }

    #[test]
    fn aligns_kary_call_orders_to_the_first_components_permutation() {
        // Two ternary passes over disjoint fields whose child orders are
        // different permutations of {c0, c1, c2}: the builder re-aligns the
        // second to the first's order and the fused function reconstructs
        // exactly that permutation.
        let program = retreet_lang::parse_program(
            r#"
            arity 3;
            fn A(n) {
                if (n == nil) { return 0; } else {
                    x = A(n.c1);
                    y = A(n.c0);
                    z = A(n.c2);
                    n.a = x + y + z + 1;
                    return x + y + z + 1;
                }
            }
            fn B(n) {
                if (n == nil) { return 0; } else {
                    x = B(n.c2);
                    y = B(n.c1);
                    z = B(n.c0);
                    n.b = x + y + z + n.v;
                    return x + y + z + n.v;
                }
            }
            fn Main(n) {
                p = A(n);
                q = B(n);
                return p + q;
            }
            "#,
        )
        .expect("parses");
        let verifier = Verifier::builder().equiv_nodes(3).valuations(1).build();
        let certified = fuse_main_passes(&verifier, &program).expect("ternary pair fuses");
        assert!(certified.certificate.verdict.is_equivalent());
        let fused = certified
            .transformed
            .funcs
            .iter()
            .find(|f| f.name.starts_with("Fused_"))
            .expect("a fused function");
        let call_order: Vec<NodeRef> = fused
            .blocks()
            .into_iter()
            .filter_map(|b| b.as_call().map(|c| c.target))
            .collect();
        // A's order — c1, c0, c2 — is canonical.
        assert_eq!(
            call_order,
            vec![
                NodeRef::Child(ChildAxis(1)),
                NodeRef::Child(ChildAxis(0)),
                NodeRef::Child(ChildAxis(2))
            ]
        );
        assert_eq!(certified.transformed.arity, 3);
    }

    #[test]
    fn fuses_the_cycletree_modes_into_four_fused_functions() {
        let verifier = Verifier::builder().equiv_nodes(4).valuations(1).build();
        let certified =
            fuse_main_passes(&verifier, &corpus::cycletree_original()).expect("E4a fuses");
        // (RootMode, ComputeRouting) discovers the Pre/In/Post pairs —
        // Fig. 9's hand-fused program, synthesized.
        assert_eq!(certified.synthesized.len(), 4);
        assert!(certified
            .synthesized
            .iter()
            .all(|name| certified.transformed.func(name).is_some()));
    }

    #[test]
    fn fused_outputs_roundtrip_and_validate() {
        for program in [
            corpus::size_counting_sequential(),
            corpus::tree_mutation_original(),
            corpus::css_minify_original(),
        ] {
            let certified = fuse_main_passes(&verifier(), &program).expect("fusable");
            assert!(validate(&certified.transformed).is_empty());
            let printed = print_program(&certified.transformed);
            assert_eq!(parse_program(&printed).unwrap(), certified.transformed);
        }
    }

    #[test]
    fn dependent_calls_split_the_run_instead_of_refusing_the_program() {
        // `b = G(n, a)` reads the first call's result, so (F, G) cannot
        // merge — but the (G, H) suffix is independent and must be fused.
        let program = retreet_lang::parse_program(
            r#"
            fn F(n) {
                if (n == nil) { return 0; } else {
                    x = F(n.l);
                    y = F(n.r);
                    return x + y + n.v;
                }
            }
            fn G(n, k) {
                if (n == nil) { return 0; } else {
                    x = G(n.l, k);
                    y = G(n.r, k);
                    return x + y + k;
                }
            }
            fn H(n) {
                if (n == nil) { return 0; } else {
                    x = H(n.l);
                    y = H(n.r);
                    return x + y + 1;
                }
            }
            fn Main(n) {
                a = F(n);
                b = G(n, a);
                c = H(n);
                return a + b + c;
            }
        "#,
        )
        .unwrap();
        let certified = fuse_main_passes(&verifier(), &program).expect("the (G, H) suffix fuses");
        let main = certified.transformed.main().unwrap();
        let callees: Vec<String> = main
            .blocks()
            .into_iter()
            .filter_map(|b| b.as_call().map(|c| c.callee.clone()))
            .collect();
        assert_eq!(callees, vec!["F".to_string(), "Fused_G_H".to_string()]);
    }

    #[test]
    fn programs_without_a_fusable_run_are_refused() {
        let fused_already = corpus::size_counting_fused();
        assert!(matches!(
            fuse_main_passes(&verifier(), &fused_already),
            Err(TransformError::UnsupportedShape(_))
        ));
    }
}
