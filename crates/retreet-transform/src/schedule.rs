//! Parallel schedule synthesis: rewrite independent sequential compositions
//! into parallel compositions, certified by a race-freedom verdict.
//!
//! Two granularities, mirroring the paper's two parallelism stories:
//!
//! * [`synthesize_parallel_main`] — *pass-level*: `Main`'s consecutive
//!   traversal calls become parallel branches (`Odd(n) ‖ Even(n)`, the
//!   E1c question).
//! * [`parallelize_recursive_calls`] — *recursion-level*: inside every
//!   traversal function, sibling recursive calls that descend into
//!   *distinct* children become parallel branches (the disjoint-subtree
//!   parallelism `retreet_runtime`'s rayon schedules exploit).
//!
//! The rewriters only group calls that are syntactically independent
//! (disjoint result bindings, no argument reading an earlier result); the
//! semantic question — is the parallel program data-race-free? — goes to
//! the verifier, and the transformed program is only released with the
//! race-freedom verdict as its certificate (Theorem 2).  A program whose
//! parallelization races is refused with the concrete witness, exactly like
//! the cycletree parallelization of §5 (E4b).

use std::collections::HashSet;

use retreet_lang::ast::{CallBlock, Func, Program, Stmt, MAIN};
use retreet_lang::rewrite;
use retreet_lang::validate::validate;
use retreet_verify::Verifier;

use crate::{
    certify_parallelization, finalize_program, unsupported, CertifiedTransform, TransformError,
};

/// Whether two calls may join the same parallel run: disjoint result
/// bindings, no dataflow from earlier results into later arguments, no
/// tree-field reads in the joining call's arguments (an earlier branch's
/// traversal may write the field, and hoisting the read into a parallel
/// branch would reorder it), and — when `distinct_targets` is set —
/// pairwise different child targets.
fn run_accepts(run: &[CallBlock], call: &CallBlock, distinct_targets: bool) -> bool {
    let bound: HashSet<&String> = run.iter().flat_map(|c| c.results.iter()).collect();
    if call.results.iter().any(|r| bound.contains(r)) {
        return false;
    }
    if call
        .args
        .iter()
        .any(|arg| arg.vars().iter().any(|v| bound.contains(*v)))
    {
        return false;
    }
    if !run.is_empty()
        && run
            .iter()
            .chain(std::iter::once(call))
            .any(|c| c.args.iter().any(|arg| !arg.field_reads().is_empty()))
    {
        return false;
    }
    if distinct_targets && run.iter().any(|c| c.target == call.target) {
        return false;
    }
    true
}

/// Rewrites a statement, turning maximal qualifying runs of consecutive
/// call blocks into parallel compositions.  Returns the rewritten statement
/// and how many runs were parallelized.  `pub(crate)` so the schedule
/// autotuner ([`crate::tune`]) can apply the same rewrite to its partially
/// fused candidates.
pub(crate) fn parallelize_stmt(stmt: &Stmt, distinct_targets: bool) -> (Stmt, usize) {
    let mut changed = 0usize;
    let items = rewrite::flatten_seq(stmt);
    let mut out: Vec<Stmt> = Vec::new();
    let mut run: Vec<CallBlock> = Vec::new();

    fn flush(out: &mut Vec<Stmt>, run: &mut Vec<CallBlock>, changed: &mut usize) {
        if run.len() >= 2 {
            *changed += 1;
            out.push(Stmt::Par(
                run.drain(..)
                    .map(|call| Stmt::Block(retreet_lang::ast::Block::call(call)))
                    .collect(),
            ));
        } else {
            out.extend(
                run.drain(..)
                    .map(|call| Stmt::Block(retreet_lang::ast::Block::call(call))),
            );
        }
    }

    for item in items {
        match &item {
            Stmt::Block(block) => match block.as_call() {
                Some(call) if run_accepts(&run, call, distinct_targets) => {
                    run.push(call.clone());
                }
                Some(call) => {
                    flush(&mut out, &mut run, &mut changed);
                    run.push(call.clone());
                }
                None => {
                    flush(&mut out, &mut run, &mut changed);
                    out.push(item);
                }
            },
            Stmt::If(cond, then_branch, else_branch) => {
                flush(&mut out, &mut run, &mut changed);
                let (then_rw, then_changed) = parallelize_stmt(then_branch, distinct_targets);
                let (else_rw, else_changed) = parallelize_stmt(else_branch, distinct_targets);
                changed += then_changed + else_changed;
                out.push(Stmt::if_else(cond.clone(), then_rw, else_rw));
            }
            Stmt::Par(branches) => {
                flush(&mut out, &mut run, &mut changed);
                let rewritten: Vec<Stmt> = branches
                    .iter()
                    .map(|b| {
                        let (rw, c) = parallelize_stmt(b, distinct_targets);
                        changed += c;
                        rw
                    })
                    .collect();
                out.push(Stmt::Par(rewritten));
            }
            Stmt::Seq(_) => unreachable!("flatten_seq splices sequences"),
        }
    }
    flush(&mut out, &mut run, &mut changed);
    (rewrite::compose(out), changed)
}

/// Rewrites `Main`'s consecutive independent traversal calls into a
/// parallel composition and certifies the result race-free.
///
/// On the sequential size-counting program this synthesizes exactly the
/// Fig. 3 parallel composition `Odd(n) ‖ Even(n)` and certifies it; on the
/// sequential cycletree program the synthesized schedule races on `num` and
/// is refused with the witness (the E4b refusal, reproduced mechanically).
pub fn synthesize_parallel_main(
    verifier: &Verifier,
    program: &Program,
) -> Result<CertifiedTransform, TransformError> {
    if let Some(first) = validate(program).first() {
        return unsupported(format!("input program fails validation: {first}"));
    }
    let main = program.main().expect("validated programs have a Main");
    let (new_body, changed) = parallelize_stmt(&main.body, false);
    if changed == 0 {
        return unsupported("Main contains no run of independent consecutive calls");
    }
    let transformed = replace_func(program, MAIN, new_body)?;
    certify_parallelization(verifier, program, &transformed)
}

/// Rewrites sibling recursive calls on distinct children into parallel
/// compositions across every non-`Main` function, and certifies the result
/// race-free — the source-level counterpart of the runtime's
/// `par_postorder` schedule.
pub fn parallelize_recursive_calls(
    verifier: &Verifier,
    program: &Program,
) -> Result<CertifiedTransform, TransformError> {
    if let Some(first) = validate(program).first() {
        return unsupported(format!("input program fails validation: {first}"));
    }
    let mut changed_total = 0usize;
    let funcs: Vec<Func> = program
        .funcs
        .iter()
        .map(|func| {
            if func.name == MAIN {
                return func.clone();
            }
            let (body, changed) = parallelize_stmt(&func.body, true);
            changed_total += changed;
            Func {
                body,
                ..func.clone()
            }
        })
        .collect();
    if changed_total == 0 {
        return unsupported("no function has independent sibling recursive calls");
    }
    let transformed = finalize_program(program.with_funcs(funcs))?;
    certify_parallelization(verifier, program, &transformed)
}

fn replace_func(program: &Program, name: &str, body: Stmt) -> Result<Program, TransformError> {
    let funcs: Vec<Func> = program
        .funcs
        .iter()
        .map(|func| {
            if func.name == name {
                Func {
                    body: body.clone(),
                    ..func.clone()
                }
            } else {
                func.clone()
            }
        })
        .collect();
    finalize_program(program.with_funcs(funcs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_lang::validate::has_parallelism;

    fn verifier() -> Verifier {
        Verifier::builder().race_nodes(3).valuations(1).build()
    }

    #[test]
    fn synthesizes_the_fig3_parallel_composition() {
        let certified = synthesize_parallel_main(&verifier(), &corpus::size_counting_sequential())
            .expect("Odd ‖ Even is race-free");
        let main = certified.transformed.main().unwrap();
        assert!(has_parallelism(&main.body));
        assert!(certified.certificate.verdict.is_race_free());
        // The synthesized program matches the corpus parallel program.
        assert_eq!(certified.transformed, corpus::size_counting_parallel());
    }

    #[test]
    fn refuses_the_racy_cycletree_schedule_with_a_witness() {
        match synthesize_parallel_main(&verifier(), &corpus::cycletree_original()) {
            Err(TransformError::DataRace(witness)) => assert_eq!(witness.field, "num"),
            other => panic!("expected the E4b data-race refusal, got {other:?}"),
        }
    }

    #[test]
    fn parallelizes_disjoint_sibling_recursion() {
        let certified =
            parallelize_recursive_calls(&verifier(), &corpus::size_counting_sequential())
                .expect("sibling recursion over disjoint subtrees is race-free");
        // Odd and Even both gained a parallel pair of child calls.
        for name in ["Odd", "Even"] {
            let func = certified.transformed.func(name).unwrap();
            assert!(has_parallelism(&func.body), "{name} was parallelized");
        }
        assert!(certified.certificate.verdict.is_race_free());
    }

    #[test]
    fn already_parallel_or_call_free_programs_are_refused() {
        assert!(matches!(
            synthesize_parallel_main(&verifier(), &corpus::size_counting_fused()),
            Err(TransformError::UnsupportedShape(_))
        ));
    }
}
