//! # retreet-transform — certified source-to-source transformations
//!
//! The paper proves dependence, race-freedom and equivalence facts about
//! recursive tree traversals in order to *license program transformations*.
//! This crate is the layer that actually performs them: it constructs a
//! transformed [`Program`] at the AST level (using the rewriting utilities
//! of [`retreet_lang::rewrite`]) and only releases it inside a
//! [`CertifiedTransform`] — the transformed program paired with a
//! [`Certificate`] whose [`retreet_verify::Verdict`] carries engine
//! provenance, soundness and timing.  The verifier is the gatekeeper: a
//! construction the portfolio cannot certify is refused, never returned.
//!
//! Two transformation families are provided:
//!
//! * **Traversal fusion** ([`fuse_main_passes`]) — merge the consecutive
//!   traversal passes of `Main` into a single fused traversal (one pass over
//!   the tree instead of N), generalizing Fig. 6a of the paper from a
//!   hand-written artifact to a synthesized one.  Mutually recursive
//!   traversals and mode-switching traversals (the cycletree case) are
//!   handled by fusing *tuples* of functions discovered through a worklist.
//!   The certificate is an equivalence verdict (Theorem 3).
//! * **Parallel schedule synthesis** ([`synthesize_parallel_main`],
//!   [`parallelize_recursive_calls`]) — rewrite independent sequential
//!   compositions into parallel compositions (`s ‖ t`), at the pass level
//!   or at the recursive-call level.  The certificate is a race-freedom
//!   verdict (Theorem 2).
//!
//! A user-supplied candidate can also be certified without construction via
//! [`certify_fusion`] / [`certify_parallelization`] — the path
//! `retreet_runtime`'s capability types are thin wrappers over.
//!
//! On top of both families sits the **certified schedule autotuner**
//! ([`fn@tune`]): it enumerates contiguous partial-fusion groupings of `Main`'s
//! pass run crossed with the parallel schedule variants, certifies the whole
//! space through one [`Verifier::verify_batch`] call, measures the survivors
//! with a caller-supplied cost model (canonically `retreet_runtime`'s
//! VM-backed `tune_and_compile`), and returns the cheapest certified
//! schedule — never slower than the best baseline.
//!
//! # Example
//!
//! ```
//! use retreet_lang::corpus;
//! use retreet_transform::{fuse_main_passes, CertificateKind};
//! use retreet_verify::Verifier;
//!
//! let verifier = Verifier::builder().equiv_nodes(4).valuations(2).build();
//! let fused = fuse_main_passes(&verifier, &corpus::size_counting_sequential()).unwrap();
//! assert_eq!(fused.certificate.kind, CertificateKind::Equivalence);
//! // The synthesized program performs a single fused traversal.
//! let main = fused.transformed.main().unwrap();
//! assert_eq!(main.blocks().iter().filter(|b| b.is_call()).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fusion;
mod schedule;
pub mod tune;

pub use fusion::fuse_main_passes;
pub use schedule::{parallelize_recursive_calls, synthesize_parallel_main};
pub use tune::{tune, CandidateStatus, ScheduleKind, TuneCandidate, TuneOptions, TunedSchedule};

use std::fmt;

use retreet_analysis::equiv::EquivCounterExample;
use retreet_analysis::race::RaceWitness;
use retreet_lang::ast::Program;
use retreet_lang::parser::parse_program;
use retreet_lang::pretty::print_program;
use retreet_lang::rewrite;
use retreet_lang::validate::validate;
use retreet_verify::{Engine, Outcome, Query, Soundness, Verdict, Verifier, VerifyError};

/// Which theorem a certificate instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertificateKind {
    /// The transformed program is equivalent to the original (Theorem 3) —
    /// the certificate fusion transforms carry.
    Equivalence,
    /// The transformed program's parallel composition is data-race-free
    /// (Theorem 2) — the certificate parallel schedules carry.
    RaceFreedom,
}

impl fmt::Display for CertificateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateKind::Equivalence => write!(f, "equivalence"),
            CertificateKind::RaceFreedom => write!(f, "race-freedom"),
        }
    }
}

/// The proof artifact attached to a transformed program: the verifier's
/// verdict (with engine provenance, soundness caveat and timing) plus the
/// certificate kind it instantiates.
///
/// `#[non_exhaustive]`: readable everywhere, constructible only inside
/// this crate — a certificate always comes from an actual verdict.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Certificate {
    /// Which theorem the verdict instantiates.
    pub kind: CertificateKind,
    /// The façade verdict backing the transformation.
    pub verdict: Verdict,
}

impl Certificate {
    /// Which portfolio engine produced the verdict.
    pub fn engine(&self) -> Engine {
        self.verdict.engine
    }

    /// How far the verdict's guarantee extends.
    pub fn soundness(&self) -> Soundness {
        self.verdict.soundness
    }

    /// How many bounded models the verdict rests on.
    pub fn trees_checked(&self) -> usize {
        self.verdict.trees_checked()
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} certificate: {}", self.kind, self.verdict)
    }
}

/// A source-to-source transformation the verifier has certified: the
/// original program, the transformed program, and the certificate tying
/// them together.  Values of this type are only constructible through the
/// certifying entry points of this crate — `#[non_exhaustive]` keeps the
/// fields readable but blocks struct-literal forgery downstream, so a
/// capability minted from a `CertifiedTransform` always rests on a real
/// verdict.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CertifiedTransform {
    /// The untransformed input program.
    pub original: Program,
    /// The certified output program (validated, parser-canonical: it
    /// satisfies `parse_program(print_program(p)) == p`).
    pub transformed: Program,
    /// Names of the functions the transform layer synthesized, in creation
    /// order (empty for user-supplied candidates and for schedule rewrites,
    /// which introduce no new functions).  This is the authoritative list —
    /// prefer it over guessing from function-name prefixes.
    pub synthesized: Vec<String>,
    /// The verdict that licenses replacing `original` by `transformed`.
    pub certificate: Certificate,
}

impl CertifiedTransform {
    /// The transformed program rendered as `.retreet` surface syntax.
    pub fn transformed_source(&self) -> String {
        print_program(&self.transformed)
    }
}

/// Why a transformation was refused.
#[derive(Debug, Clone)]
pub enum TransformError {
    /// The construction itself does not apply: the program is outside the
    /// shape the transform handles (no fusable run, early returns, calls
    /// nested under conditionals, …).
    UnsupportedShape(String),
    /// The façade rejected the certification query before any engine ran
    /// (malformed program, empty portfolio, …).
    Rejected(VerifyError),
    /// The equivalence check found a counterexample (fusion refused).
    NotEquivalent(Box<EquivCounterExample>),
    /// The race check found a potential data race (parallel schedule
    /// refused).
    DataRace(Box<RaceWitness>),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::UnsupportedShape(detail) => {
                write!(f, "unsupported program shape: {detail}")
            }
            TransformError::Rejected(err) => write!(f, "verification rejected: {err}"),
            TransformError::NotEquivalent(ce) => write!(
                f,
                "the transformed program is not equivalent: {:?}",
                ce.disagreement
            ),
            TransformError::DataRace(witness) => write!(
                f,
                "the parallelization has a data race: {} and {} conflict on {}.{}",
                witness.first, witness.second, witness.node, witness.field
            ),
        }
    }
}

impl std::error::Error for TransformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransformError::Rejected(err) => Some(err),
            _ => None,
        }
    }
}

impl From<VerifyError> for TransformError {
    fn from(err: VerifyError) -> Self {
        TransformError::Rejected(err)
    }
}

pub(crate) fn unsupported<T>(detail: impl Into<String>) -> Result<T, TransformError> {
    Err(TransformError::UnsupportedShape(detail.into()))
}

/// Certifies a user-supplied fused candidate against the original through
/// `verifier` (Theorem 3).  Repeated certifications of the same pair are
/// answered from the verifier's verdict cache.
pub fn certify_fusion(
    verifier: &Verifier,
    original: &Program,
    fused: &Program,
) -> Result<CertifiedTransform, TransformError> {
    let verdict = verifier.verify(Query::Equivalence(original, fused))?;
    match verdict.outcome {
        Outcome::Equivalent { .. } => Ok(CertifiedTransform {
            original: original.clone(),
            transformed: fused.clone(),
            synthesized: Vec::new(),
            certificate: Certificate {
                kind: CertificateKind::Equivalence,
                verdict,
            },
        }),
        Outcome::NotEquivalent(ce) => Err(TransformError::NotEquivalent(ce)),
        ref other => unsupported(format!(
            "equivalence query produced unexpected outcome {other:?}"
        )),
    }
}

/// Certifies that `parallel` (a program containing parallel composition) is
/// data-race-free (Theorem 2), recording `original` as the sequential
/// program it replaces.  Pass the same program twice to certify an
/// already-parallel program in place.
pub fn certify_parallelization(
    verifier: &Verifier,
    original: &Program,
    parallel: &Program,
) -> Result<CertifiedTransform, TransformError> {
    let verdict = verifier.verify(Query::DataRace(parallel))?;
    match verdict.outcome {
        Outcome::RaceFree { .. } => Ok(CertifiedTransform {
            original: original.clone(),
            transformed: parallel.clone(),
            synthesized: Vec::new(),
            certificate: Certificate {
                kind: CertificateKind::RaceFreedom,
                verdict,
            },
        }),
        Outcome::Race(witness) => Err(TransformError::DataRace(witness)),
        ref other => unsupported(format!("race query produced unexpected outcome {other:?}")),
    }
}

/// Finalizes a constructed program: normalizes it to the parser-canonical
/// shape, drops unreachable functions, and checks the two invariants every
/// certified output must satisfy — `validate` passes and the program
/// roundtrips through print/parse unchanged.  Construction bugs surface
/// here as `UnsupportedShape` instead of escaping into a certificate query.
pub(crate) fn finalize_program(program: Program) -> Result<Program, TransformError> {
    let program = rewrite::normalize_program(&rewrite::retain_reachable(&program));
    let errors = validate(&program);
    if let Some(first) = errors.first() {
        return unsupported(format!("constructed program fails validation: {first}"));
    }
    let printed = print_program(&program);
    match parse_program(&printed) {
        Ok(reparsed) if reparsed == program => Ok(program),
        Ok(_) => unsupported("constructed program does not roundtrip through print/parse"),
        Err(err) => unsupported(format!("constructed program does not re-parse: {err}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;

    fn verifier() -> Verifier {
        Verifier::builder()
            .equiv_nodes(4)
            .race_nodes(3)
            .valuations(2)
            .build()
    }

    #[test]
    fn certify_fusion_accepts_the_paper_fusion() {
        let certified = certify_fusion(
            &verifier(),
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
        )
        .expect("Fig. 6a is a valid fusion");
        assert_eq!(certified.certificate.kind, CertificateKind::Equivalence);
        // The automata tier certifies the fusion without enumerating models.
        assert_eq!(certified.certificate.trees_checked(), 0);
        assert_eq!(certified.certificate.engine(), Engine::Automata);
    }

    #[test]
    fn certify_fusion_refuses_the_invalid_fusion() {
        let result = certify_fusion(
            &verifier(),
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused_invalid(),
        );
        assert!(matches!(result, Err(TransformError::NotEquivalent(_))));
    }

    #[test]
    fn certify_parallelization_accepts_and_refuses() {
        let verifier = verifier();
        let parallel = corpus::size_counting_parallel();
        let certified = certify_parallelization(&verifier, &parallel, &parallel)
            .expect("Odd ‖ Even is race-free");
        assert_eq!(certified.certificate.kind, CertificateKind::RaceFreedom);

        let racy = corpus::cycletree_parallel();
        match certify_parallelization(&verifier, &racy, &racy) {
            Err(TransformError::DataRace(witness)) => assert_eq!(witness.field, "num"),
            other => panic!("expected a data-race refusal, got {other:?}"),
        }
    }

    #[test]
    fn invalid_programs_are_rejected_with_typed_errors() {
        let no_main = retreet_lang::parse_program("fn F(n) { return 0; }").unwrap();
        assert!(matches!(
            certify_parallelization(&verifier(), &no_main, &no_main),
            Err(TransformError::Rejected(VerifyError::InvalidProgram { .. }))
        ));
    }
}
