//! Transformation-correctness checking (the `Conflict⟦P, P′⟧` query of §4).
//!
//! The paper certifies a fusion or reordering by (1) exhibiting a
//! bisimulation between the call blocks of the two programs and (2) showing
//! that no pair of dependent configurations is ordered one way in `P` and
//! the other way in `P′` (Theorem 3).  The bounded reproduction discharges
//! the same question semantically: both programs are executed on every tree
//! up to a bound (with several deterministic field valuations), and they are
//! equivalent when they always produce the same return values and the same
//! final field state, and every *dependent* pair of iterations that both
//! programs execute appears in the same relative order.
//!
//! A disagreement is returned as a concrete counterexample tree — the same
//! artifact MONA's counterexamples are manually mapped to in §5.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;

use retreet_lang::ast::Program;

use crate::interp::{self, ExecOrder, Iteration, RunResult};
use crate::par;
use crate::vtree::{TreeCorpus, ValueTree};

/// Options for the bounded equivalence check.
///
/// Construct with [`EquivOptions::builder`] (or take the defaults); prefer
/// the builder over mutating fields in place:
///
/// ```
/// use retreet_analysis::equiv::EquivOptions;
///
/// let options = EquivOptions::builder().max_nodes(4).valuations(2).build();
/// assert!(options.check_dependence_order);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivOptions {
    /// Largest tree (in nodes) to test.
    pub max_nodes: usize,
    /// Number of deterministic field valuations per tree shape.
    pub valuations: usize,
    /// Also require that dependent iteration pairs keep their relative order
    /// (the Theorem 3 condition); disable to compare observable behaviour
    /// only.
    pub check_dependence_order: bool,
}

impl Default for EquivOptions {
    fn default() -> Self {
        EquivOptions {
            max_nodes: 5,
            valuations: 3,
            check_dependence_order: true,
        }
    }
}

impl EquivOptions {
    /// Starts a builder seeded with the default options.
    pub fn builder() -> EquivOptionsBuilder {
        EquivOptionsBuilder {
            options: EquivOptions::default(),
        }
    }
}

/// Builder for [`EquivOptions`].
#[derive(Debug, Clone, Default)]
pub struct EquivOptionsBuilder {
    options: EquivOptions,
}

impl EquivOptionsBuilder {
    /// Largest tree (in nodes) to test.
    pub fn max_nodes(mut self, max_nodes: usize) -> Self {
        self.options.max_nodes = max_nodes;
        self
    }

    /// Number of deterministic field valuations per tree shape.
    pub fn valuations(mut self, valuations: usize) -> Self {
        self.options.valuations = valuations;
        self
    }

    /// Whether to enforce the Theorem 3 dependence-order condition.
    pub fn check_dependence_order(mut self, check: bool) -> Self {
        self.options.check_dependence_order = check;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> EquivOptions {
        self.options
    }
}

/// Why two programs were found inequivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disagreement {
    /// `Main` returned different values.
    Returns {
        /// Return values of the first program.
        first: Vec<i64>,
        /// Return values of the second program.
        second: Vec<i64>,
    },
    /// The final field states differ at some node/field.
    Fields {
        /// A description of the first differing (node, field, value, value).
        detail: String,
    },
    /// A pair of dependent iterations is ordered differently (the Theorem 3
    /// conflict condition).
    DependenceOrder {
        /// Description of the conflicting pair.
        detail: String,
    },
    /// One of the two programs failed to execute (nil dereference or similar).
    ExecutionError {
        /// The interpreter error message.
        message: String,
    },
}

/// A concrete counterexample to equivalence.
#[derive(Debug, Clone)]
pub struct EquivCounterExample {
    /// The input tree.
    pub tree: ValueTree,
    /// What went wrong.
    pub disagreement: Disagreement,
}

/// Verdict of the equivalence query.
#[derive(Debug, Clone)]
pub enum EquivVerdict {
    /// No disagreement on any tested tree.
    Equivalent {
        /// How many (tree, valuation) pairs were tested.
        trees_checked: usize,
    },
    /// The programs disagree on the attached counterexample.
    CounterExample(Box<EquivCounterExample>),
}

impl EquivVerdict {
    /// True for the equivalent verdict.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivVerdict::Equivalent { .. })
    }

    /// The counterexample, if any.
    pub fn counterexample(&self) -> Option<&EquivCounterExample> {
        match self {
            EquivVerdict::CounterExample(ce) => Some(ce),
            EquivVerdict::Equivalent { .. } => None,
        }
    }
}

/// Checks bounded equivalence of two programs (typically an original
/// composition of traversals and its fused form).
pub fn check_equivalence(
    original: &Program,
    transformed: &Program,
    options: &EquivOptions,
) -> EquivVerdict {
    check_equivalence_cancellable(original, transformed, options, &crate::par::NEVER_CANCELLED)
        .expect("never-raised cancel flag cannot cancel the analysis")
}

/// [`check_equivalence`] with a cooperative cancel flag, checked once per
/// tested tree; returns `None` (and no verdict) when the flag is observed
/// raised.  The façade's parallel portfolio raises the flag on losing
/// engines once a winner is decided.
pub fn check_equivalence_cancellable(
    original: &Program,
    transformed: &Program,
    options: &EquivOptions,
    cancel: &AtomicBool,
) -> Option<EquivVerdict> {
    // Per-program derived state (block table, field sets) is memoized
    // process-wide; a repeated query pays only for the actual runs.
    let ctx_a = crate::configs::AnalysisContext::for_program(original);
    let ctx_b = crate::configs::AnalysisContext::for_program(transformed);
    // Test trees must initialize the union of both programs' fields so that
    // reads observe the same initial values on both sides.
    let mut fields = ctx_a.fields.clone();
    for field in &ctx_b.fields {
        if !fields.contains(field) {
            fields.push(field.clone());
        }
    }
    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
    let corpus = TreeCorpus::with_arity(
        original.arity.max(transformed.arity),
        options.max_nodes,
        &field_refs,
        options.valuations,
    );
    if corpus.is_empty() {
        return Some(EquivVerdict::Equivalent { trees_checked: 0 });
    }
    // The per-program interpreter setup is hoisted out of the tree loop.
    let (runner_a, runner_b) = match (
        interp::Runner::new(&ctx_a.table),
        interp::Runner::new(&ctx_b.table),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(err), _) | (_, Err(err)) => {
            return Some(EquivVerdict::CounterExample(Box::new(
                EquivCounterExample {
                    tree: corpus.tree(0),
                    disagreement: Disagreement::ExecutionError {
                        message: err.to_string(),
                    },
                },
            )));
        }
    };
    // Identical trees (same shape, no fields to value) produce identical
    // deterministic runs; checking one representative per duplicate group is
    // exact, and the representative is the tree the sequential loop would
    // report first, so witnesses are unchanged.
    let reps = corpus.representatives();
    // Trees are checked in parallel with deterministic lowest-index-wins
    // reduction, so the counterexample (when one exists) is exactly the one
    // the sequential loop would report.
    let hit = par::first_hit(reps.len(), cancel, |k| {
        let tree = corpus.tree(reps[k]);
        let run_a = runner_a.run(&tree);
        let run_b = runner_b.run(&tree);
        let disagreement = match (run_a, run_b) {
            (Ok(a), Ok(b)) => compare_runs(&a, &b, options),
            (Err(err), _) | (_, Err(err)) => Some(Disagreement::ExecutionError {
                message: err.to_string(),
            }),
        };
        disagreement.map(|disagreement| {
            EquivVerdict::CounterExample(Box::new(EquivCounterExample { tree, disagreement }))
        })
    });
    match hit {
        par::Search::Hit(_, verdict) => Some(verdict),
        par::Search::Cancelled => None,
        par::Search::Exhausted => Some(EquivVerdict::Equivalent {
            trees_checked: corpus.len(),
        }),
    }
}

fn compare_runs(a: &RunResult, b: &RunResult, options: &EquivOptions) -> Option<Disagreement> {
    if a.returns != b.returns {
        return Some(Disagreement::Returns {
            first: a.returns.clone(),
            second: b.returns.clone(),
        });
    }
    // Structurally equal final trees have equal snapshots; only build the
    // (allocating) snapshots when the trees actually differ, to locate the
    // first differing field.
    if a.tree != b.tree {
        let fields_a = a.tree.field_snapshot();
        let fields_b = b.tree.field_snapshot();
        if fields_a != fields_b {
            let detail = first_field_difference(&fields_a, &fields_b);
            return Some(Disagreement::Fields { detail });
        }
    }
    if options.check_dependence_order {
        if let Some(detail) = dependence_order_violation(a, b) {
            return Some(Disagreement::DependenceOrder { detail });
        }
    }
    None
}

fn first_field_difference(
    a: &BTreeMap<(crate::vtree::NodeId, String), i64>,
    b: &BTreeMap<(crate::vtree::NodeId, String), i64>,
) -> String {
    for (key, value) in a {
        match b.get(key) {
            Some(other) if other == value => continue,
            Some(other) => {
                return format!("{}.{} = {} vs {}", key.0, key.1, value, other);
            }
            None => return format!("{}.{} = {} vs <unset>", key.0, key.1, value),
        }
    }
    for (key, value) in b {
        if !a.contains_key(key) {
            return format!("{}.{} = <unset> vs {}", key.0, key.1, value);
        }
    }
    String::from("<no difference>")
}

/// Checks the Theorem 3 condition on the two traces: every pair of
/// *dependent* iterations executed by both programs (matched by their
/// concrete write-read footprints) must not be ordered one way in `a` and
/// the opposite way in `b`.
///
/// Iterations are matched across programs by `(node, field accesses)`
/// signature, which is exactly what the bisimulation relation preserves for
/// the transformations considered in §5 (fusion and parallelization reorder
/// iterations but keep their per-node effects).
/// An iteration's footprint signature: its deduplicated, sorted accesses as
/// structural keys.  The naive engine keys the same information as a
/// formatted string; working structurally avoids one string allocation per
/// trace iteration, and the matching render (see [`render_sig`]) is only
/// produced for the one violating pair actually reported.
type Sig<'t> = Vec<(crate::vtree::NodeId, &'t str, bool)>;

fn sig_of(it: &Iteration) -> Option<Sig<'_>> {
    if it.accesses.is_empty() {
        return None;
    }
    let mut parts: Sig<'_> = it
        .accesses
        .iter()
        .map(|acc| (acc.node, acc.field.as_str(), acc.is_write))
        .collect();
    parts.sort_unstable();
    parts.dedup();
    Some(parts)
}

/// Renders a signature in the naive engine's exact format (parts sorted
/// *lexicographically as strings*, then joined), e.g. `n0.val:w,n1.k:r`.
fn render_sig(sig: &Sig<'_>) -> String {
    let mut parts: Vec<String> = sig
        .iter()
        .map(|(node, field, is_write)| {
            format!("{}.{}:{}", node, field, if *is_write { "w" } else { "r" })
        })
        .collect();
    parts.sort();
    parts.join(",")
}

/// `(signature, first index)` pairs of a trace, sorted by signature —
/// the sorted-vector equivalent of the naive engine's `BTreeMap`, without
/// the per-node tree allocations.
fn first_sigs(trace: &crate::interp::Trace) -> Vec<(Sig<'_>, usize)> {
    let mut sigs: Vec<(Sig<'_>, usize)> = trace
        .iterations
        .iter()
        .enumerate()
        .filter_map(|(i, it)| sig_of(it).map(|s| (s, i)))
        .collect();
    // Sort by (signature, index) then keep the first (lowest-index)
    // occurrence of each signature — `BTreeMap::entry(..).or_insert`
    // semantics.
    sigs.sort_unstable();
    sigs.dedup_by(|next, prev| next.0 == prev.0);
    sigs
}

fn dependence_order_violation(a: &RunResult, b: &RunResult) -> Option<String> {
    let index_a = first_sigs(&a.trace);
    let index_b = first_sigs(&b.trace);
    // Merge-intersect the two sorted signature lists, so the O(k²) pair
    // loop below works on plain indices, not map keys.
    let mut shared: Vec<(&Sig<'_>, usize, usize)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < index_a.len() && j < index_b.len() {
        match index_a[i].0.cmp(&index_b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared.push((&index_a[i].0, index_a[i].1, index_b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    // Scan pairs in the naive engine's order: its maps are keyed by the
    // *rendered* signature strings.  For node ids 0–9 the rendered
    // lexicographic order coincides with the structural order the merge
    // above produced (single-digit ids compare like their digits, and the
    // `.`/`:`/`,` separators sort below alphanumerics consistently with
    // field/flag/part boundaries), so the rendering pass is only needed —
    // and only paid — once a trace touches node ids with two digits.
    let two_digit_ids = shared
        .iter()
        .flat_map(|(sig, _, _)| sig.iter())
        .any(|(node, _, _)| node.0 >= 10);
    let shared: Vec<(&Sig<'_>, usize, usize)> = if two_digit_ids {
        let mut rendered: Vec<(String, usize)> = shared
            .iter()
            .enumerate()
            .map(|(k, (sig, _, _))| (render_sig(sig), k))
            .collect();
        rendered.sort();
        rendered.iter().map(|&(_, k)| shared[k]).collect()
    } else {
        shared
    };
    // The per-tree pair scan is bounded by one trace's length; tree-level
    // cancellation (in the caller's corpus loop) is granular enough.
    let hit = par::first_hit(shared.len(), &par::NEVER_CANCELLED, |i| {
        let (sig_x, xa, xb) = shared[i];
        for &(sig_y, ya, yb) in shared.iter().skip(i + 1) {
            if !crate::interp::conflicting(&a.trace.iterations[xa], &a.trace.iterations[ya]) {
                continue;
            }
            let order_a = a.trace.order(xa, ya);
            let order_b = b.trace.order(xb, yb);
            let conflict = matches!(
                (order_a, order_b),
                (ExecOrder::Before, ExecOrder::After) | (ExecOrder::After, ExecOrder::Before)
            );
            if conflict {
                let (sig_x, sig_y) = (render_sig(sig_x), render_sig(sig_y));
                return Some(format!(
                    "dependent iterations `{sig_x}` and `{sig_y}` are ordered {order_a:?} in the \
                     original but {order_b:?} in the transformed program"
                ));
            }
        }
        None
    });
    hit.into_hit().map(|(_, detail)| detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;

    fn options() -> EquivOptions {
        EquivOptions {
            max_nodes: 4,
            valuations: 2,
            check_dependence_order: true,
        }
    }

    #[test]
    fn raised_cancel_flag_aborts_the_equivalence_engine_without_a_verdict() {
        let cancel = AtomicBool::new(true);
        assert!(check_equivalence_cancellable(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
            &options(),
            &cancel,
        )
        .is_none());
        let cancel = AtomicBool::new(false);
        let verdict = check_equivalence_cancellable(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
            &options(),
            &cancel,
        )
        .unwrap();
        assert!(verdict.is_equivalent());
    }

    #[test]
    fn valid_size_counting_fusion_is_equivalent() {
        // E1a: Fig. 6a is a correct fusion of Odd/Even.
        let verdict = check_equivalence(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
            &options(),
        );
        assert!(verdict.is_equivalent(), "verdict: {verdict:?}");
    }

    #[test]
    fn invalid_size_counting_fusion_is_rejected_with_counterexample() {
        // E1b: Fig. 6b breaks the child-to-parent read-after-write dependence.
        let verdict = check_equivalence(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused_invalid(),
            &options(),
        );
        let ce = verdict.counterexample().expect("counterexample expected");
        assert!(matches!(ce.disagreement, Disagreement::Returns { .. }));
    }

    #[test]
    fn tree_mutation_fusion_is_equivalent() {
        // E2: Swap; IncrmLeft fused into one pass (after flag conversion).
        let verdict = check_equivalence(
            &corpus::tree_mutation_original(),
            &corpus::tree_mutation_fused(),
            &options(),
        );
        assert!(verdict.is_equivalent(), "verdict: {verdict:?}");
    }

    #[test]
    fn css_minification_fusion_is_equivalent() {
        // E3: ConvertValues; MinifyFont; ReduceInit fused into one traversal.
        let verdict = check_equivalence(
            &corpus::css_minify_original(),
            &corpus::css_minify_fused(),
            &options(),
        );
        assert!(verdict.is_equivalent(), "verdict: {verdict:?}");
    }

    #[test]
    fn cycletree_fusion_is_equivalent() {
        // E4a: RootMode + ComputeRouting fused into a single traversal.
        let verdict = check_equivalence(
            &corpus::cycletree_original(),
            &corpus::cycletree_fused(),
            &EquivOptions {
                max_nodes: 4,
                valuations: 1,
                check_dependence_order: true,
            },
        );
        assert!(verdict.is_equivalent(), "verdict: {verdict:?}");
    }

    #[test]
    fn swapping_dependent_passes_is_rejected() {
        // Running MinifyFont before ConvertValues is NOT equivalent to the
        // original order (both write `value` under different conditions).
        let reordered = retreet_lang::parse_program(
            r#"
            fn ConvertValues(n) {
                if (n == nil) { return 0; } else {
                    a = ConvertValues(n.l);
                    b = ConvertValues(n.r);
                    if (n.kind > 0) { n.value = n.value - 1; }
                    return 0;
                }
            }
            fn MinifyFont(n) {
                if (n == nil) { return 0; } else {
                    a = MinifyFont(n.l);
                    b = MinifyFont(n.r);
                    if (n.prop > 0) { n.value = 400; }
                    return 0;
                }
            }
            fn ReduceInit(n) {
                if (n == nil) { return 0; } else {
                    a = ReduceInit(n.l);
                    b = ReduceInit(n.r);
                    if (n.initial > n.value) { n.value = 0; }
                    return 0;
                }
            }
            fn Main(n) {
                y = MinifyFont(n);
                x = ConvertValues(n);
                z = ReduceInit(n);
                return 0;
            }
        "#,
        )
        .unwrap();
        let verdict = check_equivalence(&corpus::css_minify_original(), &reordered, &options());
        assert!(!verdict.is_equivalent());
    }

    #[test]
    fn a_program_is_equivalent_to_itself() {
        for program in [
            corpus::size_counting_sequential(),
            corpus::css_minify_original(),
            corpus::tree_mutation_original(),
        ] {
            let verdict = check_equivalence(&program, &program, &options());
            assert!(verdict.is_equivalent());
        }
    }
}
