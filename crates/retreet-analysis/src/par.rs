//! Deterministic parallel search primitives for the bounded engines.
//!
//! The race and equivalence engines spend their time in two places: a loop
//! over test trees and an O(n²) loop over item pairs.  Both searches want
//! the *first* witness in a canonical order (lowest index / lexicographically
//! lowest pair) — that is what keeps verdicts, and therefore the façade's
//! cached-identical-witness guarantee, bit-for-bit reproducible whether the
//! search runs on one thread or many.
//!
//! The helpers here fan work out over contiguous index chunks (one per
//! worker the `rayon` shim is willing to give us), let every worker abandon
//! indices that can no longer win (a lower-index witness already exists:
//! early-exit, first-witness-wins), and reduce by *minimum index* — never by
//! completion order.  On a single-core host the shim hands out no worker
//! tokens and both helpers degrade to the plain sequential loop, byte-
//! identical to the pre-parallel code.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Evaluates `f(0..n)` and returns `Some((i, r))` for the lowest `i` where
/// `f(i)` is `Some(r)`, searching index chunks in parallel.
///
/// `f` must be pure modulo interior-mutability caches: the helper may skip
/// calling it for indices that provably cannot win.
pub(crate) fn first_hit<R, F>(n: usize, f: F) -> Option<(usize, R)>
where
    R: Send,
    F: Fn(usize) -> Option<R> + Sync,
{
    let workers = rayon::current_num_threads().min(n);
    if workers <= 1 {
        return (0..n).find_map(|i| f(i).map(|r| (i, r)));
    }
    let best = AtomicUsize::new(usize::MAX);
    let found: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    let chunk = n.div_ceil(workers);
    rayon::scope(|s| {
        for start in (0..n).step_by(chunk) {
            let (best, found, f) = (&best, &found, &f);
            s.spawn(move |_| {
                for i in start..(start + chunk).min(n) {
                    // A strictly lower index already produced a witness;
                    // this chunk scans ascending, so nothing here can win.
                    if best.load(Ordering::Relaxed) < i {
                        break;
                    }
                    if let Some(r) = f(i) {
                        best.fetch_min(i, Ordering::Relaxed);
                        found.lock().expect("first_hit poisoned").push((i, r));
                        break;
                    }
                }
            });
        }
    });
    let mut results = found.into_inner().expect("first_hit poisoned");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().next()
}

/// Parallel scan that both *counts* and *searches*: every index yields a
/// `usize` tally plus an optional witness.  Returns the summed tally of the
/// evaluated indices and the lowest-index witness.
///
/// Indices are only skipped when a strictly lower index already found a
/// witness, so: if a witness is returned it is exactly the one the
/// sequential loop would return, and if none is returned every index was
/// evaluated and the tally is complete.
pub(crate) fn tally_until_hit<R, F>(n: usize, f: F) -> (usize, Option<(usize, R)>)
where
    R: Send,
    F: Fn(usize) -> (usize, Option<R>) + Sync,
{
    let workers = rayon::current_num_threads().min(n);
    if workers <= 1 {
        let mut tally = 0usize;
        for i in 0..n {
            let (count, witness) = f(i);
            tally += count;
            if let Some(r) = witness {
                return (tally, Some((i, r)));
            }
        }
        return (tally, None);
    }
    let best = AtomicUsize::new(usize::MAX);
    let tally = AtomicUsize::new(0);
    let found: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    let chunk = n.div_ceil(workers);
    rayon::scope(|s| {
        for start in (0..n).step_by(chunk) {
            let (best, tally, found, f) = (&best, &tally, &found, &f);
            s.spawn(move |_| {
                for i in start..(start + chunk).min(n) {
                    if best.load(Ordering::Relaxed) < i {
                        break;
                    }
                    let (count, witness) = f(i);
                    tally.fetch_add(count, Ordering::Relaxed);
                    if let Some(r) = witness {
                        best.fetch_min(i, Ordering::Relaxed);
                        found.lock().expect("tally_until_hit poisoned").push((i, r));
                        break;
                    }
                }
            });
        }
    });
    let mut results = found.into_inner().expect("tally_until_hit poisoned");
    results.sort_by_key(|(i, _)| *i);
    (tally.load(Ordering::Relaxed), results.into_iter().next())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_hit_returns_the_lowest_index() {
        let hit = first_hit(100, |i| (i % 7 == 3).then_some(i * 10));
        assert_eq!(hit, Some((3, 30)));
        assert_eq!(first_hit(10, |_| None::<()>), None);
        assert_eq!(first_hit(0, |_| Some(())), None);
    }

    #[test]
    fn tally_is_complete_when_nothing_hits() {
        let (tally, hit) = tally_until_hit(10, |i| (i, None::<()>));
        assert_eq!(tally, 45);
        assert!(hit.is_none());
    }

    #[test]
    fn tally_hit_matches_sequential_witness() {
        let (_, hit) = tally_until_hit(50, |i| (1, (i >= 20).then_some(i)));
        assert_eq!(hit, Some((20, 20)));
    }
}
