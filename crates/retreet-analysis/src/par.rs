//! Deterministic parallel search primitives for the bounded engines.
//!
//! The race and equivalence engines spend their time in two places: a loop
//! over test trees and an O(n²) loop over item pairs.  Both searches want
//! the *first* witness in a canonical order (lowest index / lexicographically
//! lowest pair) — that is what keeps verdicts, and therefore the façade's
//! cached-identical-witness guarantee, bit-for-bit reproducible whether the
//! search runs on one thread or many.
//!
//! The helpers here fan work out over contiguous index chunks (one per
//! worker the `rayon` shim is willing to give us), let every worker abandon
//! indices that can no longer win (a lower-index witness already exists:
//! early-exit, first-witness-wins), and reduce by *minimum index* — never by
//! completion order.  On a single-core host the shim hands out no worker
//! tokens and both helpers degrade to the plain sequential loop, byte-
//! identical to the pre-parallel code.
//!
//! Both searches are additionally *cancellable*: they take a cooperative
//! cancel flag and abandon the scan as soon as it is raised.  The façade's
//! parallel portfolio raises the flag on losing engines once a winner is
//! decided, so a lost engine run costs at most one more loop iteration
//! instead of the full enumeration.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A cancel flag that is never raised — the flag sequential entry points
/// thread through the cancellable search helpers.
pub(crate) static NEVER_CANCELLED: AtomicBool = AtomicBool::new(false);

/// Outcome of a cancellable search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Search<R> {
    /// The lowest-index witness (exactly the one the sequential loop would
    /// return).
    Hit(usize, R),
    /// Every index was evaluated and none produced a witness.
    Exhausted,
    /// The cancel flag was observed before the scan finished; no verdict
    /// may be derived from the partial scan.
    Cancelled,
}

impl<R> Search<R> {
    /// The witness, when the search hit.
    pub(crate) fn into_hit(self) -> Option<(usize, R)> {
        match self {
            Search::Hit(i, r) => Some((i, r)),
            Search::Exhausted | Search::Cancelled => None,
        }
    }
}

/// Evaluates `f(0..n)` and returns `Search::Hit(i, r)` for the lowest `i`
/// where `f(i)` is `Some(r)`, searching index chunks in parallel and
/// abandoning the scan when `cancel` is raised.
///
/// `f` must be pure modulo interior-mutability caches: the helper may skip
/// calling it for indices that provably cannot win.
pub(crate) fn first_hit<R, F>(n: usize, cancel: &AtomicBool, f: F) -> Search<R>
where
    R: Send,
    F: Fn(usize) -> Option<R> + Sync,
{
    let workers = rayon::current_num_threads().min(n);
    if workers <= 1 {
        for i in 0..n {
            if cancel.load(Ordering::Relaxed) {
                return Search::Cancelled;
            }
            if let Some(r) = f(i) {
                return Search::Hit(i, r);
            }
        }
        return Search::Exhausted;
    }
    let best = AtomicUsize::new(usize::MAX);
    let cancelled = AtomicBool::new(false);
    let found: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    let chunk = n.div_ceil(workers);
    rayon::scope(|s| {
        for start in (0..n).step_by(chunk) {
            let (best, cancelled, found, f) = (&best, &cancelled, &found, &f);
            s.spawn(move |_| {
                for i in start..(start + chunk).min(n) {
                    if cancel.load(Ordering::Relaxed) {
                        cancelled.store(true, Ordering::Relaxed);
                        break;
                    }
                    // A strictly lower index already produced a witness;
                    // this chunk scans ascending, so nothing here can win.
                    if best.load(Ordering::Relaxed) < i {
                        break;
                    }
                    if let Some(r) = f(i) {
                        best.fetch_min(i, Ordering::Relaxed);
                        found.lock().expect("first_hit poisoned").push((i, r));
                        break;
                    }
                }
            });
        }
    });
    let mut results = found.into_inner().expect("first_hit poisoned");
    results.sort_by_key(|(i, _)| *i);
    // A cancelled partial scan proves nothing: a worker that abandoned its
    // chunk may have skipped an index *below* a witness another worker
    // recorded, so neither "exhausted" nor "this hit is lowest" holds.
    if cancelled.load(Ordering::Relaxed) {
        return Search::Cancelled;
    }
    match results.into_iter().next() {
        Some((i, r)) => Search::Hit(i, r),
        None => Search::Exhausted,
    }
}

/// Parallel scan that both *counts* and *searches*: every index yields a
/// `usize` tally plus an optional witness.  Returns the summed tally of the
/// evaluated indices and the search outcome.
///
/// Indices are only skipped when a strictly lower index already found a
/// witness or `cancel` was raised, so: a returned witness is exactly the
/// one the sequential loop would return, and on `Search::Exhausted` every
/// index was evaluated and the tally is complete (a `Search::Cancelled`
/// tally is partial and must be discarded).
pub(crate) fn tally_until_hit<R, F>(n: usize, cancel: &AtomicBool, f: F) -> (usize, Search<R>)
where
    R: Send,
    F: Fn(usize) -> (usize, Option<R>) + Sync,
{
    let workers = rayon::current_num_threads().min(n);
    if workers <= 1 {
        let mut tally = 0usize;
        for i in 0..n {
            if cancel.load(Ordering::Relaxed) {
                return (tally, Search::Cancelled);
            }
            let (count, witness) = f(i);
            tally += count;
            if let Some(r) = witness {
                return (tally, Search::Hit(i, r));
            }
        }
        return (tally, Search::Exhausted);
    }
    let best = AtomicUsize::new(usize::MAX);
    let cancelled = AtomicBool::new(false);
    let tally = AtomicUsize::new(0);
    let found: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    let chunk = n.div_ceil(workers);
    rayon::scope(|s| {
        for start in (0..n).step_by(chunk) {
            let (best, cancelled, tally, found, f) = (&best, &cancelled, &tally, &found, &f);
            s.spawn(move |_| {
                for i in start..(start + chunk).min(n) {
                    if cancel.load(Ordering::Relaxed) {
                        cancelled.store(true, Ordering::Relaxed);
                        break;
                    }
                    if best.load(Ordering::Relaxed) < i {
                        break;
                    }
                    let (count, witness) = f(i);
                    tally.fetch_add(count, Ordering::Relaxed);
                    if let Some(r) = witness {
                        best.fetch_min(i, Ordering::Relaxed);
                        found.lock().expect("tally_until_hit poisoned").push((i, r));
                        break;
                    }
                }
            });
        }
    });
    let mut results = found.into_inner().expect("tally_until_hit poisoned");
    results.sort_by_key(|(i, _)| *i);
    // See first_hit: a scan that observed cancellation proves nothing.
    let outcome = if cancelled.load(Ordering::Relaxed) {
        Search::Cancelled
    } else {
        match results.into_iter().next() {
            Some((i, r)) => Search::Hit(i, r),
            None => Search::Exhausted,
        }
    };
    (tally.load(Ordering::Relaxed), outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_hit_returns_the_lowest_index() {
        let hit = first_hit(100, &NEVER_CANCELLED, |i| (i % 7 == 3).then_some(i * 10));
        assert_eq!(hit, Search::Hit(3, 30));
        assert_eq!(first_hit(10, &NEVER_CANCELLED, |_| None::<()>), {
            Search::Exhausted
        });
        assert_eq!(first_hit(0, &NEVER_CANCELLED, |_| Some(())), {
            Search::Exhausted
        });
    }

    #[test]
    fn tally_is_complete_when_nothing_hits() {
        let (tally, hit) = tally_until_hit(10, &NEVER_CANCELLED, |i| (i, None::<()>));
        assert_eq!(tally, 45);
        assert_eq!(hit, Search::Exhausted);
    }

    #[test]
    fn tally_hit_matches_sequential_witness() {
        let (_, hit) = tally_until_hit(50, &NEVER_CANCELLED, |i| (1, (i >= 20).then_some(i)));
        assert_eq!(hit, Search::Hit(20, 20));
    }

    #[test]
    fn pre_raised_cancel_flag_stops_the_scan_immediately() {
        let cancel = AtomicBool::new(true);
        let evaluated = AtomicUsize::new(0);
        let result = first_hit(1000, &cancel, |_| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            None::<()>
        });
        assert_eq!(result, Search::Cancelled);
        assert_eq!(evaluated.load(Ordering::Relaxed), 0);
        let (tally, outcome) = tally_until_hit(1000, &cancel, |_| (1, None::<()>));
        assert_eq!(outcome, Search::Cancelled);
        assert_eq!(tally, 0);
    }

    #[test]
    fn mid_scan_cancellation_abandons_the_remaining_indices() {
        // The closure itself raises the flag at index 5: the scan must stop
        // within one iteration instead of evaluating all 10_000 indices.
        let cancel = AtomicBool::new(false);
        let evaluated = AtomicUsize::new(0);
        let result = first_hit(10_000, &cancel, |i| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            if i == 5 {
                cancel.store(true, Ordering::Relaxed);
            }
            None::<()>
        });
        assert_eq!(result, Search::Cancelled);
        assert!(evaluated.load(Ordering::Relaxed) < 10_000);
    }

    #[test]
    fn a_hit_racing_the_cancel_flag_never_yields_a_wrong_witness() {
        let cancel = AtomicBool::new(false);
        let result = first_hit(100, &cancel, |i| {
            if i == 2 {
                cancel.store(true, Ordering::Relaxed);
            }
            (i == 2).then_some(i)
        });
        // Sequential scan (single worker): the hit at index 2 is returned
        // before the next iteration's flag check and is genuinely lowest.
        // Parallel scan: a worker may observe the flag and abandon indices
        // below another worker's hit, so the scan conservatively reports
        // Cancelled.  Either answer is sound; Hit(≠2) never is.
        assert!(
            matches!(result, Search::Hit(2, 2) | Search::Cancelled),
            "got {result:?}"
        );
    }
}
