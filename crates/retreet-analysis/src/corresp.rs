//! Fusion-correspondence matching: unbounded equivalence verdicts.
//!
//! The bounded equivalence engines compare two programs by running them on
//! every tree up to a size budget.  This module instead *proves* the
//! equivalence of a multi-pass program and its fused form over all trees at
//! once, in the style of the paper's Theorem 3: the fused traversal is
//! correct when every per-node action of every pass reappears in the fused
//! body (under a per-pass variable correspondence), the relative order of
//! the actions of each pass is preserved (or the reordered actions are
//! independent), and actions of a later pass never overtake conflicting
//! actions of an earlier pass.
//!
//! Ordering side conditions that involve *different* nodes — a pass writing
//! a whole subtree while another reads one node of it — are discharged with
//! the NFTA region-overlap machinery of [`retreet_mso::encode`], so a
//! successful match is sound for every tree and valuation.  Anything the
//! matcher does not understand yields [`CorrespVerdict::NotApplicable`],
//! and the caller falls back to a bounded engine.

use std::collections::{BTreeMap, BTreeSet};

use retreet_lang::ast::{AExpr, Assign, BExpr, CallBlock, Ident, Program, Stmt, MAIN};
use retreet_mso::encode::{
    check_overlap_k, guards_equivalent_k, ConflictSide, GuardExpr, Region, StructConstraint,
};

use crate::summary::{step_of, transitive_field_summaries, FieldSummary};
use retreet_lang::blocks::BlockTable;

/// Outcome of the correspondence matcher.
#[derive(Debug, Clone)]
pub enum CorrespVerdict {
    /// The fused program simulates the multi-pass program on every tree.
    Established {
        /// Number of (fused function, pass tuple) entries verified.
        entries: usize,
    },
    /// The matcher could not establish the correspondence; a bounded check
    /// is needed.  This is *not* a disproof of equivalence.
    NotApplicable {
        /// Why matching stopped.
        reason: String,
    },
}

impl CorrespVerdict {
    /// True when the correspondence was established.
    pub fn is_established(&self) -> bool {
        matches!(self, CorrespVerdict::Established { .. })
    }
}

/// How one original pass function embeds into a fused function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct RoleSpec {
    /// The original function playing this pass.
    func: Ident,
    /// Role int-parameter index → fused int-parameter index.
    formal_map: Vec<usize>,
    /// Role return component → fused return component (None: dropped).
    res_map: Vec<Option<usize>>,
}

/// A coinduction key: a fused function together with the ordered passes it
/// is claimed to fuse.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct EntryKey {
    fused: Ident,
    roles: Vec<RoleSpec>,
}

/// The statement-level unit the matcher works over.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Item {
    Assign(Assign),
    Call(CallBlock),
    If(BExpr, Vec<Item>, Vec<Item>),
    Ret(Vec<AExpr>),
}

fn items_of(stmt: &Stmt, out: &mut Vec<Item>) -> Result<(), String> {
    match stmt {
        Stmt::Block(block) => {
            if let Some(call) = block.as_call() {
                out.push(Item::Call(call.clone()));
            } else if let Some(straight) = block.as_straight() {
                for assign in &straight.assigns {
                    out.push(Item::Assign(assign.clone()));
                }
                if let Some(values) = &straight.ret {
                    out.push(Item::Ret(values.clone()));
                }
            }
            Ok(())
        }
        Stmt::If(cond, then_branch, else_branch) => {
            let mut then_items = Vec::new();
            items_of(then_branch, &mut then_items)?;
            let mut else_items = Vec::new();
            items_of(else_branch, &mut else_items)?;
            out.push(Item::If(cond.clone(), then_items, else_items));
            Ok(())
        }
        Stmt::Seq(stmts) => {
            for stmt in stmts {
                items_of(stmt, out)?;
            }
            Ok(())
        }
        Stmt::Par(_) => Err("parallel composition is outside the fusion fragment".into()),
    }
}

fn body_items(stmt: &Stmt) -> Result<Vec<Item>, String> {
    let mut out = Vec::new();
    items_of(stmt, &mut out)?;
    Ok(out)
}

/// Role-variable → fused-variable substitution.
type Sigma = BTreeMap<Ident, Ident>;

fn subst_aexpr(expr: &AExpr, sigma: &Sigma) -> Option<AExpr> {
    match expr {
        AExpr::Const(value) => Some(AExpr::Const(*value)),
        AExpr::Var(name) => sigma.get(name).map(|mapped| AExpr::Var(mapped.clone())),
        AExpr::Field(node, field) => Some(AExpr::Field(*node, field.clone())),
        AExpr::Add(a, b) => Some(AExpr::Add(
            Box::new(subst_aexpr(a, sigma)?),
            Box::new(subst_aexpr(b, sigma)?),
        )),
        AExpr::Sub(a, b) => Some(AExpr::Sub(
            Box::new(subst_aexpr(a, sigma)?),
            Box::new(subst_aexpr(b, sigma)?),
        )),
    }
}

fn subst_bexpr(expr: &BExpr, sigma: &Sigma) -> Option<BExpr> {
    match expr {
        BExpr::True => Some(BExpr::True),
        BExpr::IsNil(node) => Some(BExpr::IsNil(*node)),
        BExpr::Gt(inner) => Some(BExpr::Gt(subst_aexpr(inner, sigma)?)),
        BExpr::Not(inner) => Some(BExpr::Not(Box::new(subst_bexpr(inner, sigma)?))),
        BExpr::And(a, b) => Some(BExpr::And(
            Box::new(subst_bexpr(a, sigma)?),
            Box::new(subst_bexpr(b, sigma)?),
        )),
    }
}

/// Lowers a purely structural guard to the encoding fragment; `None` when
/// the guard mentions arithmetic.
fn to_guard_expr(expr: &BExpr) -> Option<GuardExpr> {
    match expr {
        BExpr::True => Some(GuardExpr::True),
        BExpr::IsNil(node) => Some(GuardExpr::NilAt(step_of(*node))),
        BExpr::Gt(_) => None,
        BExpr::Not(inner) => Some(GuardExpr::Not(Box::new(to_guard_expr(inner)?))),
        BExpr::And(a, b) => Some(GuardExpr::And(
            Box::new(to_guard_expr(a)?),
            Box::new(to_guard_expr(b)?),
        )),
    }
}

fn bexpr_field_reads(expr: &BExpr, out: &mut Vec<(Region, Ident, bool)>) {
    for atom in expr.atoms() {
        if let BExpr::Gt(inner) = atom {
            for (node, field) in inner.field_reads() {
                out.push((Region::At(step_of(node)), field.clone(), false));
            }
        }
    }
}

fn bexpr_vars(expr: &BExpr, out: &mut BTreeSet<Ident>) {
    for atom in expr.atoms() {
        if let BExpr::Gt(inner) = atom {
            out.extend(inner.vars().into_iter().cloned());
        }
    }
}

/// Matching / verification state threaded through one entry.
#[derive(Debug, Clone, Default)]
struct MatchState {
    sigmas: Vec<Sigma>,
    /// Fused variable → role that writes it via plain assignment.
    owner: BTreeMap<Ident, usize>,
    /// Child entries whose verification is deferred to after matching.
    obligations: Vec<EntryKey>,
}

/// One matching scope: a fused item sequence and, per role, the item
/// sequence that must be claimed inside it.
struct Scope {
    fused: Vec<Item>,
    roles: Vec<Vec<Item>>,
}

/// Per-scope record of which role items each fused item absorbed.
type Claims = Vec<Vec<(usize, usize)>>;

/// One role call merged into a fused call:
/// `(role, item index, formal map, result-binding options)`.
type CallSlot = (usize, usize, Vec<usize>, Vec<Vec<Option<usize>>>);

const MAX_ENTRIES: usize = 64;
const MAX_DEPTH: usize = 32;
const MAX_CALL_CANDIDATES: usize = 512;

struct Verifier<'a> {
    original: &'a Program,
    fused: &'a Program,
    orig_summaries: Vec<FieldSummary>,
    proven: BTreeSet<EntryKey>,
    in_progress: Vec<EntryKey>,
    overlap_memo: BTreeMap<(Region, Region), bool>,
    entries_verified: usize,
}

impl<'a> Verifier<'a> {
    fn new(original: &'a Program, fused: &'a Program) -> Self {
        let table = BlockTable::build(original);
        Verifier {
            original,
            fused,
            orig_summaries: transitive_field_summaries(&table),
            proven: BTreeSet::new(),
            in_progress: Vec::new(),
            overlap_memo: BTreeMap::new(),
            entries_verified: 0,
        }
    }

    fn may_overlap(&mut self, a: Region, b: Region) -> bool {
        let arity = self.original.arity.max(self.fused.arity);
        *self.overlap_memo.entry((a, b)).or_insert_with(|| {
            let side = |region| ConflictSide {
                region,
                guard: StructConstraint::default(),
            };
            !check_overlap_k(&side(a), &side(b), arity).is_disjoint()
        })
    }

    /// Field footprint of a role item, over-approximated: direct accesses at
    /// fixed offsets, callee summaries over whole subtrees.
    fn footprint(&self, item: &Item) -> Vec<(Region, Ident, bool)> {
        let mut out = Vec::new();
        self.collect_footprint(item, &mut out);
        out
    }

    fn collect_footprint(&self, item: &Item, out: &mut Vec<(Region, Ident, bool)>) {
        match item {
            Item::Assign(Assign::SetField(node, field, value)) => {
                out.push((Region::At(step_of(*node)), field.clone(), true));
                for (read_node, read_field) in value.field_reads() {
                    out.push((Region::At(step_of(read_node)), read_field.clone(), false));
                }
            }
            Item::Assign(Assign::SetVar(_, value)) => {
                for (node, field) in value.field_reads() {
                    out.push((Region::At(step_of(node)), field.clone(), false));
                }
            }
            Item::Call(call) => {
                for arg in &call.args {
                    for (node, field) in arg.field_reads() {
                        out.push((Region::At(step_of(node)), field.clone(), false));
                    }
                }
                if let Some(callee) = self.original.func_index(&call.callee) {
                    let region = Region::Subtree(step_of(call.target));
                    let summary = &self.orig_summaries[callee];
                    for field in &summary.reads {
                        out.push((region, field.clone(), false));
                    }
                    for field in &summary.writes {
                        out.push((region, field.clone(), true));
                    }
                }
            }
            Item::If(cond, then_items, else_items) => {
                bexpr_field_reads(cond, out);
                for nested in then_items.iter().chain(else_items) {
                    self.collect_footprint(nested, out);
                }
            }
            Item::Ret(values) => {
                for value in values {
                    for (node, field) in value.field_reads() {
                        out.push((Region::At(step_of(node)), field.clone(), false));
                    }
                }
            }
        }
    }

    /// Role-local variable reads and writes of an item.
    fn var_rw(item: &Item, reads: &mut BTreeSet<Ident>, writes: &mut BTreeSet<Ident>) {
        match item {
            Item::Assign(Assign::SetField(_, _, value)) => {
                reads.extend(value.vars().into_iter().cloned());
            }
            Item::Assign(Assign::SetVar(name, value)) => {
                reads.extend(value.vars().into_iter().cloned());
                writes.insert(name.clone());
            }
            Item::Call(call) => {
                for arg in &call.args {
                    reads.extend(arg.vars().into_iter().cloned());
                }
                writes.extend(call.results.iter().cloned());
            }
            Item::If(cond, then_items, else_items) => {
                bexpr_vars(cond, reads);
                for nested in then_items.iter().chain(else_items) {
                    Verifier::var_rw(nested, reads, writes);
                }
            }
            Item::Ret(values) => {
                for value in values {
                    reads.extend(value.vars().into_iter().cloned());
                }
            }
        }
    }

    fn field_conflict(&mut self, a: &Item, b: &Item) -> bool {
        let fp_a = self.footprint(a);
        let fp_b = self.footprint(b);
        for (region_a, field_a, write_a) in &fp_a {
            for (region_b, field_b, write_b) in &fp_b {
                if field_a == field_b
                    && (*write_a || *write_b)
                    && self.may_overlap(*region_a, *region_b)
                {
                    return true;
                }
            }
        }
        false
    }

    fn independent(&mut self, a: &Item, b: &Item) -> bool {
        let (mut reads_a, mut writes_a) = (BTreeSet::new(), BTreeSet::new());
        let (mut reads_b, mut writes_b) = (BTreeSet::new(), BTreeSet::new());
        Verifier::var_rw(a, &mut reads_a, &mut writes_a);
        Verifier::var_rw(b, &mut reads_b, &mut writes_b);
        let var_clash = writes_a.intersection(&writes_b).next().is_some()
            || writes_a.intersection(&reads_b).next().is_some()
            || reads_a.intersection(&writes_b).next().is_some();
        !var_clash && !self.field_conflict(a, b)
    }

    /// The order side conditions over one matched scope: each role's item
    /// order is preserved up to independent reorderings, and a later pass
    /// never runs a conflicting action before an earlier pass.
    fn check_ordering(&mut self, scope: &Scope, claims: &Claims) -> Result<(), String> {
        // Per role: (role item index, fused position).
        let mut per_role: Vec<Vec<(usize, usize)>> = vec![Vec::new(); scope.roles.len()];
        for (pos, list) in claims.iter().enumerate() {
            for &(role, item) in list {
                per_role[role].push((item, pos));
            }
        }
        for (role, placed) in per_role.iter().enumerate() {
            for (i, &(item_a, pos_a)) in placed.iter().enumerate() {
                for &(item_b, pos_b) in &placed[i + 1..] {
                    let (first, second, first_pos, second_pos) = if item_a < item_b {
                        (item_a, item_b, pos_a, pos_b)
                    } else {
                        (item_b, item_a, pos_b, pos_a)
                    };
                    if first_pos <= second_pos {
                        continue;
                    }
                    let a = scope.roles[role][first].clone();
                    let b = scope.roles[role][second].clone();
                    if !self.independent(&a, &b) {
                        return Err(format!("pass {role} items reordered without independence"));
                    }
                }
            }
        }
        for early in 0..scope.roles.len() {
            for late in early + 1..scope.roles.len() {
                for &(item_e, pos_e) in &per_role[early] {
                    for &(item_l, pos_l) in &per_role[late] {
                        if pos_e == pos_l {
                            // Same fused item (a merged call): the child
                            // entry preserves the pass order inside it.
                            continue;
                        }
                        let a = scope.roles[early][item_e].clone();
                        let b = scope.roles[late][item_l].clone();
                        if self.field_conflict(&a, &b) && pos_e > pos_l {
                            return Err(format!(
                                "pass {late} overtakes a conflicting action of pass {early}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn guard_matches(&self, role_guard: &BExpr, fused_guard: &BExpr, sigma: &Sigma) -> bool {
        match subst_bexpr(role_guard, sigma) {
            Some(mapped) if &mapped == fused_guard => true,
            Some(mapped) => match (to_guard_expr(&mapped), to_guard_expr(fused_guard)) {
                (Some(a), Some(b)) => {
                    guards_equivalent_k(&a, &b, self.original.arity.max(self.fused.arity))
                }
                _ => false,
            },
            None => false,
        }
    }

    /// All injective partial maps from `wanted` role results into `avail`
    /// fused result positions, densest first.
    fn result_assignments(wanted: usize, avail: usize) -> Vec<Vec<Option<usize>>> {
        let mut out: Vec<Vec<Option<usize>>> = vec![Vec::new()];
        for _ in 0..wanted {
            let mut next = Vec::new();
            for prefix in &out {
                for pos in 0..avail {
                    if !prefix.contains(&Some(pos)) {
                        let mut extended = prefix.clone();
                        extended.push(Some(pos));
                        next.push(extended);
                    }
                }
                let mut extended = prefix.clone();
                extended.push(None);
                next.push(extended);
            }
            out = next;
        }
        out.sort_by_key(|assignment| assignment.iter().filter(|slot| slot.is_none()).count());
        out
    }

    /// Matches fused items from `idx` on; backtracks over claim choices.
    #[allow(clippy::too_many_arguments)]
    fn match_from(
        &mut self,
        scope: &Scope,
        idx: usize,
        claimed: Vec<Vec<bool>>,
        state: MatchState,
        claims: Claims,
    ) -> Result<(MatchState, Claims), String> {
        let Some(fused_item) = scope.fused.get(idx) else {
            for (role, flags) in claimed.iter().enumerate() {
                if flags.iter().any(|used| !used) {
                    return Err(format!("pass {role} has unmatched actions"));
                }
            }
            self.check_ordering(scope, &claims)?;
            return Ok((state, claims));
        };
        match fused_item {
            Item::Assign(fused_assign) => {
                let mut last_err = format!("no pass action matches fused assignment #{idx}");
                for role in 0..scope.roles.len() {
                    for (j, item) in scope.roles[role].iter().enumerate() {
                        if claimed[role][j] {
                            continue;
                        }
                        let Item::Assign(role_assign) = item else {
                            continue;
                        };
                        let Some(mut next_state) =
                            self.try_assign(fused_assign, role_assign, role, &state)
                        else {
                            continue;
                        };
                        let mut next_claimed = claimed.clone();
                        next_claimed[role][j] = true;
                        let mut next_claims = claims.clone();
                        next_claims.push(vec![(role, j)]);
                        // Keep obligations accumulated so far.
                        next_state.obligations = state.obligations.clone();
                        match self.match_from(scope, idx + 1, next_claimed, next_state, next_claims)
                        {
                            Ok(done) => return Ok(done),
                            Err(err) => last_err = err,
                        }
                    }
                }
                Err(last_err)
            }
            Item::Call(fused_call) => {
                self.match_call(scope, idx, fused_call, claimed, state, claims)
            }
            Item::If(fused_guard, fused_then, fused_else) => {
                let mut claimants = Vec::new();
                for (role, items) in scope.roles.iter().enumerate() {
                    for (j, item) in items.iter().enumerate() {
                        if claimed[role][j] {
                            continue;
                        }
                        if let Item::If(guard, _, _) = item {
                            if self.guard_matches(guard, fused_guard, &state.sigmas[role]) {
                                claimants.push((role, j));
                                break;
                            }
                        }
                    }
                }
                if claimants.is_empty() {
                    return Err(format!("no pass claims the fused conditional #{idx}"));
                }
                let branch_scope = |then_side: bool| {
                    let fused = if then_side {
                        fused_then.clone()
                    } else {
                        fused_else.clone()
                    };
                    let mut roles = vec![Vec::new(); scope.roles.len()];
                    for &(role, j) in &claimants {
                        if let Item::If(_, then_items, else_items) = &scope.roles[role][j] {
                            roles[role] = if then_side {
                                then_items.clone()
                            } else {
                                else_items.clone()
                            };
                        }
                    }
                    Scope { fused, roles }
                };
                let after_then = self.match_scope(&branch_scope(true), state)?;
                let after_else = self.match_scope(&branch_scope(false), after_then)?;
                let mut next_claimed = claimed;
                for &(role, j) in &claimants {
                    next_claimed[role][j] = true;
                }
                let mut next_claims = claims;
                next_claims.push(claimants);
                self.match_from(scope, idx + 1, next_claimed, after_else, next_claims)
            }
            Item::Ret(fused_values) => {
                let mut claimants = Vec::new();
                for (role, items) in scope.roles.iter().enumerate() {
                    for (j, item) in items.iter().enumerate() {
                        if claimed[role][j] {
                            continue;
                        }
                        if let Item::Ret(values) = item {
                            claimants.push((role, j, values.clone()));
                            break;
                        }
                    }
                }
                if claimants.is_empty() {
                    return Err(format!("no pass claims the fused return #{idx}"));
                }
                for (role, _, values) in &claimants {
                    for (comp, slot) in self.role_res_map(*role).iter().enumerate() {
                        let Some(fused_comp) = slot else {
                            continue;
                        };
                        let Some(value) = values.get(comp) else {
                            return Err(format!("pass {role} returns too few components"));
                        };
                        let mapped = subst_aexpr(value, &state.sigmas[*role]).ok_or_else(|| {
                            format!("pass {role} return reads an unbound variable")
                        })?;
                        let fused_value = fused_values
                            .get(*fused_comp)
                            .ok_or_else(|| "fused return component out of range".to_string())?;
                        if &mapped != fused_value {
                            return Err(format!(
                                "pass {role} return component {comp} disagrees with the fused return"
                            ));
                        }
                    }
                }
                let mut next_claimed = claimed;
                let mut claim_list = Vec::new();
                for (role, j, _) in claimants {
                    next_claimed[role][j] = true;
                    claim_list.push((role, j));
                }
                let mut next_claims = claims;
                next_claims.push(claim_list);
                self.match_from(scope, idx + 1, next_claimed, state, next_claims)
            }
        }
    }

    /// The res_map of a role in the entry currently being verified.
    fn role_res_map(&self, role: usize) -> Vec<Option<usize>> {
        self.in_progress
            .last()
            .map(|key| key.roles[role].res_map.clone())
            .unwrap_or_default()
    }

    fn try_assign(
        &self,
        fused: &Assign,
        role_assign: &Assign,
        role: usize,
        state: &MatchState,
    ) -> Option<MatchState> {
        match (fused, role_assign) {
            (
                Assign::SetField(fused_node, fused_field, fused_value),
                Assign::SetField(node, field, value),
            ) => {
                if node != fused_node || field != fused_field {
                    return None;
                }
                let mapped = subst_aexpr(value, &state.sigmas[role])?;
                (&mapped == fused_value).then(|| state.clone())
            }
            (Assign::SetVar(fused_name, fused_value), Assign::SetVar(name, value)) => {
                if let Some(owner) = state.owner.get(fused_name) {
                    if *owner != role {
                        return None;
                    }
                }
                let mapped = subst_aexpr(value, &state.sigmas[role])?;
                if &mapped != fused_value {
                    return None;
                }
                let mut next = state.clone();
                next.sigmas[role].insert(name.clone(), fused_name.clone());
                next.owner.insert(fused_name.clone(), role);
                Some(next)
            }
            _ => None,
        }
    }

    /// Matches a fused call: one or more role calls (each pass contributing
    /// its same-target calls in order) merge into it, producing a child
    /// entry obligation.
    fn match_call(
        &mut self,
        scope: &Scope,
        idx: usize,
        fused_call: &CallBlock,
        claimed: Vec<Vec<bool>>,
        state: MatchState,
        claims: Claims,
    ) -> Result<(MatchState, Claims), String> {
        if self.fused.func(&fused_call.callee).is_none() {
            return Err(format!(
                "fused call to unknown function {}",
                fused_call.callee
            ));
        }
        // Per role: unclaimed same-target calls, in role order, with the
        // fused argument position of each of their arguments.
        let mut eligible: Vec<Vec<(usize, Vec<usize>)>> = Vec::new();
        for (role, items) in scope.roles.iter().enumerate() {
            let mut list = Vec::new();
            for (j, item) in items.iter().enumerate() {
                if claimed[role][j] {
                    continue;
                }
                let Item::Call(call) = item else {
                    continue;
                };
                if call.target != fused_call.target || self.original.func(&call.callee).is_none() {
                    continue;
                }
                let mut formal_map = Vec::new();
                let mut all_found = true;
                for arg in &call.args {
                    let Some(mapped) = subst_aexpr(arg, &state.sigmas[role]) else {
                        all_found = false;
                        break;
                    };
                    match fused_call
                        .args
                        .iter()
                        .position(|fused_arg| fused_arg == &mapped)
                    {
                        Some(pos) => formal_map.push(pos),
                        None => {
                            all_found = false;
                            break;
                        }
                    }
                }
                if all_found {
                    list.push((j, formal_map));
                }
            }
            list.truncate(3);
            eligible.push(list);
        }
        // Enumerate how many calls each role contributes (a prefix of its
        // eligible list), preferring larger merges.
        let mut combos = vec![Vec::new()];
        for list in &eligible {
            let mut next = Vec::new();
            for combo in &combos {
                for take in (0..=list.len()).rev() {
                    let mut extended: Vec<usize> = combo.clone();
                    extended.push(take);
                    next.push(extended);
                }
            }
            combos = next;
        }
        let mut last_err = format!("no pass claims the fused call #{idx}");
        let mut candidates = 0usize;
        for combo in combos {
            if combo.iter().all(|&take| take == 0) {
                continue;
            }
            // Per claimed role call, the result-binding options.
            let mut slots: Vec<CallSlot> = Vec::new();
            for (role, &take) in combo.iter().enumerate() {
                for &(j, ref formal_map) in &eligible[role][..take] {
                    let Item::Call(call) = &scope.roles[role][j] else {
                        unreachable!("eligible lists only hold calls");
                    };
                    let options =
                        Verifier::result_assignments(call.results.len(), fused_call.results.len());
                    slots.push((role, j, formal_map.clone(), options));
                }
            }
            let mut choice = vec![0usize; slots.len()];
            'assignments: loop {
                candidates += 1;
                if candidates > MAX_CALL_CANDIDATES {
                    return Err(format!("too many merge candidates for fused call #{idx}"));
                }
                let mut next_state = state.clone();
                let mut role_specs = Vec::new();
                let mut claim_list = Vec::new();
                let mut feasible = true;
                for (slot, (role, j, formal_map, options)) in slots.iter().enumerate() {
                    let assignment = &options[choice[slot]];
                    let Item::Call(call) = &scope.roles[*role][*j] else {
                        unreachable!("eligible lists only hold calls");
                    };
                    for (result, slot_choice) in call.results.iter().zip(assignment) {
                        match slot_choice {
                            Some(pos) => {
                                next_state.sigmas[*role]
                                    .insert(result.clone(), fused_call.results[*pos].clone());
                            }
                            None => {
                                next_state.sigmas[*role].remove(result);
                            }
                        }
                    }
                    if self.original.func(&call.callee).map(|f| f.int_params.len())
                        != Some(formal_map.len())
                    {
                        feasible = false;
                        break;
                    }
                    role_specs.push(RoleSpec {
                        func: call.callee.clone(),
                        formal_map: formal_map.clone(),
                        res_map: assignment.clone(),
                    });
                    claim_list.push((*role, *j));
                }
                if feasible {
                    next_state.obligations.push(EntryKey {
                        fused: fused_call.callee.clone(),
                        roles: role_specs,
                    });
                    let mut next_claimed = claimed.clone();
                    for &(role, j) in &claim_list {
                        next_claimed[role][j] = true;
                    }
                    let mut next_claims = claims.clone();
                    next_claims.push(claim_list);
                    match self.match_from(scope, idx + 1, next_claimed, next_state, next_claims) {
                        Ok(done) => return Ok(done),
                        Err(err) => last_err = err,
                    }
                }
                // Advance the mixed-radix assignment counter.
                for slot in (0..slots.len()).rev() {
                    choice[slot] += 1;
                    if choice[slot] < slots[slot].3.len() {
                        continue 'assignments;
                    }
                    choice[slot] = 0;
                }
                break;
            }
            if slots.is_empty() {
                continue;
            }
        }
        Err(last_err)
    }

    fn match_scope(&mut self, scope: &Scope, state: MatchState) -> Result<MatchState, String> {
        let claimed = scope
            .roles
            .iter()
            .map(|items| vec![false; items.len()])
            .collect();
        let (state, _claims) = self.match_from(scope, 0, claimed, state, Vec::new())?;
        Ok(state)
    }

    fn verify_entry(&mut self, key: &EntryKey) -> Result<(), String> {
        if self.proven.contains(key) || self.in_progress.contains(key) {
            return Ok(());
        }
        if self.entries_verified >= MAX_ENTRIES || self.in_progress.len() >= MAX_DEPTH {
            return Err("correspondence entry budget exceeded".into());
        }
        let fused_func = self
            .fused
            .func(&key.fused)
            .ok_or_else(|| format!("no fused function {}", key.fused))?;
        let fused_items = body_items(&fused_func.body)?;
        let mut role_items = Vec::new();
        let mut sigmas = Vec::new();
        for role in &key.roles {
            let role_func = self
                .original
                .func(&role.func)
                .ok_or_else(|| format!("no pass function {}", role.func))?;
            if role.formal_map.len() != role_func.int_params.len()
                || role.res_map.len() != role_func.num_returns
                || role
                    .formal_map
                    .iter()
                    .any(|&p| p >= fused_func.int_params.len())
                || role
                    .res_map
                    .iter()
                    .flatten()
                    .any(|&p| p >= fused_func.num_returns)
            {
                return Err(format!(
                    "pass {} does not fit the fused signature",
                    role.func
                ));
            }
            let mut sigma = Sigma::new();
            sigma.insert(role_func.loc_param.clone(), fused_func.loc_param.clone());
            for (formal, &pos) in role_func.int_params.iter().zip(&role.formal_map) {
                sigma.insert(formal.clone(), fused_func.int_params[pos].clone());
            }
            role_items.push(body_items(&role_func.body)?);
            sigmas.push(sigma);
        }
        self.in_progress.push(key.clone());
        let result = (|| {
            let scope = Scope {
                fused: fused_items,
                roles: role_items,
            };
            let state = MatchState {
                sigmas,
                owner: BTreeMap::new(),
                obligations: Vec::new(),
            };
            let state = self.match_scope(&scope, state)?;
            for obligation in state.obligations {
                self.verify_entry(&obligation)?;
            }
            Ok(())
        })();
        self.in_progress.pop();
        if result.is_ok() {
            self.proven.insert(key.clone());
            self.entries_verified += 1;
        }
        result
    }
}

/// Tries to establish that `fused` is the pass fusion of `original`:
/// equivalent on every tree and valuation.
///
/// `Established` is a sound unbounded equivalence proof; `NotApplicable`
/// carries no information (fall back to a bounded check).  The matcher is
/// directional — `original` is the multi-pass side — so callers deciding a
/// symmetric equivalence query should try both orders.
pub fn check_fusion_correspondence(original: &Program, fused: &Program) -> CorrespVerdict {
    if original == fused {
        return CorrespVerdict::Established { entries: 0 };
    }
    let (Some(orig_main), Some(fused_main)) = (original.main(), fused.main()) else {
        return CorrespVerdict::NotApplicable {
            reason: "both programs need a Main".into(),
        };
    };
    if orig_main.int_params != fused_main.int_params
        || orig_main.num_returns != fused_main.num_returns
    {
        return CorrespVerdict::NotApplicable {
            reason: "Main signatures differ".into(),
        };
    }
    let key = EntryKey {
        fused: MAIN.to_string(),
        roles: vec![RoleSpec {
            func: MAIN.to_string(),
            formal_map: (0..orig_main.int_params.len()).collect(),
            res_map: (0..orig_main.num_returns).map(Some).collect(),
        }],
    };
    let mut verifier = Verifier::new(original, fused);
    match verifier.verify_entry(&key) {
        Ok(()) => CorrespVerdict::Established {
            entries: verifier.entries_verified,
        },
        Err(reason) => CorrespVerdict::NotApplicable { reason },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_lang::parser::parse_program;

    #[test]
    fn identical_programs_are_trivially_equivalent() {
        let program = corpus::size_counting_sequential();
        let verdict = check_fusion_correspondence(&program, &program);
        assert!(verdict.is_established());
    }

    #[test]
    fn size_counting_fusion_is_established() {
        let verdict = check_fusion_correspondence(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused(),
        );
        match verdict {
            CorrespVerdict::Established { entries } => assert!(entries >= 2, "{entries}"),
            other => panic!("expected an established fusion, got {other:?}"),
        }
    }

    #[test]
    fn invalid_size_counting_fusion_is_rejected() {
        let verdict = check_fusion_correspondence(
            &corpus::size_counting_sequential(),
            &corpus::size_counting_fused_invalid(),
        );
        assert!(!verdict.is_established(), "got {verdict:?}");
    }

    #[test]
    fn tree_mutation_fusion_is_established() {
        let verdict = check_fusion_correspondence(
            &corpus::tree_mutation_original(),
            &corpus::tree_mutation_fused(),
        );
        assert!(verdict.is_established(), "got {verdict:?}");
    }

    #[test]
    fn css_minify_fusion_is_established() {
        let verdict = check_fusion_correspondence(
            &corpus::css_minify_original(),
            &corpus::css_minify_fused(),
        );
        assert!(verdict.is_established(), "got {verdict:?}");
    }

    #[test]
    fn cycletree_fusion_is_established() {
        let verdict =
            check_fusion_correspondence(&corpus::cycletree_original(), &corpus::cycletree_fused());
        assert!(verdict.is_established(), "got {verdict:?}");
    }

    #[test]
    fn reordered_conflicting_rewrites_are_rejected() {
        // Like the css fusion, but the fused pass applies MinifyFont before
        // ConvertValues — a later pass overtaking an earlier write to
        // `value`, which changes the result whenever both guards fire.
        let reordered = parse_program(
            r#"
            fn FusedMinify(n) {
                if (n == nil) {
                    return 0;
                } else {
                    a = FusedMinify(n.l);
                    b = FusedMinify(n.r);
                    if (n.prop > 0) {
                        n.value = 400;
                    }
                    if (n.kind > 0) {
                        n.value = n.value - 1;
                    }
                    if (n.initial > n.value) {
                        n.value = 0;
                    }
                    return 0;
                }
            }
            fn Main(n) {
                x = FusedMinify(n);
                return 0;
            }
        "#,
        )
        .unwrap();
        let verdict = check_fusion_correspondence(&corpus::css_minify_original(), &reordered);
        assert!(!verdict.is_established(), "got {verdict:?}");
    }

    #[test]
    fn the_matcher_is_directional() {
        // Fused → sequential needs a "defusion" the matcher does not do.
        let verdict = check_fusion_correspondence(
            &corpus::size_counting_fused(),
            &corpus::size_counting_sequential(),
        );
        assert!(!verdict.is_established());
    }

    #[test]
    fn parallel_programs_are_not_applicable() {
        let verdict = check_fusion_correspondence(
            &corpus::size_counting_parallel(),
            &corpus::size_counting_fused(),
        );
        assert!(!verdict.is_established());
    }
}
