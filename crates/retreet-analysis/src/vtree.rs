//! Concrete binary trees with integer-valued local fields.
//!
//! The bounded analysis engines run Retreet programs (and enumerate
//! configurations) over *concrete* trees: a shape plus an integer value for
//! every local field read by the program.  [`ValueTree`] is that model.  The
//! shapes come from the exhaustive enumerator of `retreet-mso`; field values
//! are filled in by a small deterministic generator so analyses are
//! reproducible without an external RNG.

use std::collections::BTreeMap;
use std::fmt;

use retreet_mso::tree::{shared_trees_up_to, LabeledTree};

/// Identifier of a node inside a [`ValueTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct VNode {
    /// Children indexed by axis; the vector is only as long as the highest
    /// axis ever attached (missing tail entries mean nil).
    children: Vec<Option<NodeId>>,
    parent: Option<NodeId>,
    fields: BTreeMap<String, i64>,
}

/// A k-ary tree whose nodes carry named integer fields.
///
/// Axes 0 and 1 are the binary `l`/`r` children; the `left`/`right` helpers
/// are kept as the common special case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueTree {
    nodes: Vec<VNode>,
}

impl ValueTree {
    /// A single-node tree.
    pub fn single() -> Self {
        ValueTree {
            nodes: vec![VNode::default()],
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a value tree has at least its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a child on the given axis.
    pub fn add_child(&mut self, parent: NodeId, axis: usize) -> NodeId {
        assert!(self.child(parent, axis).is_none());
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(VNode {
            parent: Some(parent),
            ..VNode::default()
        });
        let children = &mut self.nodes[parent.as_usize()].children;
        if children.len() <= axis {
            children.resize(axis + 1, None);
        }
        children[axis] = Some(id);
        id
    }

    /// Adds a left child (axis 0).
    pub fn add_left(&mut self, parent: NodeId) -> NodeId {
        self.add_child(parent, 0)
    }

    /// Adds a right child (axis 1).
    pub fn add_right(&mut self, parent: NodeId) -> NodeId {
        self.add_child(parent, 1)
    }

    /// The child on the given axis (`None` for nil).
    pub fn child(&self, node: NodeId, axis: usize) -> Option<NodeId> {
        self.nodes[node.as_usize()]
            .children
            .get(axis)
            .copied()
            .flatten()
    }

    /// Left child (axis 0).
    pub fn left(&self, node: NodeId) -> Option<NodeId> {
        self.child(node, 0)
    }

    /// Right child (axis 1).
    pub fn right(&self, node: NodeId) -> Option<NodeId> {
        self.child(node, 1)
    }

    /// The children of a node over the given arity, axis by axis (nil
    /// children included as `None`).
    pub fn children(&self, node: NodeId, arity: u8) -> Vec<Option<NodeId>> {
        (0..arity as usize).map(|a| self.child(node, a)).collect()
    }

    /// Parent.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.as_usize()].parent
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Reads a field (0 when never written or initialized).
    pub fn field(&self, node: NodeId, name: &str) -> i64 {
        self.nodes[node.as_usize()]
            .fields
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Writes a field.
    pub fn set_field(&mut self, node: NodeId, name: &str, value: i64) {
        self.nodes[node.as_usize()]
            .fields
            .insert(name.to_string(), value);
    }

    /// A snapshot of every `(node, field, value)` triple, for equality
    /// comparisons between program runs.
    pub fn field_snapshot(&self) -> BTreeMap<(NodeId, String), i64> {
        let mut out = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for (name, value) in &node.fields {
                out.insert((NodeId(i as u32), name.clone()), *value);
            }
        }
        out
    }

    /// The height of the tree (single node = 1).
    pub fn height(&self) -> usize {
        fn depth(tree: &ValueTree, node: NodeId) -> usize {
            let deepest = tree.nodes[node.as_usize()]
                .children
                .iter()
                .flatten()
                .map(|&c| depth(tree, c))
                .max()
                .unwrap_or(0);
            1 + deepest
        }
        depth(self, self.root())
    }

    /// Builds a [`ValueTree`] with the same shape as a `retreet-mso` tree.
    pub fn from_shape_of(labeled: &LabeledTree) -> Self {
        let mut tree = ValueTree::single();
        fn copy(
            labeled: &LabeledTree,
            src: retreet_mso::tree::NodeId,
            tree: &mut ValueTree,
            dst: NodeId,
        ) {
            if let Some(l) = labeled.left(src) {
                let child = tree.add_left(dst);
                copy(labeled, l, tree, child);
            }
            if let Some(r) = labeled.right(src) {
                let child = tree.add_right(dst);
                copy(labeled, r, tree, child);
            }
        }
        copy(labeled, labeled.root(), &mut tree, NodeId(0));
        tree
    }

    /// Builds a complete binary tree of the given height with fields from
    /// `init(node_index, field)`.
    pub fn complete(height: usize, fields: &[&str], init: impl Fn(usize, &str) -> i64) -> Self {
        ValueTree::complete_kary(2, height, fields, init)
    }

    /// Builds a complete k-ary tree of the given height with fields from
    /// `init(node_index, field)`.
    pub fn complete_kary(
        arity: u8,
        height: usize,
        fields: &[&str],
        init: impl Fn(usize, &str) -> i64,
    ) -> Self {
        assert!(height >= 1);
        assert!(arity >= 1);
        let mut tree = ValueTree::single();
        fn grow(tree: &mut ValueTree, node: NodeId, arity: u8, remaining: usize) {
            if remaining == 0 {
                return;
            }
            // Allocate every child before recursing so node numbering (and
            // therefore every seeded field valuation) matches the historic
            // binary layout exactly.
            let children: Vec<NodeId> = (0..arity as usize)
                .map(|axis| tree.add_child(node, axis))
                .collect();
            for child in children {
                grow(tree, child, arity, remaining - 1);
            }
        }
        grow(&mut tree, NodeId(0), arity, height - 1);
        for node in tree.nodes().collect::<Vec<_>>() {
            for field in fields {
                let value = init(node.as_usize(), field);
                tree.set_field(node, field, value);
            }
        }
        tree
    }

    /// Fills every listed field of every node with a deterministic
    /// pseudo-random small integer derived from `seed` (a simple linear
    /// congruential generator, good enough for differential testing and
    /// reproducible across runs).
    pub fn fill_fields(&mut self, fields: &[&str], seed: u64) {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let nodes: Vec<NodeId> = self.nodes().collect();
        for node in nodes {
            for field in fields {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Small signed values keep the arithmetic readable in
                // counterexamples and avoid overflow in long traversals.
                let value = ((state >> 33) % 17) as i64 - 8;
                self.set_field(node, field, value);
            }
        }
    }
}

/// The corpus of test trees the bounded engines iterate over: every shape up
/// to `max_nodes` nodes, each with `valuations` different deterministic field
/// valuations for the given field names.
pub fn test_trees(max_nodes: usize, fields: &[&str], valuations: usize) -> Vec<ValueTree> {
    let corpus = TreeCorpus::new(max_nodes, fields, valuations);
    (0..corpus.len()).map(|i| corpus.tree(i)).collect()
}

/// [`test_trees`] over k-ary shapes (identical to it at arity 2).
pub fn test_trees_kary(
    arity: u8,
    max_nodes: usize,
    fields: &[&str],
    valuations: usize,
) -> Vec<ValueTree> {
    let corpus = TreeCorpus::with_arity(arity, max_nodes, fields, valuations);
    (0..corpus.len()).map(|i| corpus.tree(i)).collect()
}

/// A k-ary tree shape with no field values: the unit the k-ary bounded
/// enumeration is built from.
#[derive(Clone, Default)]
struct KShape {
    /// One entry per axis; `None` is a nil child.
    children: Vec<Option<Box<KShape>>>,
}

/// Every k-ary shape with exactly `n` nodes, in a deterministic order
/// (compositions of the remaining node budget over the axes, smallest first
/// axis budget first).
fn kary_shapes_with(arity: usize, n: usize) -> Vec<KShape> {
    assert!(n >= 1);
    let mut out = Vec::new();
    let mut parts = vec![0usize; arity];
    fill_axes(arity, n - 1, 0, &mut parts, &mut out);
    out
}

fn fill_axes(
    arity: usize,
    budget: usize,
    axis: usize,
    parts: &mut Vec<usize>,
    out: &mut Vec<KShape>,
) {
    if axis == arity {
        if budget == 0 {
            let mut shape = KShape::default();
            expand_axes(arity, parts, 0, &mut shape, out);
        }
        return;
    }
    for take in 0..=budget {
        parts[axis] = take;
        fill_axes(arity, budget - take, axis + 1, parts, out);
    }
    parts[axis] = 0;
}

/// Expands one composition into the cartesian product of per-axis subtree
/// shapes.
fn expand_axes(
    arity: usize,
    parts: &[usize],
    axis: usize,
    prefix: &mut KShape,
    out: &mut Vec<KShape>,
) {
    if axis == arity {
        out.push(prefix.clone());
        return;
    }
    if parts[axis] == 0 {
        prefix.children.push(None);
        expand_axes(arity, parts, axis + 1, prefix, out);
        prefix.children.pop();
        return;
    }
    for sub in kary_shapes_with(arity, parts[axis]) {
        prefix.children.push(Some(Box::new(sub)));
        expand_axes(arity, parts, axis + 1, prefix, out);
        prefix.children.pop();
    }
}

fn kary_shapes_up_to(arity: u8, max_nodes: usize) -> Vec<ValueTree> {
    let mut out = Vec::new();
    for n in 1..=max_nodes {
        for shape in kary_shapes_with(arity as usize, n) {
            let mut tree = ValueTree::single();
            build_from_kshape(&shape, &mut tree, NodeId(0));
            out.push(tree);
        }
    }
    out
}

fn build_from_kshape(shape: &KShape, tree: &mut ValueTree, node: NodeId) {
    // Allocate all children before recursing, matching `complete_kary`'s
    // numbering convention.
    let mut grafted = Vec::new();
    for (axis, child) in shape.children.iter().enumerate() {
        if let Some(sub) = child {
            grafted.push((tree.add_child(node, axis), sub.as_ref()));
        }
    }
    for (id, sub) in grafted {
        build_from_kshape(sub, tree, id);
    }
}

/// A *lazily materialized* corpus of test trees: the shapes come from the
/// process-wide shape cache, and each tree is only built (shape copy plus
/// deterministic field fill) when an engine actually asks for its index.
///
/// Queries that terminate on an early witness (a race or a counterexample
/// on the first few trees) therefore never pay for the hundreds of larger
/// trees behind it.  Index order is identical to [`test_trees`].
pub struct TreeCorpus {
    shapes: ShapeSource,
    fields: Vec<String>,
    valuations: usize,
}

/// Where a corpus's tree shapes come from.  Binary corpora keep using the
/// process-wide [`shared_trees_up_to`] cache (so the binary engines are
/// byte-identical to before the arity generalization); higher arities
/// enumerate k-ary shapes locally.
enum ShapeSource {
    Binary(std::sync::Arc<Vec<LabeledTree>>),
    Kary(Vec<ValueTree>),
}

impl ShapeSource {
    fn len(&self) -> usize {
        match self {
            ShapeSource::Binary(shapes) => shapes.len(),
            ShapeSource::Kary(shapes) => shapes.len(),
        }
    }
}

impl TreeCorpus {
    /// The corpus of every shape up to `max_nodes` with `valuations`
    /// deterministic field valuations each.
    pub fn new(max_nodes: usize, fields: &[&str], valuations: usize) -> Self {
        TreeCorpus::with_arity(2, max_nodes, fields, valuations)
    }

    /// [`TreeCorpus::new`] generalized to k-ary shapes.  Arity 2 is exactly
    /// the binary corpus (same shapes, same order, same shared cache).
    pub fn with_arity(arity: u8, max_nodes: usize, fields: &[&str], valuations: usize) -> Self {
        let shapes = if arity <= 2 {
            ShapeSource::Binary(shared_trees_up_to(max_nodes))
        } else {
            ShapeSource::Kary(kary_shapes_up_to(arity, max_nodes))
        };
        TreeCorpus {
            shapes,
            fields: fields.iter().map(|f| f.to_string()).collect(),
            valuations: valuations.max(1),
        }
    }

    /// Number of trees in the corpus.
    pub fn len(&self) -> usize {
        self.shapes.len() * self.valuations
    }

    /// True when the corpus is empty (a zero node bound).
    pub fn is_empty(&self) -> bool {
        self.shapes.len() == 0
    }

    /// Materializes the `index`-th tree (same order as [`test_trees`]).
    pub fn tree(&self, index: usize) -> ValueTree {
        let shape = index / self.valuations;
        let v = index % self.valuations;
        let fields: Vec<&str> = self.fields.iter().map(String::as_str).collect();
        let mut tree = match &self.shapes {
            ShapeSource::Binary(shapes) => ValueTree::from_shape_of(&shapes[shape]),
            ShapeSource::Kary(shapes) => shapes[shape].clone(),
        };
        tree.fill_fields(&fields, 0x9E3779B9u64.wrapping_add(v as u64 * 0x1234567));
        tree
    }

    /// The indices whose trees are pairwise distinct representatives:
    /// when there are no fields to value, the `valuations` copies of each
    /// shape are identical and only the first is kept.  (Distinct seeds can
    /// in principle coincide on tiny trees too; re-checking such a
    /// coincidence is sound, just redundant, so only the field-free case is
    /// deduplicated.)
    pub fn representatives(&self) -> Vec<usize> {
        if self.fields.is_empty() {
            (0..self.len()).step_by(self.valuations).collect()
        } else {
            (0..self.len()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_mso::tree::all_trees_up_to;

    #[test]
    fn build_and_navigate() {
        let mut tree = ValueTree::single();
        let root = tree.root();
        let l = tree.add_left(root);
        let r = tree.add_right(root);
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.parent(l), Some(root));
        assert_eq!(tree.left(root), Some(l));
        assert_eq!(tree.right(root), Some(r));
        assert_eq!(tree.height(), 2);
    }

    #[test]
    fn fields_default_to_zero() {
        let mut tree = ValueTree::single();
        let root = tree.root();
        assert_eq!(tree.field(root, "v"), 0);
        tree.set_field(root, "v", 42);
        assert_eq!(tree.field(root, "v"), 42);
        assert_eq!(tree.field_snapshot().len(), 1);
    }

    #[test]
    fn shape_conversion_preserves_structure() {
        for labeled in all_trees_up_to(4) {
            let tree = ValueTree::from_shape_of(&labeled);
            assert_eq!(tree.len(), labeled.len());
        }
    }

    #[test]
    fn complete_tree_and_deterministic_fill() {
        let tree = ValueTree::complete(3, &["v"], |i, _| i as i64);
        assert_eq!(tree.len(), 7);
        assert_eq!(tree.field(NodeId(3), "v"), 3);

        let mut a = ValueTree::complete(3, &[], |_, _| 0);
        let mut b = ValueTree::complete(3, &[], |_, _| 0);
        a.fill_fields(&["v"], 7);
        b.fill_fields(&["v"], 7);
        assert_eq!(a, b, "filling is deterministic");
        b.fill_fields(&["v"], 8);
        assert_ne!(a, b, "different seeds give different valuations");
    }

    #[test]
    fn test_tree_corpus_size() {
        let trees = test_trees(3, &["v"], 2);
        // (1 + 2 + 5) shapes × 2 valuations.
        assert_eq!(trees.len(), 16);
        assert!(trees.iter().all(|t| t.len() <= 3));
    }
}
