//! The frozen pre-optimization engines — the "before" of every
//! before/after benchmark, and the reference the optimized engines are
//! differentially tested against.
//!
//! This module preserves the seed revision's bounded-engine *algorithms*
//! verbatim:
//!
//! * a clone-per-branch DFS that re-runs [`wp::summarize_path`] for every
//!   (stack frame, block, path) triple on every tree and re-solves every
//!   grown constraint system from scratch (no memoization, no incremental
//!   frames),
//! * strictly sequential tree and pair loops that recompute per-pair
//!   footprints on every probe and key the dependence-order maps by
//!   rendered signature strings,
//! * an interpreter run that re-annotates function bodies per run and
//!   deep-clones the annotated body on every activation (the seed
//!   interpreter's dominant cost).
//!
//! One honesty caveat for the benchmark numbers: the naive interpreter is
//! the optimized [`crate::interp::Runner`] with the per-run re-annotation
//! and per-activation deep clone restored — it still *shares* the reworked
//! interpreter plumbing (association-list environments, pooled buffers,
//! the flat trace-position buffer, precomputed callee indices), all of
//! which make this baseline **faster** than the true seed interpreter.
//! The before/after speedups in `BENCH_engines.json` are therefore
//! conservative lower bounds on the improvement over the seed.
//!
//! Nothing here is called by production code.  The `bench_engines` binary
//! times it as the "before" column of `BENCH_engines.json`, and the
//! property-test suite asserts that the optimized engines return verdicts
//! identical to this path across the §5 corpus.  Keep it frozen: bug fixes
//! that change verdicts belong in both paths, performance work only in the
//! optimized one.

use retreet_lang::ast::Program;
use retreet_lang::blocks::BlockTable;
use retreet_lang::wp::{self, PathCondition, SymbolicEnv};
use retreet_logic::{Atom, LinExpr, Solver, Sym, SymTab, System};

use crate::configs::{
    dependence, relation, ConfigRelation, Configuration, EnumOptions, Frame, Loc,
};
use crate::equiv::{Disagreement, EquivCounterExample, EquivOptions, EquivVerdict};
use crate::interp::{self, ExecOrder, Iteration, RunResult};
use crate::race::{program_fields, RaceOptions, RaceVerdict, RaceWitness};
use crate::vtree::{test_trees_kary, ValueTree};

use std::collections::BTreeMap;

/// The pre-optimization interpreter entry point (deep-clones the annotated
/// body on every activation).
pub fn run_with_table(
    table: &BlockTable,
    tree: &ValueTree,
) -> Result<RunResult, interp::InterpError> {
    interp::run_with_table_impl(table, tree, true)
}

/// The pre-optimization configuration enumeration: clone-per-branch DFS,
/// per-frame weakest-precondition recomputation, uncached from-scratch
/// solving of every extension.
pub fn enumerate(
    table: &BlockTable,
    tree: &ValueTree,
    options: &EnumOptions,
) -> Vec<Configuration> {
    let program = table.program();
    let Some(main_idx) = program.func_index(retreet_lang::ast::MAIN) else {
        return Vec::new();
    };
    let mut symtab = SymTab::new();
    let mut out = Vec::new();
    let main_frame = Frame {
        func: main_idx,
        node: Loc::Node(tree.root()),
        call_block: None,
    };
    let main_params: Vec<LinExpr> = program.funcs[main_idx]
        .int_params
        .iter()
        .map(|p| LinExpr::var(symtab.intern(&format!("main:{p}"))))
        .collect();
    let mut stack_sig = String::from("main");
    explore(
        table,
        tree,
        options,
        &mut symtab,
        &mut out,
        vec![main_frame],
        main_params,
        System::new(),
        &mut stack_sig,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn explore(
    table: &BlockTable,
    tree: &ValueTree,
    options: &EnumOptions,
    symtab: &mut SymTab,
    out: &mut Vec<Configuration>,
    frames: Vec<Frame>,
    params: Vec<LinExpr>,
    constraints: System,
    stack_sig: &mut String,
) {
    if frames.len() > options.max_depth || out.len() >= options.max_configurations {
        return;
    }
    let solver = Solver::decision_only();
    let frame = frames.last().expect("non-empty stack");
    let func = &table.program().funcs[frame.func];
    let param_names = func.int_params.clone();

    for &block in table.blocks_of_func(frame.func) {
        for path in table.paths_to(block) {
            // Summarize the path symbolically in a *local* symbol table, then
            // ground it against the concrete tree and the caller-provided
            // parameter expressions.
            let mut local = SymTab::new();
            let summary = wp::summarize_path(table, &path, &param_names, &mut local);
            let Some((path_constraints, mut env)) = ground_summary(
                tree,
                frame.node,
                &summary.condition,
                summary.env,
                &local,
                &params,
                &param_names,
                symtab,
                stack_sig,
            ) else {
                continue;
            };
            let mut combined = constraints.clone();
            combined.extend_from(&path_constraints);
            if !solver.check(&combined).is_sat() {
                continue;
            }
            let info = table.info(block);
            match info.block.as_call() {
                None => {
                    out.push(Configuration {
                        frames: frames.clone(),
                        target: block,
                        constraints: combined,
                    });
                    if out.len() >= options.max_configurations {
                        return;
                    }
                }
                Some(call) => {
                    let callee_node = crate::configs::resolve_loc(tree, frame.node, call.target);
                    let Some(callee_idx) = table.program().func_index(&call.callee) else {
                        continue;
                    };
                    let mut local2 = local.clone();
                    let raw_args = wp::symbolic_call_args(table, block, &mut env, &mut local2);
                    let callee_args: Vec<LinExpr> = raw_args
                        .iter()
                        .map(|arg| {
                            ground_expr(
                                arg,
                                tree,
                                frame.node,
                                &local2,
                                &params,
                                &param_names,
                                symtab,
                                stack_sig,
                            )
                        })
                        .collect::<Option<Vec<_>>>()
                        .unwrap_or_else(|| {
                            raw_args
                                .iter()
                                .enumerate()
                                .map(|(i, _)| {
                                    LinExpr::var(
                                        symtab.intern(&format!("arg:{stack_sig}:{block}:{i}")),
                                    )
                                })
                                .collect()
                        });
                    let mut child_frames = frames.clone();
                    child_frames.push(Frame {
                        func: callee_idx,
                        node: callee_node,
                        call_block: Some(block),
                    });
                    let saved_len = stack_sig.len();
                    stack_sig.push_str(&format!("/{block}@{callee_node}"));
                    explore(
                        table,
                        tree,
                        options,
                        symtab,
                        out,
                        child_frames,
                        callee_args,
                        combined,
                        stack_sig,
                    );
                    stack_sig.truncate(saved_len);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn ground_summary(
    tree: &ValueTree,
    loc: Loc,
    condition: &PathCondition,
    env: SymbolicEnv,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<(System, SymbolicEnv)> {
    let mut feasible_cases: Vec<System> = Vec::new();
    'cases: for case in &condition.cases {
        for (node_ref, must_be_nil) in &case.nil_atoms {
            let is_nil = matches!(crate::configs::resolve_loc(tree, loc, *node_ref), Loc::Nil);
            if is_nil != *must_be_nil {
                continue 'cases;
            }
        }
        match ground_system(
            &case.arith,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        ) {
            Some(system) => feasible_cases.push(system),
            None => continue 'cases,
        }
    }
    if feasible_cases.is_empty() {
        return None;
    }
    let system = feasible_cases.swap_remove(0);
    Some((system, env))
}

#[allow(clippy::too_many_arguments)]
fn ground_system(
    system: &System,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<System> {
    let mut out = System::new();
    for atom in system.atoms() {
        let grounded = ground_atom(
            atom,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        )?;
        out.push(grounded);
    }
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn ground_atom(
    atom: &Atom,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<Atom> {
    let mut expr = atom.expr().clone();
    for sym in atom.expr().vars().collect::<Vec<_>>() {
        let replacement = ground_sym(
            sym,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        )?;
        expr = expr.substitute(sym, &replacement);
    }
    Some(Atom::new(expr, atom.rel()))
}

#[allow(clippy::too_many_arguments)]
fn ground_expr(
    expr: &LinExpr,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<LinExpr> {
    let mut out = expr.clone();
    for sym in expr.vars().collect::<Vec<_>>() {
        let replacement = ground_sym(
            sym,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        )?;
        out = out.substitute(sym, &replacement);
    }
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn ground_sym(
    sym: Sym,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<LinExpr> {
    let name = local.name(sym)?.to_string();
    if let Some(param) = name.strip_prefix("param:") {
        if let Some(index) = param_names.iter().position(|p| p == param) {
            if let Some(value) = params.get(index) {
                return Some(value.clone());
            }
        }
        return Some(LinExpr::var(
            symtab.intern(&format!("local:{stack_sig}:{param}")),
        ));
    }
    if let Some(field) = name.strip_prefix("field:") {
        let (node_ref, field_name) = crate::configs::parse_field_name(field)?;
        let node = crate::configs::resolve_loc(tree, loc, node_ref).node()?;
        return Some(LinExpr::var(
            symtab.intern(&format!("treefield:{node}:{field_name}")),
        ));
    }
    if let Some(ghost) = name.strip_prefix("ghost:") {
        return Some(LinExpr::var(
            symtab.intern(&format!("ghost:{stack_sig}:{ghost}")),
        ));
    }
    Some(LinExpr::var(
        symtab.intern(&format!("opaque:{stack_sig}:{name}")),
    ))
}

/// The pre-optimization configuration-based data-race check: sequential
/// tree loop, sequential pair loop, per-pair footprint recomputation,
/// uncached mutual-feasibility solving.
pub fn check_data_race(program: &Program, options: &RaceOptions) -> RaceVerdict {
    let table = BlockTable::build(program);
    let fields = program_fields(&table);
    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
    let trees = test_trees_kary(
        program.arity,
        options.max_nodes,
        &field_refs,
        options.valuations,
    );
    let mut total_configs = 0usize;
    for tree in &trees {
        let configs = enumerate(&table, tree, &options.enumeration);
        total_configs += configs.len();
        if let Some(witness) = find_race(&table, tree, &configs) {
            return RaceVerdict::Race(witness);
        }
    }
    RaceVerdict::RaceFree {
        trees_checked: trees.len(),
        configurations: total_configs,
    }
}

fn find_race(
    table: &BlockTable,
    tree: &ValueTree,
    configs: &[Configuration],
) -> Option<RaceWitness> {
    for (i, a) in configs.iter().enumerate() {
        for b in configs.iter().skip(i + 1) {
            if relation(table, a, b) != ConfigRelation::Parallel {
                continue;
            }
            let Some((node, field)) = dependence(table, tree, a, b) else {
                continue;
            };
            if !crate::configs::mutually_feasible(a, b) {
                continue;
            }
            return Some(RaceWitness {
                tree: tree.clone(),
                first: a.describe(table),
                second: b.describe(table),
                node,
                field,
            });
        }
    }
    None
}

/// The pre-optimization bounded equivalence check: sequential tree loop,
/// deep-cloning interpreter, string-keyed dependence-order pair loop.
pub fn check_equivalence(
    original: &Program,
    transformed: &Program,
    options: &EquivOptions,
) -> EquivVerdict {
    let table_a = BlockTable::build(original);
    let table_b = BlockTable::build(transformed);
    let mut fields = program_fields(&table_a);
    for field in program_fields(&table_b) {
        if !fields.contains(&field) {
            fields.push(field);
        }
    }
    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
    let trees = test_trees_kary(
        original.arity.max(transformed.arity),
        options.max_nodes,
        &field_refs,
        options.valuations,
    );
    for tree in &trees {
        let run_a = run_with_table(&table_a, tree);
        let run_b = run_with_table(&table_b, tree);
        let (result_a, result_b) = match (run_a, run_b) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(err), _) | (_, Err(err)) => {
                return EquivVerdict::CounterExample(Box::new(EquivCounterExample {
                    tree: tree.clone(),
                    disagreement: Disagreement::ExecutionError {
                        message: err.to_string(),
                    },
                }));
            }
        };
        if let Some(disagreement) = compare_runs(&result_a, &result_b, options) {
            return EquivVerdict::CounterExample(Box::new(EquivCounterExample {
                tree: tree.clone(),
                disagreement,
            }));
        }
    }
    EquivVerdict::Equivalent {
        trees_checked: trees.len(),
    }
}

fn compare_runs(a: &RunResult, b: &RunResult, options: &EquivOptions) -> Option<Disagreement> {
    if a.returns != b.returns {
        return Some(Disagreement::Returns {
            first: a.returns.clone(),
            second: b.returns.clone(),
        });
    }
    let fields_a = a.tree.field_snapshot();
    let fields_b = b.tree.field_snapshot();
    if fields_a != fields_b {
        let detail = first_field_difference(&fields_a, &fields_b);
        return Some(Disagreement::Fields { detail });
    }
    if options.check_dependence_order {
        if let Some(detail) = dependence_order_violation(a, b) {
            return Some(Disagreement::DependenceOrder { detail });
        }
    }
    None
}

fn first_field_difference(
    a: &BTreeMap<(crate::vtree::NodeId, String), i64>,
    b: &BTreeMap<(crate::vtree::NodeId, String), i64>,
) -> String {
    for (key, value) in a {
        match b.get(key) {
            Some(other) if other == value => continue,
            Some(other) => {
                return format!("{}.{} = {} vs {}", key.0, key.1, value, other);
            }
            None => return format!("{}.{} = {} vs <unset>", key.0, key.1, value),
        }
    }
    for (key, value) in b {
        if !a.contains_key(key) {
            return format!("{}.{} = <unset> vs {}", key.0, key.1, value);
        }
    }
    String::from("<no difference>")
}

fn dependence_order_violation(a: &RunResult, b: &RunResult) -> Option<String> {
    let sig = |it: &Iteration| -> Option<String> {
        if it.accesses.is_empty() {
            return None;
        }
        let mut parts: Vec<String> = it
            .accesses
            .iter()
            .map(|acc| {
                format!(
                    "{}.{}:{}",
                    acc.node,
                    acc.field,
                    if acc.is_write { "w" } else { "r" }
                )
            })
            .collect();
        parts.sort();
        parts.dedup();
        Some(parts.join(","))
    };
    let mut index_a: BTreeMap<String, usize> = BTreeMap::new();
    for (i, it) in a.trace.iterations.iter().enumerate() {
        if let Some(s) = sig(it) {
            index_a.entry(s).or_insert(i);
        }
    }
    let mut index_b: BTreeMap<String, usize> = BTreeMap::new();
    for (i, it) in b.trace.iterations.iter().enumerate() {
        if let Some(s) = sig(it) {
            index_b.entry(s).or_insert(i);
        }
    }
    let shared: Vec<&String> = index_a
        .keys()
        .filter(|k| index_b.contains_key(*k))
        .collect();
    for (i, sig_x) in shared.iter().enumerate() {
        for sig_y in shared.iter().skip(i + 1) {
            let (xa, ya) = (index_a[*sig_x], index_a[*sig_y]);
            let (xb, yb) = (index_b[*sig_x], index_b[*sig_y]);
            if !crate::interp::conflicting(&a.trace.iterations[xa], &a.trace.iterations[ya]) {
                continue;
            }
            let order_a = a.trace.order(xa, ya);
            let order_b = b.trace.order(xb, yb);
            let conflict = matches!(
                (order_a, order_b),
                (ExecOrder::Before, ExecOrder::After) | (ExecOrder::After, ExecOrder::Before)
            );
            if conflict {
                return Some(format!(
                    "dependent iterations `{sig_x}` and `{sig_y}` are ordered {order_a:?} in the \
                     original but {order_b:?} in the transformed program"
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;

    #[test]
    fn naive_race_verdicts_match_optimized() {
        let options = RaceOptions::builder().max_nodes(3).valuations(1).build();
        for (name, program) in corpus::all() {
            let naive = check_data_race(&program, &options);
            let optimized = crate::race::check_data_race(&program, &options);
            assert_eq!(
                naive.is_race_free(),
                optimized.is_race_free(),
                "{name}: naive and optimized race verdicts diverge"
            );
        }
    }

    #[test]
    fn naive_equivalence_verdicts_match_optimized() {
        let options = EquivOptions::builder().max_nodes(3).valuations(1).build();
        let pairs = [
            (
                corpus::size_counting_sequential(),
                corpus::size_counting_fused(),
            ),
            (
                corpus::size_counting_sequential(),
                corpus::size_counting_fused_invalid(),
            ),
            (corpus::cycletree_original(), corpus::cycletree_fused()),
        ];
        for (original, transformed) in &pairs {
            let naive = check_equivalence(original, transformed, &options);
            let optimized = crate::equiv::check_equivalence(original, transformed, &options);
            assert_eq!(naive.is_equivalent(), optimized.is_equivalent());
        }
    }
}
