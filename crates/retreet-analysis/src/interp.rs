//! A reference interpreter for Retreet programs over concrete [`ValueTree`]s.
//!
//! The interpreter serves three purposes in the reproduction:
//!
//! 1. it defines the concrete semantics the analyses are checked against
//!    (differential equivalence testing of fusions, §5),
//! 2. it records an *execution trace* — the sequence of iterations
//!    `(block, node)` with their field accesses and their series-parallel
//!    position — from which the dynamic dependence/race analysis derives the
//!    happens-before relation, and
//! 3. it is the sequential baseline the `retreet-runtime` crate's fused and
//!    parallel schedules are validated against.
//!
//! Parallel compositions are executed in syntactic order; the recorded
//! series-parallel positions (not the execution order) determine which
//! iterations are concurrent, exactly like a dynamic race detector running on
//! a canonical schedule.

use std::fmt;
use std::sync::Arc;

use retreet_lang::ast::{AExpr, Assign, BExpr, ChildAxis, NodeRef, Program, Stmt};
use retreet_lang::blocks::{BlockId, BlockTable};

use crate::vtree::{NodeId, ValueTree};

/// One step of a series-parallel schedule position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedStep {
    /// The `i`-th element of a sequential composition.
    Seq(usize),
    /// The `i`-th branch of a parallel composition.
    Par(usize),
}

/// How two iterations are related by the program structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOrder {
    /// The first iteration happens before the second in every execution.
    Before,
    /// The first iteration happens after the second in every execution.
    After,
    /// The iterations belong to different branches of a parallel composition
    /// and may execute in either order.
    Parallel,
    /// The two indices denote the same iteration.
    Same,
}

/// A single field access performed by an iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldAccess {
    /// The accessed node.
    pub node: NodeId,
    /// The accessed field.
    pub field: String,
    /// True for writes.
    pub is_write: bool,
}

/// One executed iteration: a block run on a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iteration {
    /// The executed block.
    pub block: BlockId,
    /// The node the block ran on (`None` when the enclosing activation was
    /// called on `nil`).
    pub node: Option<NodeId>,
    /// Series-parallel position of the iteration: a `(start, len)` range
    /// into the owning [`Trace`]'s shared position buffer.  Storing a range
    /// instead of an owned vector removes one heap allocation per executed
    /// iteration; read it back through [`Trace::path`].
    path: (u32, u32),
    /// The field accesses the iteration performed (including reads done by
    /// the branch conditions guarding it).
    pub accesses: Vec<FieldAccess>,
}

/// The trace of a whole program run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The iterations, in execution order of the canonical schedule.
    pub iterations: Vec<Iteration>,
    /// Flat buffer of every iteration's series-parallel position (see
    /// [`Iteration::path`]).
    positions: Vec<SchedStep>,
}

impl Trace {
    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// The series-parallel position of iteration `i`.
    pub fn path(&self, i: usize) -> &[SchedStep] {
        let (start, len) = self.iterations[i].path;
        &self.positions[start as usize..start as usize + len as usize]
    }

    /// Appends an iteration, copying its position into the shared buffer.
    fn push_iteration(
        &mut self,
        block: BlockId,
        node: Option<NodeId>,
        path: &[SchedStep],
        accesses: Vec<FieldAccess>,
    ) {
        let start = u32::try_from(self.positions.len()).expect("trace position overflow");
        let len = u32::try_from(path.len()).expect("trace position overflow");
        self.positions.extend_from_slice(path);
        self.iterations.push(Iteration {
            block,
            node,
            path: (start, len),
            accesses,
        });
    }

    /// The structural order between two iterations (by index).
    pub fn order(&self, a: usize, b: usize) -> ExecOrder {
        if a == b {
            return ExecOrder::Same;
        }
        order_of_paths(self.path(a), self.path(b))
    }

    /// All pairs `(i, j)` of parallel iterations with conflicting accesses
    /// (same node and field, at least one write).
    pub fn racy_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.iterations.len() {
            for j in (i + 1)..self.iterations.len() {
                if self.order(i, j) != ExecOrder::Parallel {
                    continue;
                }
                if conflicting(&self.iterations[i], &self.iterations[j]) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// True when the two iterations access a common (node, field) with at least
/// one write.
pub fn conflicting(a: &Iteration, b: &Iteration) -> bool {
    for x in &a.accesses {
        for y in &b.accesses {
            if x.node == y.node && x.field == y.field && (x.is_write || y.is_write) {
                return true;
            }
        }
    }
    false
}

fn order_of_paths(a: &[SchedStep], b: &[SchedStep]) -> ExecOrder {
    for (sa, sb) in a.iter().zip(b.iter()) {
        if sa == sb {
            continue;
        }
        return match (sa, sb) {
            (SchedStep::Seq(i), SchedStep::Seq(j)) => {
                if i < j {
                    ExecOrder::Before
                } else {
                    ExecOrder::After
                }
            }
            (SchedStep::Par(_), SchedStep::Par(_)) => ExecOrder::Parallel,
            // Positions that agree up to here live in the same container, so
            // the step kinds cannot differ.
            _ => unreachable!("mismatched schedule containers"),
        };
    }
    // One path is a prefix of the other; the shorter one is the enclosing
    // position and is considered to happen first.
    if a.len() <= b.len() {
        ExecOrder::Before
    } else {
        ExecOrder::After
    }
}

/// The result of running a program.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The values returned by `Main`.
    pub returns: Vec<i64>,
    /// The execution trace.
    pub trace: Trace,
    /// The tree after the run (field writes applied).
    pub tree: ValueTree,
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The program has no `Main`.
    NoMain,
    /// A call referenced an unknown function.
    UnknownFunction(String),
    /// A field of a nil node was read or written.
    NilDereference {
        /// The block performing the access.
        block: BlockId,
    },
    /// The dynamic call depth exceeded the safety cap (the no-self-call
    /// restriction should make this impossible for validated programs).
    DepthExceeded,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::NoMain => write!(f, "the program has no Main function"),
            InterpError::UnknownFunction(name) => write!(f, "call to unknown function `{name}`"),
            InterpError::NilDereference { block } => {
                write!(f, "nil dereference while executing block {block}")
            }
            InterpError::DepthExceeded => write!(f, "call depth exceeded the interpreter cap"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Runs `program` on a copy of `tree`, returning the trace, the final tree
/// and `Main`'s return values.
pub fn run(program: &Program, tree: &ValueTree) -> Result<RunResult, InterpError> {
    let table = BlockTable::build(program);
    run_with_table(&table, tree)
}

/// Like [`run`], but reuses an existing [`BlockTable`] (avoids rebuilding it
/// when the same program is run on many trees).
pub fn run_with_table(table: &BlockTable, tree: &ValueTree) -> Result<RunResult, InterpError> {
    Runner::new(table)?.run(tree)
}

/// Shared implementation behind [`run_with_table`] and the frozen naive
/// baseline in [`crate::naive`].  `deep_clone_bodies` reproduces the
/// pre-optimization work profile (a full AST clone per activation, bodies
/// re-annotated per run) for honest before/after benchmarking.
pub(crate) fn run_with_table_impl(
    table: &BlockTable,
    tree: &ValueTree,
    deep_clone_bodies: bool,
) -> Result<RunResult, InterpError> {
    let mut runner = Runner::new(table)?;
    runner.deep_clone_bodies = deep_clone_bodies;
    runner.run(tree)
}

/// A reusable interpreter for one program: the per-program setup (annotating
/// every function body with its block ids) happens once in [`Runner::new`],
/// and each [`Runner::run`] only pays for the actual execution on its tree.
///
/// The differential engines run the same program on hundreds of trees, so
/// hoisting the annotation out of the per-tree loop matters.
pub struct Runner<'a> {
    table: &'a BlockTable,
    bodies: Vec<Arc<AStmt>>,
    /// Callee function index per call block (indexed by raw block id), so
    /// the interpreter never resolves callee names by string comparison on
    /// the hot path.  `None` marks a call to an unknown function.
    callee_of: Vec<Option<usize>>,
    main_idx: usize,
    deep_clone_bodies: bool,
}

impl<'a> Runner<'a> {
    /// Prepares an interpreter for `table`'s program.
    pub fn new(table: &'a BlockTable) -> Result<Self, InterpError> {
        let program = table.program();
        let main_idx = program
            .func_index(retreet_lang::ast::MAIN)
            .ok_or(InterpError::NoMain)?;
        let bodies: Vec<Arc<AStmt>> = program
            .funcs
            .iter()
            .enumerate()
            .map(|(idx, func)| {
                let mut ids = table.blocks_of_func(idx).iter().copied();
                Arc::new(annotate(&func.body, &mut ids))
            })
            .collect();
        let mut callee_of = vec![None; table.len()];
        for idx in 0..program.funcs.len() {
            for &block in table.blocks_of_func(idx) {
                if let Some(call) = table.info(block).block.as_call() {
                    callee_of[block.0 as usize] = program.func_index(&call.callee);
                }
            }
        }
        Ok(Runner {
            table,
            bodies,
            callee_of,
            main_idx,
            deep_clone_bodies: false,
        })
    }

    /// Runs the program on a copy of `tree`.
    pub fn run(&self, tree: &ValueTree) -> Result<RunResult, InterpError> {
        let mut state = Interp {
            table: self.table,
            bodies: &self.bodies,
            callee_of: &self.callee_of,
            deep_clone_bodies: self.deep_clone_bodies,
            tree: tree.clone(),
            trace: Trace::default(),
            depth: 0,
            env_pool: Vec::new(),
            vals_pool: Vec::new(),
        };
        let root = Some(state.tree.root());
        let returns = state.call(self.main_idx, root, Vec::new(), &mut vec![], &[])?;
        Ok(RunResult {
            returns,
            trace: state.trace,
            tree: state.tree,
        })
    }
}

struct Interp<'a> {
    table: &'a BlockTable,
    /// Function bodies with every block leaf annotated by its [`BlockId`]
    /// (same syntactic order as [`BlockTable::blocks_of_func`]), so the trace
    /// attributes iterations to the correct block even when two blocks of a
    /// function have identical payloads (e.g. two `return 0;` branches).
    /// `Arc`-shared so each activation borrows the body instead of cloning
    /// the whole annotated AST.
    bodies: &'a [Arc<AStmt>],
    /// Precomputed callee function index per call block (see [`Runner`]).
    callee_of: &'a [Option<usize>],
    /// Reproduce the pre-optimization clone-per-activation behaviour (naive
    /// baseline only).
    deep_clone_bodies: bool,
    tree: ValueTree,
    trace: Trace,
    depth: usize,
    /// Recycled activation environments: an activation returns its (cleared)
    /// binding vector here instead of freeing it, so steady-state execution
    /// allocates no per-activation storage.
    env_pool: Vec<Vec<(&'a str, i64)>>,
    /// Recycled `i64` buffers (call arguments and return values).
    vals_pool: Vec<Vec<i64>>,
}

/// A function body with block leaves resolved to their table ids.
#[derive(Debug, Clone)]
enum AStmt {
    Block(BlockId),
    If(BExpr, Box<AStmt>, Box<AStmt>),
    Seq(Vec<AStmt>),
    Par(Vec<AStmt>),
}

/// Pairs the block leaves of `stmt` (visited in the same order the
/// [`BlockTable`] numbered them) with the ids drawn from `ids`.
fn annotate(stmt: &Stmt, ids: &mut impl Iterator<Item = BlockId>) -> AStmt {
    match stmt {
        Stmt::Block(_) => AStmt::Block(ids.next().expect("block table covers every block")),
        Stmt::If(cond, then_branch, else_branch) => AStmt::If(
            cond.clone(),
            Box::new(annotate(then_branch, ids)),
            Box::new(annotate(else_branch, ids)),
        ),
        Stmt::Seq(items) => AStmt::Seq(items.iter().map(|s| annotate(s, ids)).collect()),
        Stmt::Par(items) => AStmt::Par(items.iter().map(|s| annotate(s, ids)).collect()),
    }
}

/// Per-activation state: the node and the integer environment.
///
/// The environment is a tiny association list over variable names borrowed
/// from the program AST — Retreet activations hold a handful of locals, so
/// a linear scan beats hashing and the borrowed keys avoid a `String`
/// allocation per binding.
struct Activation<'a> {
    node: Option<NodeId>,
    env: Vec<(&'a str, i64)>,
}

impl<'a> Activation<'a> {
    /// Both accessors resolve the *last* matching binding, which reproduces
    /// `HashMap::insert` semantics exactly even for degenerate programs with
    /// duplicate parameter names (the last duplicate wins, and a later `set`
    /// is visible to every subsequent `get`).
    fn get(&self, var: &str) -> Option<i64> {
        self.env
            .iter()
            .rev()
            .find_map(|&(name, value)| (name == var).then_some(value))
    }

    fn set(&mut self, var: &'a str, value: i64) {
        match self.env.iter_mut().rev().find(|(name, _)| *name == var) {
            Some(slot) => slot.1 = value,
            None => self.env.push((var, value)),
        }
    }
}

const MAX_DEPTH: usize = 10_000;

impl<'a> Interp<'a> {
    fn call(
        &mut self,
        func_idx: usize,
        node: Option<NodeId>,
        args: Vec<i64>,
        path: &mut Vec<SchedStep>,
        guards: &[FieldAccess],
    ) -> Result<Vec<i64>, InterpError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(InterpError::DepthExceeded);
        }
        let table: &'a BlockTable = self.table;
        let func = &table.program().funcs[func_idx];
        let mut env = self.env_pool.pop().unwrap_or_default();
        for (param, value) in func.int_params.iter().zip(args.iter()) {
            env.push((param.as_str(), *value));
        }
        self.recycle_vals(args);
        let mut activation = Activation { node, env };
        let body = if self.deep_clone_bodies {
            Arc::new((*self.bodies[func_idx]).clone())
        } else {
            Arc::clone(&self.bodies[func_idx])
        };
        let result = self.exec_stmt(&body, &mut activation, path, guards)?;
        self.depth -= 1;
        activation.env.clear();
        self.env_pool.push(activation.env);
        Ok(result.unwrap_or_default())
    }

    /// Returns an `i64` buffer to the pool for reuse.
    fn recycle_vals(&mut self, mut vals: Vec<i64>) {
        if vals.capacity() > 0 {
            vals.clear();
            self.vals_pool.push(vals);
        }
    }

    fn exec_stmt(
        &mut self,
        stmt: &AStmt,
        activation: &mut Activation<'a>,
        path: &mut Vec<SchedStep>,
        guards: &[FieldAccess],
    ) -> Result<Option<Vec<i64>>, InterpError> {
        match stmt {
            AStmt::Block(id) => {
                let id = *id;
                if self.table.info(id).is_call() {
                    self.exec_call(id, activation, path, guards).map(|()| None)
                } else {
                    self.exec_straight(id, activation, path, guards)
                }
            }
            AStmt::If(cond, then_branch, else_branch) => {
                let mut cond_accesses = Vec::new();
                let value = self.eval_cond(cond, activation, &mut cond_accesses)?;
                let mut inherited: Vec<FieldAccess> = guards.to_vec();
                inherited.extend(cond_accesses);
                if value {
                    self.exec_stmt(then_branch, activation, path, &inherited)
                } else {
                    self.exec_stmt(else_branch, activation, path, &inherited)
                }
            }
            AStmt::Seq(items) => {
                for (i, item) in items.iter().enumerate() {
                    path.push(SchedStep::Seq(i));
                    let result = self.exec_stmt(item, activation, path, guards)?;
                    path.pop();
                    if result.is_some() {
                        return Ok(result);
                    }
                }
                Ok(None)
            }
            AStmt::Par(items) => {
                let mut returned = None;
                for (i, item) in items.iter().enumerate() {
                    path.push(SchedStep::Par(i));
                    let result = self.exec_stmt(item, activation, path, guards)?;
                    path.pop();
                    if result.is_some() {
                        returned = result;
                    }
                }
                Ok(returned)
            }
        }
    }

    fn exec_call(
        &mut self,
        id: BlockId,
        activation: &mut Activation<'a>,
        path: &mut Vec<SchedStep>,
        guards: &[FieldAccess],
    ) -> Result<(), InterpError> {
        // `self.table` is a shared reference independent of `self`'s borrow,
        // so block info can be read without cloning it.
        let table: &'a BlockTable = self.table;
        let call = table.info(id).block.as_call().expect("call block");
        let mut accesses: Vec<FieldAccess> = guards.to_vec();
        let mut args = self.vals_pool.pop().unwrap_or_default();
        for arg in &call.args {
            args.push(self.eval_expr(arg, activation, id, &mut accesses)?);
        }
        // Record the call iteration itself (argument evaluation reads).
        path.push(SchedStep::Seq(0));
        self.trace
            .push_iteration(id, activation.node, path, accesses);
        path.pop();

        let target_node = match call.target {
            NodeRef::Cur => activation.node,
            NodeRef::Child(dir) => activation.node.and_then(|n| self.child(n, dir)),
        };
        let callee_idx = self.callee_of[id.0 as usize]
            .ok_or_else(|| InterpError::UnknownFunction(call.callee.clone()))?;
        path.push(SchedStep::Seq(1));
        let results = self.call(callee_idx, target_node, args, path, &[])?;
        path.pop();
        for (var, value) in call.results.iter().zip(results.iter()) {
            activation.set(var, *value);
        }
        self.recycle_vals(results);
        Ok(())
    }

    fn exec_straight(
        &mut self,
        id: BlockId,
        activation: &mut Activation<'a>,
        path: &[SchedStep],
        guards: &[FieldAccess],
    ) -> Result<Option<Vec<i64>>, InterpError> {
        let table: &'a BlockTable = self.table;
        let straight = table.info(id).block.as_straight().expect("straight block");
        let mut accesses: Vec<FieldAccess> = guards.to_vec();
        let mut result = None;
        for assign in &straight.assigns {
            match assign {
                Assign::SetVar(var, expr) => {
                    let value = self.eval_expr(expr, activation, id, &mut accesses)?;
                    activation.set(var, value);
                }
                Assign::SetField(node_ref, field, expr) => {
                    let value = self.eval_expr(expr, activation, id, &mut accesses)?;
                    let node = self
                        .resolve(node_ref, activation)
                        .ok_or(InterpError::NilDereference { block: id })?;
                    self.tree.set_field(node, field, value);
                    accesses.push(FieldAccess {
                        node,
                        field: field.clone(),
                        is_write: true,
                    });
                }
            }
        }
        if let Some(ret) = &straight.ret {
            let mut values = self.vals_pool.pop().unwrap_or_default();
            for expr in ret {
                values.push(self.eval_expr(expr, activation, id, &mut accesses)?);
            }
            result = Some(values);
        }
        self.trace
            .push_iteration(id, activation.node, path, accesses);
        Ok(result)
    }

    fn child(&self, node: NodeId, axis: ChildAxis) -> Option<NodeId> {
        self.tree.child(node, axis.index())
    }

    fn resolve(&self, node_ref: &NodeRef, activation: &Activation) -> Option<NodeId> {
        match node_ref {
            NodeRef::Cur => activation.node,
            NodeRef::Child(axis) => activation.node.and_then(|n| self.child(n, *axis)),
        }
    }

    fn eval_expr(
        &self,
        expr: &AExpr,
        activation: &Activation,
        block: BlockId,
        accesses: &mut Vec<FieldAccess>,
    ) -> Result<i64, InterpError> {
        match expr {
            AExpr::Const(c) => Ok(*c),
            // Reading an unassigned variable yields 0; this is what makes the
            // invalid fusion of Fig. 6b produce observably wrong results
            // rather than crashing.
            AExpr::Var(v) => Ok(activation.get(v).unwrap_or(0)),
            AExpr::Field(node_ref, field) => {
                let node = self
                    .resolve(node_ref, activation)
                    .ok_or(InterpError::NilDereference { block })?;
                accesses.push(FieldAccess {
                    node,
                    field: field.clone(),
                    is_write: false,
                });
                Ok(self.tree.field(node, field))
            }
            AExpr::Add(a, b) => Ok(self
                .eval_expr(a, activation, block, accesses)?
                .wrapping_add(self.eval_expr(b, activation, block, accesses)?)),
            AExpr::Sub(a, b) => Ok(self
                .eval_expr(a, activation, block, accesses)?
                .wrapping_sub(self.eval_expr(b, activation, block, accesses)?)),
        }
    }

    fn eval_cond(
        &self,
        cond: &BExpr,
        activation: &Activation,
        accesses: &mut Vec<FieldAccess>,
    ) -> Result<bool, InterpError> {
        match cond {
            BExpr::True => Ok(true),
            BExpr::IsNil(node_ref) => Ok(self.resolve(node_ref, activation).is_none()),
            BExpr::Gt(expr) => {
                // Guard reads are attributed to the guarded blocks via the
                // `guards` mechanism; use a sentinel block id for error
                // reporting only.
                let value = self.eval_expr(expr, activation, BlockId(u32::MAX), accesses)?;
                Ok(value > 0)
            }
            BExpr::Not(inner) => Ok(!self.eval_cond(inner, activation, accesses)?),
            BExpr::And(a, b) => Ok(self.eval_cond(a, activation, accesses)?
                && self.eval_cond(b, activation, accesses)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_lang::parse_program;

    fn complete(height: usize) -> ValueTree {
        ValueTree::complete(height, &["v"], |i, _| i as i64 % 5 + 1)
    }

    #[test]
    fn size_counting_returns_layer_counts() {
        // On a complete tree of height 3 (7 nodes): odd layers (1 and 3) have
        // 1 + 4 = 5 nodes, even layer (2) has 2 nodes.
        let program = corpus::size_counting_parallel();
        let result = run(&program, &complete(3)).unwrap();
        assert_eq!(result.returns, vec![5, 2]);
    }

    #[test]
    fn fused_size_counting_computes_the_same_answers() {
        let original = corpus::size_counting_sequential();
        let fused = corpus::size_counting_fused();
        for height in 1..=4 {
            let tree = complete(height);
            let a = run(&original, &tree).unwrap();
            let b = run(&fused, &tree).unwrap();
            assert_eq!(a.returns, b.returns, "height {height}");
        }
    }

    #[test]
    fn invalid_fusion_computes_wrong_answers() {
        let original = corpus::size_counting_sequential();
        let broken = corpus::size_counting_fused_invalid();
        let tree = complete(3);
        let a = run(&original, &tree).unwrap();
        let b = run(&broken, &tree).unwrap();
        assert_ne!(a.returns, b.returns);
    }

    #[test]
    fn traces_record_iterations_and_positions() {
        let program = corpus::size_counting_parallel();
        let tree = ValueTree::single();
        let result = run(&program, &tree).unwrap();
        // Odd(root): visits root + two nil children; Even likewise; plus the
        // call iterations and Main's return.
        assert!(result.trace.len() >= 7);
        // The two traversals are parallel: some pair of iterations from the
        // two branches must be structurally parallel.
        let parallel_pairs = (0..result.trace.len())
            .flat_map(|i| (0..result.trace.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| i < j && result.trace.order(i, j) == ExecOrder::Parallel)
            .count();
        assert!(parallel_pairs > 0);
        // But they do not conflict (no field accesses at all).
        assert!(result.trace.racy_pairs().is_empty());
    }

    #[test]
    fn overlapping_parallel_traversals_race() {
        let program = corpus::overlapping_parallel();
        let tree = complete(2);
        let result = run(&program, &tree).unwrap();
        assert!(!result.trace.racy_pairs().is_empty());
    }

    #[test]
    fn disjoint_parallel_traversals_do_not_race() {
        let program = corpus::disjoint_parallel();
        let tree = complete(3);
        let result = run(&program, &tree).unwrap();
        assert!(result.trace.racy_pairs().is_empty());
    }

    #[test]
    fn field_writes_are_visible_in_the_final_tree() {
        let program = corpus::css_minify_original();
        let mut tree = complete(2);
        for node in tree.nodes().collect::<Vec<_>>() {
            tree.set_field(node, "kind", 1);
            tree.set_field(node, "value", 10);
            tree.set_field(node, "prop", 0);
            tree.set_field(node, "initial", 0);
        }
        let result = run(&program, &tree).unwrap();
        for node in result.tree.nodes().collect::<Vec<_>>() {
            // ConvertValues decrements value from 10 to 9.
            assert_eq!(result.tree.field(node, "value"), 9);
        }
    }

    #[test]
    fn sequential_iterations_are_ordered() {
        let program = corpus::size_counting_sequential();
        let tree = ValueTree::single();
        let result = run(&program, &tree).unwrap();
        // The Odd-call iteration comes before the Even-call iteration in Main.
        let table = BlockTable::build(&program);
        // The calls launched from Main are the last call blocks to each
        // traversal (s8 and s9 in the paper's numbering).
        let odd_call = *table.calls_to("Odd").last().unwrap();
        let even_call = *table.calls_to("Even").last().unwrap();
        let i = result
            .trace
            .iterations
            .iter()
            .position(|it| it.block == odd_call)
            .unwrap();
        let j = result
            .trace
            .iterations
            .iter()
            .position(|it| it.block == even_call)
            .unwrap();
        assert_eq!(result.trace.order(i, j), ExecOrder::Before);
        assert_eq!(result.trace.order(j, i), ExecOrder::After);
        assert_eq!(result.trace.order(i, i), ExecOrder::Same);
    }

    #[test]
    fn guard_reads_are_attributed_to_guarded_blocks() {
        let src = r#"
            fn F(n) {
                if (n.flag > 0) {
                    n.out = 1;
                }
                return 0;
            }
            fn Main(n) {
                x = F(n);
                return x;
            }
        "#;
        let program = parse_program(src).unwrap();
        let mut tree = ValueTree::single();
        tree.set_field(tree.root(), "flag", 1);
        let result = run(&program, &tree).unwrap();
        let guarded = result
            .trace
            .iterations
            .iter()
            .find(|it| it.accesses.iter().any(|a| a.field == "out"))
            .expect("guarded block executed");
        assert!(guarded
            .accesses
            .iter()
            .any(|a| a.field == "flag" && !a.is_write));
    }

    #[test]
    fn nil_dereference_is_reported() {
        let src = r#"
            fn Main(n) {
                x = n.l.v;
                return x;
            }
        "#;
        let program = parse_program(src).unwrap();
        let tree = ValueTree::single();
        assert!(matches!(
            run(&program, &tree),
            Err(InterpError::NilDereference { .. })
        ));
    }
}
