//! Shared access-summary extraction and the structural (automata-based)
//! data-race analysis.
//!
//! The bounded engines decide `DataRace⟦P⟧` by enumerating trees; this
//! module decides it *structurally*, over every tree at once.  The key
//! observation (§2.1 of the paper) is that all location expressions point
//! downward — a block at invocation node `v` touches `v` or a direct child,
//! and a call launched at `v`'s child stays inside that child's subtree.  A
//! block's possible accesses therefore form a *region* relative to `v`
//! ([`retreet_mso::encode::Region`]), and any dynamically parallel pair of
//! iterations descends from a statically [`Relation::Parallel`] block pair
//! at a common invocation node.  Checking every parallel pair's guarded
//! regions for overlap — an NFTA emptiness question — yields an unbounded
//! `RaceFree` verdict when all of them are disjoint.
//!
//! Arithmetic guards over execution-invariant values (never-written fields)
//! are additionally bridged to [`retreet_logic::bridge::ConjunctionBuilder`]
//! so contradictory guard pairs discharge candidates the structural check
//! alone cannot.

use std::collections::{BTreeMap, BTreeSet};

use retreet_lang::ast::{AExpr, BExpr, Ident, NodeRef, Program};
use retreet_lang::blocks::{BlockId, BlockTable, PathElem, Relation};
use retreet_lang::rw::rw_sets_of_block;
use retreet_logic::bridge::ConjunctionBuilder;
use retreet_logic::LinExpr;
use retreet_mso::encode::{
    check_overlap_k, ChildStep, ConflictSide, OverlapVerdict, Region, StructConstraint,
};
use retreet_mso::tree::LabeledTree;

/// Maps a surface-language node reference to its encoding step.
pub fn step_of(node: NodeRef) -> ChildStep {
    match node {
        NodeRef::Cur => ChildStep::Here,
        NodeRef::Child(axis) => ChildStep::Child(axis.0),
    }
}

/// Per-function transitive field read/write summary: every field the
/// function or anything it (transitively) calls may touch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldSummary {
    /// Field names possibly read.
    pub reads: BTreeSet<Ident>,
    /// Field names possibly written.
    pub writes: BTreeSet<Ident>,
}

impl FieldSummary {
    /// Fields read or written.
    pub fn touched(&self) -> BTreeSet<Ident> {
        self.reads.union(&self.writes).cloned().collect()
    }
}

/// Computes the transitive field summaries of every function, indexed by
/// function position, as a call-graph fixpoint over the block-level
/// read/write sets.
pub fn transitive_field_summaries(table: &BlockTable) -> Vec<FieldSummary> {
    let program = table.program();
    let mut summaries = vec![FieldSummary::default(); program.funcs.len()];
    // Direct accesses first.
    for info in table.blocks() {
        let sets = rw_sets_of_block(table, info.id);
        let summary = &mut summaries[info.func];
        for (_, field) in sets.field_reads() {
            summary.reads.insert(field.clone());
        }
        for (_, field) in sets.field_writes() {
            summary.writes.insert(field.clone());
        }
    }
    // Then propagate along call edges until stable.
    loop {
        let mut changed = false;
        for info in table.calls() {
            let call = info.block.as_call().expect("calls() yields call blocks");
            let Some(callee) = program.func_index(&call.callee) else {
                continue;
            };
            let callee_summary = summaries[callee].clone();
            let summary = &mut summaries[info.func];
            for field in callee_summary.reads {
                changed |= summary.reads.insert(field);
            }
            for field in callee_summary.writes {
                changed |= summary.writes.insert(field);
            }
        }
        if !changed {
            return summaries;
        }
    }
}

/// Function indices reachable from `Main` through the call graph; every
/// function when the program has no `Main` (conservative).
pub fn reachable_from_main(table: &BlockTable) -> BTreeSet<usize> {
    let program = table.program();
    let Some(main) = program.func_index(retreet_lang::ast::MAIN) else {
        return (0..program.funcs.len()).collect();
    };
    let mut reachable = BTreeSet::from([main]);
    let mut frontier = vec![main];
    while let Some(func) = frontier.pop() {
        for &id in table.blocks_of_func(func) {
            let Some(call) = table.info(id).block.as_call() else {
                continue;
            };
            if let Some(callee) = program.func_index(&call.callee) {
                if reachable.insert(callee) {
                    frontier.push(callee);
                }
            }
        }
    }
    reachable
}

/// A single potential field access of a block, as a guarded region.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessSite {
    /// Where the access lands relative to the invocation node.
    pub region: Region,
    /// The field touched.
    pub field: Ident,
    /// True for a write.
    pub write: bool,
}

/// The guarded field-access sites of a block: its direct accesses (at fixed
/// offsets) plus, for call blocks, the callee's transitive summary over the
/// target subtree.
pub fn access_sites(
    table: &BlockTable,
    id: BlockId,
    summaries: &[FieldSummary],
) -> Vec<AccessSite> {
    let mut sites = Vec::new();
    let sets = rw_sets_of_block(table, id);
    for (node, field) in sets.field_reads() {
        sites.push(AccessSite {
            region: Region::At(step_of(*node)),
            field: field.clone(),
            write: false,
        });
    }
    for (node, field) in sets.field_writes() {
        sites.push(AccessSite {
            region: Region::At(step_of(*node)),
            field: field.clone(),
            write: true,
        });
    }
    if let Some(call) = table.info(id).block.as_call() {
        if let Some(callee) = table.program().func_index(&call.callee) {
            let region = Region::Subtree(step_of(call.target));
            for field in &summaries[callee].reads {
                sites.push(AccessSite {
                    region,
                    field: field.clone(),
                    write: false,
                });
            }
            for field in &summaries[callee].writes {
                sites.push(AccessSite {
                    region,
                    field: field.clone(),
                    write: true,
                });
            }
        }
    }
    sites.sort();
    sites.dedup();
    sites
}

/// A guard literal extracted from a path condition: only *necessary*
/// conditions are collected, so conjoining them over-approximates the set
/// of executions that reach the block (sound for disjointness proofs).
#[derive(Debug, Clone, PartialEq, Eq)]
enum GuardLit {
    /// `node == nil` holds with the given polarity.
    Nil(NodeRef, bool),
    /// `expr > 0` holds with the given polarity.
    Gt(AExpr, bool),
}

fn collect_literals(cond: &BExpr, polarity: bool, out: &mut Vec<GuardLit>) {
    match cond {
        BExpr::True => {}
        BExpr::IsNil(node) => out.push(GuardLit::Nil(*node, polarity)),
        BExpr::Gt(expr) => out.push(GuardLit::Gt(expr.clone(), polarity)),
        BExpr::Not(inner) => collect_literals(inner, !polarity, out),
        BExpr::And(a, b) => {
            // A conjunction is only *necessarily* true when both conjuncts
            // are; a false conjunction pins down neither conjunct.
            if polarity {
                collect_literals(a, true, out);
                collect_literals(b, true, out);
            }
        }
    }
}

/// The structural guard facts of one resolved path: the constraint on the
/// invocation node, the invariant arithmetic literals, and whether the path
/// requires the invocation node itself to be nil (in which case the block
/// performs no field access on any actual tree node).
#[derive(Debug, Clone, Default)]
pub struct PathGuard {
    /// Child-existence constraints on the invocation node.
    pub constraint: StructConstraint,
    /// True when the path assumes the invocation node is nil.
    pub at_nil: bool,
    /// `Gt` literals along the path, with polarity.
    gt_literals: Vec<(AExpr, bool)>,
}

/// Extracts the [`PathGuard`] of a resolved block path.
pub fn path_guard(elems: &[PathElem]) -> PathGuard {
    let mut literals = Vec::new();
    for elem in elems {
        if let PathElem::Assume(cond, polarity) = elem {
            collect_literals(cond, *polarity, &mut literals);
        }
    }
    let mut guard = PathGuard::default();
    for literal in literals {
        match literal {
            GuardLit::Nil(NodeRef::Cur, true) => guard.at_nil = true,
            GuardLit::Nil(NodeRef::Cur, false) => {}
            GuardLit::Nil(NodeRef::Child(axis), positive) => {
                if positive {
                    guard.constraint.require_no(axis.0);
                } else {
                    guard.constraint.require_has(axis.0);
                }
            }
            GuardLit::Gt(expr, positive) => guard.gt_literals.push((expr, positive)),
        }
    }
    guard
}

/// Lowers an arithmetic guard expression over execution-invariant values to
/// a linear expression; `None` when the expression mentions a variable or a
/// field that some reachable function may write (its value then depends on
/// execution order and the literal must not be used for pruning).
fn invariant_lin_expr(
    expr: &AExpr,
    written_fields: &BTreeSet<Ident>,
    builder: &mut ConjunctionBuilder,
) -> Option<LinExpr> {
    match expr {
        AExpr::Const(value) => Some(LinExpr::constant(*value)),
        AExpr::Var(_) => None,
        AExpr::Field(node, field) => {
            if written_fields.contains(field) {
                return None;
            }
            Some(builder.var(&format!("field:{node}:{field}")))
        }
        AExpr::Add(a, b) | AExpr::Sub(a, b) => {
            let mut lhs = invariant_lin_expr(a, written_fields, builder)?;
            let rhs = invariant_lin_expr(b, written_fields, builder)?;
            let factor = if matches!(expr, AExpr::Add(_, _)) {
                1
            } else {
                -1
            };
            for (sym, coeff) in rhs.terms() {
                lhs.add_term(sym, coeff * factor);
            }
            lhs.add_constant(rhs.constant_term() * factor);
            Some(lhs)
        }
    }
}

/// True when the two paths' invariant arithmetic guards can hold together
/// for *some* integer valuation.  Literals over mutable state are skipped
/// (over-approximation), so `false` soundly proves the paths incompatible.
fn guards_feasible(a: &PathGuard, b: &PathGuard, written_fields: &BTreeSet<Ident>) -> bool {
    let mut builder = ConjunctionBuilder::new();
    for (expr, positive) in a.gt_literals.iter().chain(b.gt_literals.iter()) {
        if let Some(lin) = invariant_lin_expr(expr, written_fields, &mut builder) {
            builder.require_gt_zero(lin, *positive);
        }
    }
    builder.feasible()
}

/// Outcome of the structural race analysis.
#[derive(Debug, Clone)]
pub enum StructuralRaceAnalysis {
    /// Every parallel block pair's guarded access regions are disjoint on
    /// every tree: the program is race-free, unboundedly.
    RaceFree {
        /// Number of parallel block pairs examined.
        pairs_examined: usize,
    },
    /// Some pair's regions may overlap; the program needs a concrete
    /// (bounded) check to decide whether the overlap is a real race.
    Candidate {
        /// Human-readable description of the first overlapping pair.
        description: String,
        /// A tree shape witnessing the region overlap, when extraction
        /// succeeded (labels are encoding bits, not program data).
        example: Option<LabeledTree>,
    },
}

impl StructuralRaceAnalysis {
    /// True for the race-free outcome.
    pub fn is_race_free(&self) -> bool {
        matches!(self, StructuralRaceAnalysis::RaceFree { .. })
    }
}

/// Decides, over all trees at once, whether any two structurally parallel
/// blocks (of any function reachable from `Main`) can touch a common field
/// of a common node.
///
/// Every dynamically parallel pair of iterations descends from two blocks
/// in distinct arms of some `Par` at a common invocation, so checking the
/// static parallel pairs with subtree-summarized call regions covers all
/// dynamic conflicts; `RaceFree` is therefore sound for every tree and
/// valuation, while `Candidate` only means "could not be discharged
/// structurally".
pub fn structural_race_analysis(program: &Program) -> StructuralRaceAnalysis {
    let table = BlockTable::build(program);
    let summaries = transitive_field_summaries(&table);
    let reachable = reachable_from_main(&table);
    let written_fields: BTreeSet<Ident> = reachable
        .iter()
        .flat_map(|&f| summaries[f].writes.iter().cloned())
        .collect();
    let mut overlap_memo: BTreeMap<(ConflictSide, ConflictSide), OverlapVerdict> = BTreeMap::new();
    let mut pairs_examined = 0usize;

    for &func in &reachable {
        let ids = table.blocks_of_func(func);
        for (pos, &first) in ids.iter().enumerate() {
            for &second in &ids[pos + 1..] {
                if table.relation(first, second) != Relation::Parallel {
                    continue;
                }
                pairs_examined += 1;
                let sites_a = access_sites(&table, first, &summaries);
                let sites_b = access_sites(&table, second, &summaries);
                for path_a in table.paths_to(first) {
                    let guard_a = path_guard(&path_a.elems);
                    if guard_a.at_nil || guard_a.constraint.contradictory() {
                        continue;
                    }
                    for path_b in table.paths_to(second) {
                        let guard_b = path_guard(&path_b.elems);
                        if guard_b.at_nil || guard_b.constraint.contradictory() {
                            continue;
                        }
                        if !guards_feasible(&guard_a, &guard_b, &written_fields) {
                            continue;
                        }
                        for site_a in &sites_a {
                            for site_b in &sites_b {
                                if site_a.field != site_b.field || !(site_a.write || site_b.write) {
                                    continue;
                                }
                                let side_a = ConflictSide {
                                    region: site_a.region,
                                    guard: guard_a.constraint,
                                };
                                let side_b = ConflictSide {
                                    region: site_b.region,
                                    guard: guard_b.constraint,
                                };
                                let verdict =
                                    overlap_memo.entry((side_a, side_b)).or_insert_with(|| {
                                        check_overlap_k(&side_a, &side_b, program.arity)
                                    });
                                if let OverlapVerdict::Overlap(example) = verdict {
                                    let description = format!(
                                        "{} and {} may both touch field `{}` ({:?} vs {:?})",
                                        table.info(first).label,
                                        table.info(second).label,
                                        site_a.field,
                                        site_a.region,
                                        site_b.region,
                                    );
                                    return StructuralRaceAnalysis::Candidate {
                                        description,
                                        example: example.clone(),
                                    };
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    StructuralRaceAnalysis::RaceFree { pairs_examined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_lang::parser::parse_program;

    #[test]
    fn summaries_are_transitive_through_calls() {
        let program = corpus::size_counting_parallel();
        let table = BlockTable::build(&program);
        let summaries = transitive_field_summaries(&table);
        // Odd/Even read nothing and write nothing (pure counters); Main
        // inherits their (empty) summaries.
        for summary in &summaries {
            assert!(summary.writes.is_empty());
        }
    }

    #[test]
    fn paper_parallel_example_is_structurally_race_free() {
        let analysis = structural_race_analysis(&corpus::size_counting_parallel());
        assert!(analysis.is_race_free(), "got {analysis:?}");
    }

    #[test]
    fn disjoint_subtree_sum_is_structurally_race_free() {
        let analysis = structural_race_analysis(&corpus::disjoint_parallel());
        assert!(analysis.is_race_free(), "got {analysis:?}");
    }

    #[test]
    fn overlapping_sum_yields_a_candidate() {
        let analysis = structural_race_analysis(&corpus::overlapping_parallel());
        assert!(!analysis.is_race_free());
    }

    #[test]
    fn sequential_programs_are_trivially_race_free() {
        let analysis = structural_race_analysis(&corpus::size_counting_sequential());
        match analysis {
            StructuralRaceAnalysis::RaceFree { pairs_examined } => {
                assert_eq!(pairs_examined, 0);
            }
            other => panic!("expected RaceFree, got {other:?}"),
        }
    }

    #[test]
    fn incompatible_invariant_guards_discharge_candidates() {
        // Both arms write n.v, but under contradictory guards over the
        // never-written field `cfg`: structurally race-free.
        let program = parse_program(
            r#"
            fn Main(n) {
                {
                    if (n.cfg > 0) {
                        n.v = 1;
                    }
                    ||
                    if (n.cfg <= 0) {
                        n.v = 2;
                    }
                }
                return 0;
            }
        "#,
        )
        .unwrap();
        let analysis = structural_race_analysis(&program);
        assert!(analysis.is_race_free(), "got {analysis:?}");
    }

    #[test]
    fn nil_guard_separation_is_understood() {
        // One arm writes n.v only when the left child exists; the other only
        // when it does not: the guards never hold at the same node.
        let program = parse_program(
            r#"
            fn Main(n) {
                {
                    if (n.l != nil) {
                        n.v = 1;
                    }
                    ||
                    if (n.l == nil) {
                        n.v = 2;
                    }
                }
                return 0;
            }
        "#,
        )
        .unwrap();
        let analysis = structural_race_analysis(&program);
        assert!(analysis.is_race_free(), "got {analysis:?}");
    }

    #[test]
    fn conflicting_parallel_writes_are_candidates() {
        let program = parse_program(
            r#"
            fn Main(n) {
                {
                    n.v = 1;
                    ||
                    n.v = 2;
                }
                return 0;
            }
        "#,
        )
        .unwrap();
        match structural_race_analysis(&program) {
            StructuralRaceAnalysis::Candidate { description, .. } => {
                assert!(description.contains("`v`"), "{description}");
            }
            other => panic!("expected a candidate, got {other:?}"),
        }
    }
}
