//! Data-race detection (the `DataRace⟦P⟧` query of §4).
//!
//! Two engines are provided:
//!
//! * [`check_data_race`] — the configuration engine: enumerate configurations
//!   (the paper's abstraction) over every tree up to a bound, and look for a
//!   pair of *parallel*, *mutually feasible* configurations whose final
//!   iterations have a data dependence.  This mirrors Theorem 2: the program
//!   is reported race-free when no such pair exists on any enumerated tree.
//! * [`check_data_race_dynamic`] — the trace engine: run the interpreter and
//!   look for structurally parallel iterations with conflicting accesses
//!   (a dynamic race detector on the canonical schedule).  It serves as an
//!   independent validation of the configuration engine's verdicts.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

use retreet_lang::ast::Program;
use retreet_lang::blocks::BlockTable;
use retreet_lang::rw::{rw_sets, Access};
use retreet_logic::SolverCache;

use crate::configs::{self, AnalysisContext, ConfigRelation, Configuration, EnumOptions};
use crate::interp;
use crate::par;
use crate::vtree::{test_trees_kary, NodeId, TreeCorpus, ValueTree};

/// Options for the bounded race analysis.
///
/// Construct with [`RaceOptions::builder`] (or take the defaults); prefer
/// the builder over mutating fields in place:
///
/// ```
/// use retreet_analysis::race::RaceOptions;
///
/// let options = RaceOptions::builder().max_nodes(3).valuations(1).build();
/// assert_eq!(options.max_nodes, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceOptions {
    /// Largest tree (in nodes) to enumerate.
    pub max_nodes: usize,
    /// Number of deterministic field valuations per tree shape.
    pub valuations: usize,
    /// Configuration-enumeration limits.
    pub enumeration: EnumOptions,
}

impl Default for RaceOptions {
    fn default() -> Self {
        RaceOptions {
            max_nodes: 4,
            valuations: 2,
            enumeration: EnumOptions::default(),
        }
    }
}

impl RaceOptions {
    /// Starts a builder seeded with the default options.
    pub fn builder() -> RaceOptionsBuilder {
        RaceOptionsBuilder {
            options: RaceOptions::default(),
        }
    }
}

/// Builder for [`RaceOptions`].
#[derive(Debug, Clone, Default)]
pub struct RaceOptionsBuilder {
    options: RaceOptions,
}

impl RaceOptionsBuilder {
    /// Largest tree (in nodes) to enumerate.
    pub fn max_nodes(mut self, max_nodes: usize) -> Self {
        self.options.max_nodes = max_nodes;
        self
    }

    /// Number of deterministic field valuations per tree shape.
    pub fn valuations(mut self, valuations: usize) -> Self {
        self.options.valuations = valuations;
        self
    }

    /// Configuration-enumeration limits.
    pub fn enumeration(mut self, enumeration: EnumOptions) -> Self {
        self.options.enumeration = enumeration;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> RaceOptions {
        self.options
    }
}

/// A concrete witness of a potential data race.
#[derive(Debug, Clone)]
pub struct RaceWitness {
    /// The tree the race occurs on.
    pub tree: ValueTree,
    /// Description of the first conflicting configuration.
    pub first: String,
    /// Description of the second conflicting configuration.
    pub second: String,
    /// The node both iterations access.
    pub node: NodeId,
    /// The field both iterations access (at least one write).
    pub field: String,
}

/// The verdict of a race query.
#[derive(Debug, Clone)]
pub enum RaceVerdict {
    /// No race was found on any enumerated tree.
    RaceFree {
        /// Number of trees analysed.
        trees_checked: usize,
        /// Number of configurations enumerated in total.
        configurations: usize,
    },
    /// A candidate race with its witness.
    Race(RaceWitness),
}

impl RaceVerdict {
    /// True for the race-free verdict.
    pub fn is_race_free(&self) -> bool {
        matches!(self, RaceVerdict::RaceFree { .. })
    }

    /// The witness, when a race was found.
    pub fn witness(&self) -> Option<&RaceWitness> {
        match self {
            RaceVerdict::Race(witness) => Some(witness),
            RaceVerdict::RaceFree { .. } => None,
        }
    }
}

/// Every field name mentioned by the program's read/write sets; these are the
/// fields the test trees initialize.
pub fn program_fields(table: &BlockTable) -> Vec<String> {
    let mut fields: BTreeSet<String> = BTreeSet::new();
    for sets in rw_sets(table) {
        for access in sets.reads.iter().chain(sets.writes.iter()) {
            if let Access::Field(_, name) = access {
                fields.insert(name.clone());
            }
        }
    }
    fields.into_iter().collect()
}

/// The configuration-based data-race check (Theorem 2, bounded).
///
/// The hot path shares the program's [`AnalysisContext`] — tree-independent
/// path summaries, the solver memo cache, and the symbol table that keeps
/// constraint symbols consistent between trees (and between repeated
/// queries on the same program) — and walks both the tree loop and the
/// configuration-pair loop in parallel with deterministic
/// first-witness-wins selection (lowest tree index, then lexicographically
/// lowest pair), so the verdict and witness are identical to the sequential
/// engine's.
pub fn check_data_race(program: &Program, options: &RaceOptions) -> RaceVerdict {
    check_data_race_cancellable(program, options, &par::NEVER_CANCELLED)
        .expect("never-raised cancel flag cannot cancel the analysis")
}

/// [`check_data_race`] with a cooperative cancel flag: returns `None` (and
/// no verdict) as soon as `cancel` is observed raised, checking the flag
/// once per enumerated tree and once per configuration-pair scan chunk.
///
/// The façade's parallel portfolio raises the flag on losing engines once a
/// winner is decided, so a lost run stops within one loop iteration instead
/// of enumerating the remaining trees.
pub fn check_data_race_cancellable(
    program: &Program,
    options: &RaceOptions,
    cancel: &AtomicBool,
) -> Option<RaceVerdict> {
    let ctx = AnalysisContext::for_program(program);
    let table = &*ctx.table;
    let field_refs: Vec<&str> = ctx.fields.iter().map(String::as_str).collect();
    let corpus = TreeCorpus::with_arity(
        program.arity,
        options.max_nodes,
        &field_refs,
        options.valuations,
    );
    let (total_configs, hit) = par::tally_until_hit(corpus.len(), cancel, |i| {
        let tree = corpus.tree(i);
        let configs = configs::enumerate_shared(
            table,
            &ctx.summaries,
            &tree,
            &options.enumeration,
            &ctx.cache,
            &ctx.symtab,
        );
        let witness = find_race(table, &tree, &configs, &ctx.cache, cancel);
        (configs.len(), witness)
    });
    match hit {
        par::Search::Hit(_, witness) => Some(RaceVerdict::Race(witness)),
        par::Search::Cancelled => None,
        // The per-tree pair scan inside the closure observes the flag too,
        // and its cancellation surfaces there as "no witness" — which the
        // tree loop only notices at its *next* iteration.  A raised flag
        // after the final tree therefore means the scan may be partial:
        // never derive a RaceFree verdict from it.
        par::Search::Exhausted if cancel.load(Ordering::Relaxed) => None,
        par::Search::Exhausted => Some(RaceVerdict::RaceFree {
            trees_checked: corpus.len(),
            configurations: total_configs,
        }),
    }
}

/// Searches the configuration-pair space of one tree for a parallel,
/// dependent, mutually feasible pair — the §4 race condition.
///
/// The concrete access footprints are computed once per configuration (the
/// naive engine recomputed them per *pair*), the pair loop fans out over the
/// first index with lexicographically-lowest-pair reduction, and mutual
/// feasibility is decided through the shared solver cache.
fn find_race(
    table: &BlockTable,
    tree: &ValueTree,
    configs: &[Configuration],
    cache: &SolverCache,
    cancel: &AtomicBool,
) -> Option<RaceWitness> {
    let footprints: Vec<Vec<(NodeId, String, bool)>> = configs
        .iter()
        .map(|c| configs::concrete_accesses(table, tree, c))
        .collect();
    let conflict =
        |a: &[(NodeId, String, bool)], b: &[(NodeId, String, bool)]| -> Option<(NodeId, String)> {
            for (node_a, field_a, write_a) in a {
                for (node_b, field_b, write_b) in b {
                    if node_a == node_b && field_a == field_b && (*write_a || *write_b) {
                        return Some((*node_a, field_a.clone()));
                    }
                }
            }
            None
        };
    let hit = par::first_hit(configs.len(), cancel, |i| {
        let a = &configs[i];
        for (j, b) in configs.iter().enumerate().skip(i + 1) {
            if configs::relation(table, a, b) != ConfigRelation::Parallel {
                continue;
            }
            let Some((node, field)) = conflict(&footprints[i], &footprints[j]) else {
                continue;
            };
            if !configs::mutually_feasible_cached(a, b, cache) {
                continue;
            }
            return Some(RaceWitness {
                tree: tree.clone(),
                first: a.describe(table),
                second: b.describe(table),
                node,
                field,
            });
        }
        None
    });
    hit.into_hit().map(|(_, witness)| witness)
}

/// The trace-based data-race check (dynamic validation engine).
pub fn check_data_race_dynamic(program: &Program, options: &RaceOptions) -> RaceVerdict {
    check_data_race_dynamic_cancellable(program, options, &par::NEVER_CANCELLED)
        .expect("never-raised cancel flag cannot cancel the analysis")
}

/// [`check_data_race_dynamic`] with a cooperative cancel flag, checked once
/// per interpreted tree; returns `None` when the flag is observed raised.
pub fn check_data_race_dynamic_cancellable(
    program: &Program,
    options: &RaceOptions,
    cancel: &AtomicBool,
) -> Option<RaceVerdict> {
    let table = BlockTable::build(program);
    let fields = program_fields(&table);
    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
    let trees = test_trees_kary(
        program.arity,
        options.max_nodes,
        &field_refs,
        options.valuations,
    );
    let Ok(runner) = interp::Runner::new(&table) else {
        return Some(RaceVerdict::RaceFree {
            trees_checked: trees.len(),
            configurations: 0,
        });
    };
    let mut total = 0usize;
    for tree in &trees {
        if cancel.load(Ordering::Relaxed) {
            return None;
        }
        let Ok(result) = runner.run(tree) else {
            continue;
        };
        total += result.trace.len();
        if let Some(&(i, j)) = result.trace.racy_pairs().first() {
            let a = &result.trace.iterations[i];
            let b = &result.trace.iterations[j];
            let (node, field) = a
                .accesses
                .iter()
                .find_map(|x| {
                    b.accesses.iter().find_map(|y| {
                        if x.node == y.node && x.field == y.field && (x.is_write || y.is_write) {
                            Some((x.node, x.field.clone()))
                        } else {
                            None
                        }
                    })
                })
                .expect("racy pair has a conflicting access");
            return Some(RaceVerdict::Race(RaceWitness {
                tree: tree.clone(),
                first: format!("{} on {:?}", a.block, a.node),
                second: format!("{} on {:?}", b.block, b.node),
                node,
                field,
            }));
        }
    }
    Some(RaceVerdict::RaceFree {
        trees_checked: trees.len(),
        configurations: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;

    fn small() -> RaceOptions {
        RaceOptions {
            max_nodes: 3,
            valuations: 1,
            enumeration: EnumOptions::default(),
        }
    }

    #[test]
    fn size_counting_parallel_is_race_free() {
        // E1c of the evaluation: Odd(n) ‖ Even(n) has no data race.
        let verdict = check_data_race(&corpus::size_counting_parallel(), &small());
        assert!(verdict.is_race_free(), "verdict: {verdict:?}");
        let dynamic = check_data_race_dynamic(&corpus::size_counting_parallel(), &small());
        assert!(dynamic.is_race_free());
    }

    #[test]
    fn cycletree_parallelization_races() {
        // E4b of the evaluation: RootMode ‖ ComputeRouting races on `num`.
        let verdict = check_data_race(&corpus::cycletree_parallel(), &small());
        let witness = verdict.witness().expect("a race must be found");
        assert_eq!(witness.field, "num");
        let dynamic = check_data_race_dynamic(&corpus::cycletree_parallel(), &small());
        assert!(!dynamic.is_race_free());
    }

    #[test]
    fn disjoint_subtree_parallelism_is_race_free() {
        let verdict = check_data_race(&corpus::disjoint_parallel(), &small());
        assert!(verdict.is_race_free(), "verdict: {verdict:?}");
        let dynamic = check_data_race_dynamic(&corpus::disjoint_parallel(), &small());
        assert!(dynamic.is_race_free());
    }

    #[test]
    fn overlapping_parallel_traversals_race() {
        let verdict = check_data_race(&corpus::overlapping_parallel(), &small());
        assert!(!verdict.is_race_free());
        assert_eq!(verdict.witness().unwrap().field, "total");
    }

    #[test]
    fn sequential_programs_are_trivially_race_free() {
        for program in [
            corpus::size_counting_sequential(),
            corpus::css_minify_original(),
            corpus::cycletree_original(),
            corpus::tree_mutation_original(),
        ] {
            let verdict = check_data_race(&program, &small());
            assert!(verdict.is_race_free());
        }
    }

    #[test]
    fn raised_cancel_flag_aborts_both_race_engines_without_a_verdict() {
        let cancel = AtomicBool::new(true);
        assert!(
            check_data_race_cancellable(&corpus::size_counting_parallel(), &small(), &cancel)
                .is_none()
        );
        assert!(check_data_race_dynamic_cancellable(
            &corpus::size_counting_parallel(),
            &small(),
            &cancel
        )
        .is_none());
        // An unraised flag reproduces the plain entry point exactly.
        let cancel = AtomicBool::new(false);
        let verdict =
            check_data_race_cancellable(&corpus::cycletree_parallel(), &small(), &cancel).unwrap();
        assert_eq!(verdict.witness().unwrap().field, "num");
    }

    #[test]
    fn program_fields_are_collected() {
        let table = BlockTable::build(&corpus::cycletree_original());
        let fields = program_fields(&table);
        assert!(fields.contains(&"num".to_string()));
        assert!(fields.contains(&"min".to_string()));
        assert!(fields.contains(&"lmax".to_string()));
    }
}
