//! Configurations — the stack-based iteration abstraction of §3, enumerated
//! over concrete bounded trees.
//!
//! A configuration (Definition 2 of the paper) is a snapshot of the call
//! stack: a chain of records starting at `Main` on the root, where each
//! record is a call block executed by the previous record's activation, and
//! the final record runs a non-call block.  Consecutive records must be
//! connected by *reachability* under speculative execution (Definition 1):
//! the intra-procedural path to the next block must be feasible when every
//! call on the way is replaced by an unconstrained ghost return value.
//!
//! MONA decides these constraints over all trees at once; the bounded engine
//! here enumerates configurations over a concrete tree, keeping the integer
//! reasoning symbolic (ghost returns and parameters are never enumerated —
//! feasibility is discharged by the `retreet-logic` solver), and keeping the
//! shape reasoning concrete (nil checks are evaluated against the tree).
//! This preserves the paper's over-approximation: every configuration that
//! can occur in a real execution on that tree is enumerated.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use retreet_lang::ast::NodeRef;
use retreet_lang::blocks::{BlockId, BlockTable};
use retreet_lang::rw::{rw_sets_of_block, Access};
use retreet_lang::wp::{self, CondCase, PathCondition, PathSummary, SymbolicEnv};
use retreet_lang::Relation;
use retreet_logic::{Atom, IncrementalSolver, LinExpr, Solver, SolverCache, Sym, SymTab, System};

use crate::vtree::{NodeId, ValueTree};

/// A tree location: a real node or a nil child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A real node of the tree.
    Node(NodeId),
    /// A nil location (a missing child of a real node).
    Nil,
}

impl Loc {
    /// The node, when the location is real.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Loc::Node(n) => Some(*n),
            Loc::Nil => None,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Node(n) => write!(f, "{n}"),
            Loc::Nil => write!(f, "nil"),
        }
    }
}

/// One stack frame of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Index of the function the frame runs.
    pub func: usize,
    /// The node the activation runs on.
    pub node: Loc,
    /// The call block (in the *caller*'s function) that created this frame;
    /// `None` for the `Main` frame.
    pub call_block: Option<BlockId>,
}

/// A configuration: a feasible call stack ending at a non-call block.
#[derive(Debug, Clone)]
pub struct Configuration {
    /// The stack frames, outermost (`Main`) first.
    pub frames: Vec<Frame>,
    /// The final non-call block, which runs on the last frame's node.
    pub target: BlockId,
    /// The accumulated symbolic feasibility constraints (over parameter and
    /// ghost-return symbols).
    pub constraints: System,
}

impl Configuration {
    /// The location the target block runs on.
    pub fn target_loc(&self) -> Loc {
        self.frames.last().map(|f| f.node).unwrap_or(Loc::Nil)
    }

    /// A short human-readable rendering, e.g. `main@n0 / s9@n0 / s5@n1 :: s7`.
    pub fn describe(&self, table: &BlockTable) -> String {
        let mut parts = Vec::with_capacity(self.frames.len());
        for frame in &self.frames {
            let func = &table.program().funcs[frame.func].name;
            match frame.call_block {
                None => parts.push(format!("{func}@{}", frame.node)),
                Some(block) => parts.push(format!("{block}({func})@{}", frame.node)),
            }
        }
        // Pre-size the output: the joined parts plus the ` :: target` tail.
        let len = parts.iter().map(|p| p.len() + 3).sum::<usize>() + 8;
        let mut out = String::with_capacity(len);
        for (i, part) in parts.iter().enumerate() {
            if i > 0 {
                out.push_str(" / ");
            }
            out.push_str(part);
        }
        out.push_str(" :: ");
        out.push_str(&self.target.to_string());
        out
    }
}

/// How two configurations relate (the `Ordered`/`Parallel` predicates of §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigRelation {
    /// The first configuration's iteration always precedes the second's.
    OrderedBefore,
    /// The first configuration's iteration always follows the second's.
    OrderedAfter,
    /// The iterations may occur in either order (diverge at a parallel
    /// composition).
    Parallel,
    /// The configurations denote the same iteration.
    Same,
    /// The configurations cannot coexist in a single execution (they diverge
    /// at a conditional).
    Incompatible,
}

/// Options controlling configuration enumeration.
///
/// Construct with [`EnumOptions::builder`] (or take the defaults); prefer
/// the builder over mutating fields in place.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EnumOptions {
    /// Hard cap on the number of stack frames explored (defensive; the
    /// no-self-call restriction already bounds depth by tree height × number
    /// of functions).
    pub max_depth: usize,
    /// Hard cap on the number of configurations produced per tree.
    pub max_configurations: usize,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions {
            max_depth: 64,
            max_configurations: 200_000,
        }
    }
}

impl EnumOptions {
    /// Starts a builder seeded with the default options.
    pub fn builder() -> EnumOptionsBuilder {
        EnumOptionsBuilder {
            options: EnumOptions::default(),
        }
    }
}

/// Builder for [`EnumOptions`].
#[derive(Debug, Clone, Default)]
pub struct EnumOptionsBuilder {
    options: EnumOptions,
}

impl EnumOptionsBuilder {
    /// Hard cap on the number of stack frames explored.
    pub fn max_depth(mut self, max_depth: usize) -> Self {
        self.options.max_depth = max_depth;
        self
    }

    /// Hard cap on the number of configurations produced per tree.
    pub fn max_configurations(mut self, max_configurations: usize) -> Self {
        self.options.max_configurations = max_configurations;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> EnumOptions {
        self.options
    }
}

/// Tree-independent symbolic path summaries, computed once per program and
/// shared by every tree a query enumerates.
///
/// The pre-optimization DFS re-ran the weakest-precondition computation
/// ([`wp::summarize_path`]) for every (stack frame, block, path) triple on
/// every tree.  The summaries only depend on the program, so they are built
/// once here; the per-tree work reduces to *grounding* them against the
/// concrete shape.
pub struct PathSummaries {
    by_block: std::sync::Mutex<HashMap<BlockId, Arc<Vec<SummaryEntry>>>>,
}

pub(crate) struct SummaryEntry {
    pub(crate) summary: PathSummary,
    /// The local symbol table the summary's symbols live in.
    pub(crate) local: SymTab,
}

impl PathSummaries {
    /// An empty cache; blocks are summarized lazily on first use, so a query
    /// that exits early (a race witness on the first tree) never pays for
    /// blocks the search does not reach.
    pub fn new() -> Self {
        PathSummaries {
            by_block: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// The summaries of every path to `block`, computed on first request and
    /// shared afterwards.
    fn of(&self, table: &BlockTable, block: BlockId) -> Arc<Vec<SummaryEntry>> {
        if let Some(entries) = self
            .by_block
            .lock()
            .expect("summaries poisoned")
            .get(&block)
        {
            return Arc::clone(entries);
        }
        // Summarize outside the lock: path summarization can be expensive
        // and must not serialize unrelated blocks.  A racing duplicate
        // computation is harmless (identical value, last insert wins).
        let func = &table.program().funcs[table.info(block).func];
        let entries: Arc<Vec<SummaryEntry>> = Arc::new(
            table
                .paths_to(block)
                .iter()
                .map(|path| {
                    let mut local = SymTab::new();
                    let summary = wp::summarize_path(table, path, &func.int_params, &mut local);
                    SummaryEntry { summary, local }
                })
                .collect(),
        );
        self.by_block
            .lock()
            .expect("summaries poisoned")
            .insert(block, Arc::clone(&entries));
        entries
    }
}

impl Default for PathSummaries {
    fn default() -> Self {
        Self::new()
    }
}

/// A thread-safe symbol interner shared across the trees of one query, so
/// that the same stack-qualified symbol name means the same [`Sym`] in every
/// enumerated system — the property that makes the shared [`SolverCache`]
/// exact across trees.
pub struct SharedSymTab {
    inner: std::sync::Mutex<SymTab>,
}

impl SharedSymTab {
    /// An empty shared table.
    pub fn new() -> Self {
        SharedSymTab {
            inner: std::sync::Mutex::new(SymTab::new()),
        }
    }

    fn intern(&self, name: &str) -> Sym {
        self.inner.lock().expect("symtab poisoned").intern(name)
    }
}

impl Default for SharedSymTab {
    fn default() -> Self {
        Self::new()
    }
}

/// The query-lifetime analysis state of one *program*: its lazily built
/// [`PathSummaries`], the solver memo [`SolverCache`] its grounded systems
/// are decided through, and the [`SharedSymTab`] that keeps those systems'
/// symbols consistent.
///
/// Contexts are memoized process-wide, keyed by the program's canonical
/// text: in the ROADMAP's serving scenario the same few programs are
/// queried over and over, and everything in here is derived deterministic
/// program state (like a compiled artifact) — *not* a verdict — so reusing
/// it across queries is sound and turns the per-query setup cost into a
/// one-time cost per distinct program.
pub struct AnalysisContext {
    /// The program's block table.
    pub table: Arc<BlockTable>,
    /// Every field name the program's read/write sets mention (the fields
    /// test trees must initialize).
    pub fields: Vec<String>,
    /// Lazily built per-block path summaries.
    pub summaries: PathSummaries,
    /// Memo cache for grounded feasibility systems.
    pub cache: SolverCache,
    /// Symbol interner shared by every system this context grounds.
    pub symtab: SharedSymTab,
}

impl AnalysisContext {
    /// Builds a fresh context for `program` (not registered in the
    /// process-wide memo).
    pub fn new(program: &retreet_lang::ast::Program) -> Arc<Self> {
        let table = Arc::new(BlockTable::build(program));
        let fields = crate::race::program_fields(&table);
        Arc::new(AnalysisContext {
            table,
            fields,
            summaries: PathSummaries::new(),
            cache: SolverCache::new(),
            symtab: SharedSymTab::new(),
        })
    }

    /// The memoized context for `program`.
    ///
    /// Keyed by the program's structural hash and verified by full AST
    /// equality, so two programs share a context only when they *are* the
    /// same program.  The registry is capacity-bounded: when it outgrows a
    /// generous cap it is cleared wholesale, which only costs the next
    /// query its setup work.
    pub fn for_program(program: &retreet_lang::ast::Program) -> Arc<Self> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        use std::sync::{Mutex, OnceLock};
        type Bucket = Vec<(retreet_lang::ast::Program, Arc<AnalysisContext>)>;
        static REGISTRY: OnceLock<Mutex<HashMap<u64, Bucket>>> = OnceLock::new();
        const MAX_PROGRAMS: usize = 64;
        let mut hasher = DefaultHasher::new();
        program.hash(&mut hasher);
        let key = hasher.finish();
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let mut registry = registry.lock().expect("analysis registry poisoned");
        if let Some(bucket) = registry.get(&key) {
            if let Some((_, ctx)) = bucket.iter().find(|(p, _)| p == program) {
                return Arc::clone(ctx);
            }
        }
        if registry.len() >= MAX_PROGRAMS {
            registry.clear();
        }
        let ctx = AnalysisContext::new(program);
        registry
            .entry(key)
            .or_default()
            .push((program.clone(), Arc::clone(&ctx)));
        ctx
    }
}

/// One link of an `Arc`-shared configuration stack.  The DFS extends the
/// chain by one link per call frame; sibling branches share every parent
/// link instead of cloning the whole frame vector per branch.
struct FrameChain {
    frame: Frame,
    parent: Option<Arc<FrameChain>>,
    /// Number of links up to and including this one.
    len: usize,
}

impl FrameChain {
    fn root(frame: Frame) -> Arc<FrameChain> {
        Arc::new(FrameChain {
            frame,
            parent: None,
            len: 1,
        })
    }

    fn extend(self: &Arc<FrameChain>, frame: Frame) -> Arc<FrameChain> {
        Arc::new(FrameChain {
            frame,
            parent: Some(Arc::clone(self)),
            len: self.len + 1,
        })
    }

    /// Materializes the chain as an outermost-first frame vector (only done
    /// once per emitted configuration, at a DFS leaf).
    fn to_frames(&self) -> Vec<Frame> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = Some(self);
        while let Some(link) = cur {
            out.push(link.frame.clone());
            cur = link.parent.as_deref();
        }
        out.reverse();
        out
    }
}

/// Enumerates every feasible configuration of `table`'s program over `tree`.
///
/// Convenience wrapper over [`enumerate_shared`] that builds the path
/// summaries, solver cache and symbol table for a single tree.  Queries that
/// walk many trees should build those once and call [`enumerate_shared`]
/// per tree instead.
pub fn enumerate(
    table: &BlockTable,
    tree: &ValueTree,
    options: &EnumOptions,
) -> Vec<Configuration> {
    let summaries = PathSummaries::new();
    let cache = SolverCache::new();
    let symtab = SharedSymTab::new();
    enumerate_shared(table, &summaries, tree, options, &cache, &symtab)
}

/// [`enumerate`] with the query-lifetime state shared across trees: the
/// tree-independent [`PathSummaries`], the solver memo [`SolverCache`], and
/// the [`SharedSymTab`] that keeps symbol identities consistent between
/// trees (which is what makes the cache exact across them).
pub fn enumerate_shared(
    table: &BlockTable,
    summaries: &PathSummaries,
    tree: &ValueTree,
    options: &EnumOptions,
    cache: &SolverCache,
    symtab: &SharedSymTab,
) -> Vec<Configuration> {
    let program = table.program();
    let Some(main_idx) = program.func_index(retreet_lang::ast::MAIN) else {
        return Vec::new();
    };
    let main_frame = Frame {
        func: main_idx,
        node: Loc::Node(tree.root()),
        call_block: None,
    };
    // Main's integer parameters (if any) are unconstrained symbols.
    let main_params: Vec<LinExpr> = program.funcs[main_idx]
        .int_params
        .iter()
        .map(|p| LinExpr::var(symtab.intern(&format!("main:{p}"))))
        .collect();
    let mut explorer = Explorer {
        table,
        tree,
        options,
        summaries,
        symtab,
        solver: IncrementalSolver::new(Solver::decision_only(), cache),
        out: Vec::new(),
        stack_sig: String::from("main"),
    };
    explorer.explore(&FrameChain::root(main_frame), main_params);
    explorer.out
}

/// The DFS state: borrowed query-lifetime inputs plus the mutable search
/// stack (incremental solver frames mirror the configuration frames).
struct Explorer<'a> {
    table: &'a BlockTable,
    tree: &'a ValueTree,
    options: &'a EnumOptions,
    summaries: &'a PathSummaries,
    symtab: &'a SharedSymTab,
    solver: IncrementalSolver<'a>,
    out: Vec<Configuration>,
    stack_sig: String,
}

impl Explorer<'_> {
    fn explore(&mut self, frames: &Arc<FrameChain>, params: Vec<LinExpr>) {
        if frames.len > self.options.max_depth || self.out.len() >= self.options.max_configurations
        {
            return;
        }
        let table = self.table;
        let frame = frames.frame.clone();
        let param_names: &[String] = &table.program().funcs[frame.func].int_params;

        for &block in table.blocks_of_func(frame.func) {
            let entries = self.summaries.of(table, block);
            for entry in entries.iter() {
                // Ground the tree-independent summary against the concrete
                // tree and the caller-provided parameter expressions.
                let Some((path_constraints, mut env)) = ground_summary(
                    table,
                    self.tree,
                    frame.node,
                    &entry.summary.condition,
                    entry.summary.env.clone(),
                    &entry.local,
                    &params,
                    param_names,
                    self.symtab,
                    &self.stack_sig,
                ) else {
                    continue;
                };
                // One solver frame per explored path: the parent prefix is
                // already decided (its components sit in the shared cache),
                // so only the newly assumed atoms cost anything — and a
                // cached-UNSAT prefix prunes the whole subtree outright.
                self.solver.push();
                self.solver.assume_all(&path_constraints);
                if !self.solver.is_sat() {
                    self.solver.pop();
                    continue;
                }
                let info = table.info(block);
                match info.block.as_call() {
                    None => {
                        self.out.push(Configuration {
                            frames: frames.to_frames(),
                            target: block,
                            constraints: self.solver.current_system(),
                        });
                        if self.out.len() >= self.options.max_configurations {
                            self.solver.pop();
                            return;
                        }
                    }
                    Some(call) => {
                        // Compute the callee's node and parameter expressions
                        // and extend the frame chain.
                        let callee_node = resolve_loc(self.tree, frame.node, call.target);
                        let Some(callee_idx) = table.program().func_index(&call.callee) else {
                            self.solver.pop();
                            continue;
                        };
                        let mut local2 = entry.local.clone();
                        let raw_args = wp::symbolic_call_args(table, block, &mut env, &mut local2);
                        let callee_args: Vec<LinExpr> =
                            raw_args
                                .iter()
                                .map(|arg| {
                                    ground_expr(
                                        arg,
                                        self.tree,
                                        frame.node,
                                        &local2,
                                        &params,
                                        param_names,
                                        self.symtab,
                                        &self.stack_sig,
                                    )
                                })
                                .collect::<Option<Vec<_>>>()
                                .unwrap_or_else(|| {
                                    // An argument read a field of a nil node: the
                                    // call still happens in the paper's semantics
                                    // only if guarded; treat unresolved reads as
                                    // unconstrained.
                                    raw_args
                                        .iter()
                                        .enumerate()
                                        .map(|(i, _)| {
                                            LinExpr::var(self.symtab.intern(&format!(
                                                "arg:{}:{block}:{i}",
                                                self.stack_sig
                                            )))
                                        })
                                        .collect()
                                });
                        let child = frames.extend(Frame {
                            func: callee_idx,
                            node: callee_node,
                            call_block: Some(block),
                        });
                        let saved_len = self.stack_sig.len();
                        self.stack_sig.push_str(&format!("/{block}@{callee_node}"));
                        self.explore(&child, callee_args);
                        self.stack_sig.truncate(saved_len);
                    }
                }
                self.solver.pop();
            }
        }
    }
}

pub(crate) fn resolve_loc(tree: &ValueTree, loc: Loc, target: NodeRef) -> Loc {
    match (loc, target) {
        (Loc::Nil, _) => Loc::Nil,
        (Loc::Node(n), NodeRef::Cur) => Loc::Node(n),
        (Loc::Node(n), NodeRef::Child(axis)) => tree
            .child(n, axis.index())
            .map(Loc::Node)
            .unwrap_or(Loc::Nil),
    }
}

/// Grounds a path summary produced by `retreet-lang::wp` against the
/// concrete tree and the caller-supplied parameter expressions:
///
/// * nil atoms are decided by the tree shape (an infeasible case is dropped),
/// * field symbols become the tree's initial field values,
/// * parameter symbols become the caller's argument expressions,
/// * ghost symbols are renamed into the global, stack-qualified namespace so
///   that configurations sharing a stack prefix share ghost variables.
///
/// Returns `None` when no case of the condition survives.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ground_summary(
    _table: &BlockTable,
    tree: &ValueTree,
    loc: Loc,
    condition: &PathCondition,
    env: SymbolicEnv,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &SharedSymTab,
    stack_sig: &str,
) -> Option<(System, SymbolicEnv)> {
    let mut feasible_cases: Vec<System> = Vec::new();
    'cases: for case in &condition.cases {
        // Shape atoms must agree with the concrete tree.
        for (node_ref, must_be_nil) in &case.nil_atoms {
            let is_nil = matches!(resolve_loc(tree, loc, *node_ref), Loc::Nil);
            if is_nil != *must_be_nil {
                continue 'cases;
            }
        }
        // Ground the arithmetic system.
        match ground_system(
            &case.arith,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        ) {
            Some(system) => feasible_cases.push(system),
            None => continue 'cases,
        }
    }
    if feasible_cases.is_empty() {
        if condition.cases.is_empty() {
            return None;
        }
        // All cases were shape-infeasible.
        return None;
    }
    // Several feasible cases form a disjunction; for the over-approximating
    // enumeration we keep the weakest commitment by selecting the first
    // feasible case's constraints (any real execution follows one of them,
    // and every case is explored as its own `paths_to` alternative for the
    // conditionals that matter — the remaining disjunctions come from
    // negated conjunctions, which the case studies do not produce).
    let system = feasible_cases.swap_remove(0);
    Some((system, env))
}

#[allow(clippy::too_many_arguments)]
fn ground_system(
    system: &System,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &SharedSymTab,
    stack_sig: &str,
) -> Option<System> {
    let mut out = System::new();
    for atom in system.atoms() {
        let grounded = ground_atom(
            atom,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        )?;
        out.push(grounded);
    }
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn ground_atom(
    atom: &Atom,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &SharedSymTab,
    stack_sig: &str,
) -> Option<Atom> {
    let mut expr = atom.expr().clone();
    for sym in atom.expr().vars().collect::<Vec<_>>() {
        let replacement = ground_sym(
            sym,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        )?;
        expr = expr.substitute(sym, &replacement);
    }
    Some(Atom::new(expr, atom.rel()))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn ground_expr(
    expr: &LinExpr,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &SharedSymTab,
    stack_sig: &str,
) -> Option<LinExpr> {
    let mut out = expr.clone();
    for sym in expr.vars().collect::<Vec<_>>() {
        let replacement = ground_sym(
            sym,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        )?;
        out = out.substitute(sym, &replacement);
    }
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn ground_sym(
    sym: Sym,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &SharedSymTab,
    stack_sig: &str,
) -> Option<LinExpr> {
    let name = local.name(sym)?.to_string();
    if let Some(param) = name.strip_prefix("param:") {
        if let Some(index) = param_names.iter().position(|p| p == param) {
            if let Some(value) = params.get(index) {
                return Some(value.clone());
            }
        }
        // A local variable read before assignment (or a parameter the caller
        // did not supply): model it as an unconstrained stack-local symbol.
        return Some(LinExpr::var(
            symtab.intern(&format!("local:{stack_sig}:{param}")),
        ));
    }
    if let Some(field) = name.strip_prefix("field:") {
        // field:<noderef>.<name> — the node reference is `n`, `n.l`, or `n.r`.
        // Field values are kept *symbolic*, shared per concrete (node, field)
        // pair across the whole enumeration: this mirrors the paper's
        // ConsistentCondSet treatment (conditions on the same node must be
        // jointly satisfiable, but field contents are otherwise
        // unconstrained), and keeps the enumeration a strict
        // over-approximation of every real execution.  Reading a field of a
        // nil node makes the path infeasible.
        let (node_ref, field_name) = parse_field_name(field)?;
        let node = resolve_loc(tree, loc, node_ref).node()?;
        return Some(LinExpr::var(
            symtab.intern(&format!("treefield:{node}:{field_name}")),
        ));
    }
    if let Some(ghost) = name.strip_prefix("ghost:") {
        return Some(LinExpr::var(
            symtab.intern(&format!("ghost:{stack_sig}:{ghost}")),
        ));
    }
    // Unknown symbol kind: keep it opaque but stack-qualified.
    Some(LinExpr::var(
        symtab.intern(&format!("opaque:{stack_sig}:{name}")),
    ))
}

pub(crate) fn parse_field_name(text: &str) -> Option<(NodeRef, String)> {
    // Formats produced by wp::syms::field: "n.f", "n.l.f", "n.r.f", and the
    // indexed "n.c<k>.f" for higher arities.
    let rest = text.strip_prefix("n.")?;
    if let Some(field) = rest.strip_prefix("l.") {
        return Some((
            NodeRef::Child(retreet_lang::ast::ChildAxis::LEFT),
            field.to_string(),
        ));
    }
    if let Some(field) = rest.strip_prefix("r.") {
        return Some((
            NodeRef::Child(retreet_lang::ast::ChildAxis::RIGHT),
            field.to_string(),
        ));
    }
    if let Some(indexed) = rest.strip_prefix('c') {
        if let Some(dot) = indexed.find('.') {
            let (digits, field) = indexed.split_at(dot);
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(axis) = digits.parse::<u8>() {
                    return Some((
                        NodeRef::Child(retreet_lang::ast::ChildAxis(axis)),
                        field[1..].to_string(),
                    ));
                }
            }
        }
    }
    Some((NodeRef::Cur, rest.to_string()))
}

/// The relation between two configurations over the same tree (the
/// `Consistent`/`Ordered`/`Parallel` analysis of §4, made concrete).
pub fn relation(table: &BlockTable, a: &Configuration, b: &Configuration) -> ConfigRelation {
    // Find the first index where the frame stacks diverge.
    let mut k = 0;
    while k < a.frames.len() && k < b.frames.len() && a.frames[k] == b.frames[k] {
        k += 1;
    }
    let block_a = if k < a.frames.len() {
        a.frames[k]
            .call_block
            .expect("non-main diverging frame has a call block")
    } else {
        a.target
    };
    let block_b = if k < b.frames.len() {
        b.frames[k]
            .call_block
            .expect("non-main diverging frame has a call block")
    } else {
        b.target
    };
    if block_a == block_b {
        // Same call block at the divergence point with different nodes is
        // impossible over the same tree (the node is determined by the
        // caller's node); so this means both are the same iteration.
        if k >= a.frames.len() && k >= b.frames.len() {
            return ConfigRelation::Same;
        }
        // Diverging later is impossible if the frames were equal; treat the
        // deeper one as ordered after its own call block.
        return if a.frames.len() <= b.frames.len() {
            ConfigRelation::OrderedBefore
        } else {
            ConfigRelation::OrderedAfter
        };
    }
    match table.relation(block_a, block_b) {
        Relation::SeqBefore => ConfigRelation::OrderedBefore,
        Relation::SeqAfter => ConfigRelation::OrderedAfter,
        Relation::Parallel => ConfigRelation::Parallel,
        Relation::Branch => ConfigRelation::Incompatible,
        Relation::Same => ConfigRelation::Same,
        Relation::DifferentFunc => ConfigRelation::Incompatible,
    }
}

/// A data dependence between the final iterations of two configurations: the
/// concrete node and field they conflict on (at least one side writes).
pub fn dependence(
    table: &BlockTable,
    tree: &ValueTree,
    a: &Configuration,
    b: &Configuration,
) -> Option<(NodeId, String)> {
    let accesses_a = concrete_accesses(table, tree, a);
    let accesses_b = concrete_accesses(table, tree, b);
    for (node_a, field_a, write_a) in &accesses_a {
        for (node_b, field_b, write_b) in &accesses_b {
            if node_a == node_b && field_a == field_b && (*write_a || *write_b) {
                return Some((*node_a, field_a.clone()));
            }
        }
    }
    None
}

/// The concrete `(node, field, is_write)` accesses of a configuration's final
/// iteration.
pub fn concrete_accesses(
    table: &BlockTable,
    tree: &ValueTree,
    config: &Configuration,
) -> Vec<(NodeId, String, bool)> {
    let sets = rw_sets_of_block(table, config.target);
    let loc = config.target_loc();
    let mut out = Vec::new();
    let add = |access: &Access, is_write: bool, out: &mut Vec<(NodeId, String, bool)>| {
        if let Access::Field(node_ref, field) = access {
            if let Some(node) = resolve_loc(tree, loc, *node_ref).node() {
                out.push((node, field.clone(), is_write));
            }
        }
    };
    for access in &sets.reads {
        add(access, false, &mut out);
    }
    for access in &sets.writes {
        add(access, true, &mut out);
    }
    out
}

/// Checks whether the conjunction of two configurations' constraints is
/// satisfiable (they can occur in the same execution as far as the integer
/// reasoning is concerned).
pub fn mutually_feasible(a: &Configuration, b: &Configuration) -> bool {
    let mut combined = a.constraints.clone();
    combined.extend_from(&b.constraints);
    Solver::decision_only().check(&combined).is_sat()
}

/// [`mutually_feasible`] through a shared [`SolverCache`]: the pair loops
/// conjoin the same per-configuration systems over and over, so the
/// variable-connected components of the conjunction are almost always
/// already decided.
pub fn mutually_feasible_cached(a: &Configuration, b: &Configuration, cache: &SolverCache) -> bool {
    let mut combined = a.constraints.clone();
    combined.extend_from(&b.constraints);
    Solver::decision_only()
        .check_cached(&combined, cache)
        .is_sat()
}

/// Convenience re-export for building `CondCase`-free tests.
pub fn always_true_case() -> CondCase {
    CondCase::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_lang::BlockTable;

    fn three_node_tree() -> ValueTree {
        // root with left and right children.
        let mut tree = ValueTree::single();
        let root = tree.root();
        tree.add_left(root);
        tree.add_right(root);
        tree
    }

    #[test]
    fn running_example_configurations_on_a_single_node() {
        let program = corpus::size_counting_parallel();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // The execution shown in §3 on a single node u has 6 iterations
        // (s0 on u.l, s0 on u.r, s7 on u, s4 on u.l, s4 on u.r, s3 on u) plus
        // Main's return s10 on u; the over-approximating enumeration must
        // cover all of them.
        assert!(configs.len() >= 7);
        let mut target_blocks: Vec<u32> = configs.iter().map(|c| c.target.0).collect();
        target_blocks.sort_unstable();
        target_blocks.dedup();
        assert!(target_blocks.contains(&0), "s0 occurs");
        assert!(target_blocks.contains(&3), "s3 occurs");
        assert!(target_blocks.contains(&4), "s4 occurs");
        assert!(target_blocks.contains(&7), "s7 occurs");
        assert!(target_blocks.contains(&10), "s10 occurs");
    }

    #[test]
    fn configurations_respect_the_tree_shape() {
        let program = corpus::size_counting_parallel();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // On a single-node tree the recursion immediately hits nil children:
        // no configuration can be deeper than Main -> Odd/Even -> Even/Odd
        // (on a nil child) and then stops.
        assert!(configs.iter().all(|c| c.frames.len() <= 3));
        // The else-branch blocks (s1, s2) are unreachable on nil locations,
        // so no configuration targets s5/s6 at depth 3.
        for config in &configs {
            if config.frames.len() == 3 {
                assert_eq!(config.frames[2].node, Loc::Nil);
                assert!(matches!(config.target.0, 0 | 4));
            }
        }
    }

    #[test]
    fn parallel_and_ordered_relations() {
        let program = corpus::size_counting_parallel();
        let table = BlockTable::build(&program);
        let tree = three_node_tree();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // Find a configuration under the Odd branch (s8) and one under the
        // Even branch (s9): they must be parallel.
        let under_odd = configs
            .iter()
            .find(|c| c.frames.len() >= 2 && c.frames[1].call_block == Some(BlockId(8)))
            .expect("configuration under Odd");
        let under_even = configs
            .iter()
            .find(|c| c.frames.len() >= 2 && c.frames[1].call_block == Some(BlockId(9)))
            .expect("configuration under Even");
        assert_eq!(
            relation(&table, under_odd, under_even),
            ConfigRelation::Parallel
        );
        assert_eq!(
            relation(&table, under_even, under_odd),
            ConfigRelation::Parallel
        );
        // A configuration and itself are the same.
        assert_eq!(relation(&table, under_odd, under_odd), ConfigRelation::Same);
    }

    #[test]
    fn sequential_composition_orders_configurations() {
        let program = corpus::size_counting_sequential();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        let under_odd = configs
            .iter()
            .find(|c| c.frames.len() >= 2 && c.frames[1].call_block == Some(BlockId(8)))
            .unwrap();
        let under_even = configs
            .iter()
            .find(|c| c.frames.len() >= 2 && c.frames[1].call_block == Some(BlockId(9)))
            .unwrap();
        assert_eq!(
            relation(&table, under_odd, under_even),
            ConfigRelation::OrderedBefore
        );
        assert_eq!(
            relation(&table, under_even, under_odd),
            ConfigRelation::OrderedAfter
        );
    }

    #[test]
    fn dependences_are_detected_on_shared_fields() {
        let program = corpus::overlapping_parallel();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // Two parallel configurations both writing root.total must exist.
        let mut found = false;
        for (i, a) in configs.iter().enumerate() {
            for b in configs.iter().skip(i + 1) {
                if relation(&table, a, b) == ConfigRelation::Parallel
                    && dependence(&table, &tree, a, b).is_some()
                    && mutually_feasible(a, b)
                {
                    found = true;
                }
            }
        }
        assert!(found, "the overlapping parallel traversals must conflict");
    }

    #[test]
    fn branch_divergence_is_incompatible() {
        let program = corpus::size_counting_sequential();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // s0 (then branch of Odd) and a configuration through the else branch
        // of the same Odd activation cannot coexist; on a single-node tree the
        // else branch of the root Odd activation is taken, so compare the
        // nil-child configurations instead: s0 on u.l (under s1) vs s0 on u.l
        // … there is only one; instead check that no pair is Incompatible yet
        // relation is total.
        for a in &configs {
            for b in &configs {
                let _ = relation(&table, a, b);
            }
        }
        // Feasibility of each configuration individually.
        assert!(configs
            .iter()
            .all(|c| Solver::decision_only().check(&c.constraints).is_sat()));
    }
}
