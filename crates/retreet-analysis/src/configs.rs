//! Configurations — the stack-based iteration abstraction of §3, enumerated
//! over concrete bounded trees.
//!
//! A configuration (Definition 2 of the paper) is a snapshot of the call
//! stack: a chain of records starting at `Main` on the root, where each
//! record is a call block executed by the previous record's activation, and
//! the final record runs a non-call block.  Consecutive records must be
//! connected by *reachability* under speculative execution (Definition 1):
//! the intra-procedural path to the next block must be feasible when every
//! call on the way is replaced by an unconstrained ghost return value.
//!
//! MONA decides these constraints over all trees at once; the bounded engine
//! here enumerates configurations over a concrete tree, keeping the integer
//! reasoning symbolic (ghost returns and parameters are never enumerated —
//! feasibility is discharged by the `retreet-logic` solver), and keeping the
//! shape reasoning concrete (nil checks are evaluated against the tree).
//! This preserves the paper's over-approximation: every configuration that
//! can occur in a real execution on that tree is enumerated.

use std::fmt;

use retreet_lang::ast::NodeRef;
use retreet_lang::blocks::{BlockId, BlockTable};
use retreet_lang::rw::{rw_sets_of_block, Access};
use retreet_lang::wp::{self, CondCase, PathCondition, SymbolicEnv};
use retreet_lang::Relation;
use retreet_logic::{Atom, LinExpr, Solver, Sym, SymTab, System};

use crate::vtree::{NodeId, ValueTree};

/// A tree location: a real node or a nil child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A real node of the tree.
    Node(NodeId),
    /// A nil location (a missing child of a real node).
    Nil,
}

impl Loc {
    /// The node, when the location is real.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Loc::Node(n) => Some(*n),
            Loc::Nil => None,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Node(n) => write!(f, "{n}"),
            Loc::Nil => write!(f, "nil"),
        }
    }
}

/// One stack frame of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Index of the function the frame runs.
    pub func: usize,
    /// The node the activation runs on.
    pub node: Loc,
    /// The call block (in the *caller*'s function) that created this frame;
    /// `None` for the `Main` frame.
    pub call_block: Option<BlockId>,
}

/// A configuration: a feasible call stack ending at a non-call block.
#[derive(Debug, Clone)]
pub struct Configuration {
    /// The stack frames, outermost (`Main`) first.
    pub frames: Vec<Frame>,
    /// The final non-call block, which runs on the last frame's node.
    pub target: BlockId,
    /// The accumulated symbolic feasibility constraints (over parameter and
    /// ghost-return symbols).
    pub constraints: System,
}

impl Configuration {
    /// The location the target block runs on.
    pub fn target_loc(&self) -> Loc {
        self.frames.last().map(|f| f.node).unwrap_or(Loc::Nil)
    }

    /// A short human-readable rendering, e.g. `main@n0 / s9@n0 / s5@n1 :: s7`.
    pub fn describe(&self, table: &BlockTable) -> String {
        let mut parts = Vec::new();
        for frame in &self.frames {
            let func = &table.program().funcs[frame.func].name;
            match frame.call_block {
                None => parts.push(format!("{func}@{}", frame.node)),
                Some(block) => parts.push(format!("{block}({func})@{}", frame.node)),
            }
        }
        format!("{} :: {}", parts.join(" / "), self.target)
    }
}

/// How two configurations relate (the `Ordered`/`Parallel` predicates of §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigRelation {
    /// The first configuration's iteration always precedes the second's.
    OrderedBefore,
    /// The first configuration's iteration always follows the second's.
    OrderedAfter,
    /// The iterations may occur in either order (diverge at a parallel
    /// composition).
    Parallel,
    /// The configurations denote the same iteration.
    Same,
    /// The configurations cannot coexist in a single execution (they diverge
    /// at a conditional).
    Incompatible,
}

/// Options controlling configuration enumeration.
///
/// Construct with [`EnumOptions::builder`] (or take the defaults); prefer
/// the builder over mutating fields in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumOptions {
    /// Hard cap on the number of stack frames explored (defensive; the
    /// no-self-call restriction already bounds depth by tree height × number
    /// of functions).
    pub max_depth: usize,
    /// Hard cap on the number of configurations produced per tree.
    pub max_configurations: usize,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions {
            max_depth: 64,
            max_configurations: 200_000,
        }
    }
}

impl EnumOptions {
    /// Starts a builder seeded with the default options.
    pub fn builder() -> EnumOptionsBuilder {
        EnumOptionsBuilder {
            options: EnumOptions::default(),
        }
    }
}

/// Builder for [`EnumOptions`].
#[derive(Debug, Clone, Default)]
pub struct EnumOptionsBuilder {
    options: EnumOptions,
}

impl EnumOptionsBuilder {
    /// Hard cap on the number of stack frames explored.
    pub fn max_depth(mut self, max_depth: usize) -> Self {
        self.options.max_depth = max_depth;
        self
    }

    /// Hard cap on the number of configurations produced per tree.
    pub fn max_configurations(mut self, max_configurations: usize) -> Self {
        self.options.max_configurations = max_configurations;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> EnumOptions {
        self.options
    }
}

/// Enumerates every feasible configuration of `table`'s program over `tree`.
pub fn enumerate(
    table: &BlockTable,
    tree: &ValueTree,
    options: &EnumOptions,
) -> Vec<Configuration> {
    let program = table.program();
    let Some(main_idx) = program.func_index(retreet_lang::ast::MAIN) else {
        return Vec::new();
    };
    let mut symtab = SymTab::new();
    let mut out = Vec::new();
    let main_frame = Frame {
        func: main_idx,
        node: Loc::Node(tree.root()),
        call_block: None,
    };
    // Main's integer parameters (if any) are unconstrained symbols.
    let main_params: Vec<LinExpr> = program.funcs[main_idx]
        .int_params
        .iter()
        .map(|p| LinExpr::var(symtab.intern(&format!("main:{p}"))))
        .collect();
    let mut stack_sig = String::from("main");
    explore(
        table,
        tree,
        options,
        &mut symtab,
        &mut out,
        vec![main_frame],
        main_params,
        System::new(),
        &mut stack_sig,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn explore(
    table: &BlockTable,
    tree: &ValueTree,
    options: &EnumOptions,
    symtab: &mut SymTab,
    out: &mut Vec<Configuration>,
    frames: Vec<Frame>,
    params: Vec<LinExpr>,
    constraints: System,
    stack_sig: &mut String,
) {
    if frames.len() > options.max_depth || out.len() >= options.max_configurations {
        return;
    }
    let solver = Solver::decision_only();
    let frame = frames.last().expect("non-empty stack");
    let func = &table.program().funcs[frame.func];
    let param_names = func.int_params.clone();

    for &block in table.blocks_of_func(frame.func) {
        for path in table.paths_to(block) {
            // Summarize the path symbolically in a *local* symbol table, then
            // ground it against the concrete tree and the caller-provided
            // parameter expressions.
            let mut local = SymTab::new();
            let summary = wp::summarize_path(table, &path, &param_names, &mut local);
            let Some((path_constraints, mut env)) = ground_summary(
                table,
                tree,
                frame.node,
                &summary.condition,
                summary.env,
                &local,
                &params,
                &param_names,
                symtab,
                stack_sig,
            ) else {
                continue;
            };
            let mut combined = constraints.clone();
            combined.extend_from(&path_constraints);
            if !solver.check(&combined).is_sat() {
                continue;
            }
            let info = table.info(block);
            match info.block.as_call() {
                None => {
                    out.push(Configuration {
                        frames: frames.clone(),
                        target: block,
                        constraints: combined,
                    });
                    if out.len() >= options.max_configurations {
                        return;
                    }
                }
                Some(call) => {
                    // Compute the callee's node and parameter expressions and
                    // push a new frame.
                    let callee_node = resolve_loc(tree, frame.node, call.target);
                    let Some(callee_idx) = table.program().func_index(&call.callee) else {
                        continue;
                    };
                    let mut local2 = local.clone();
                    let raw_args = wp::symbolic_call_args(table, block, &mut env, &mut local2);
                    let callee_args: Vec<LinExpr> = raw_args
                        .iter()
                        .map(|arg| {
                            ground_expr(
                                arg,
                                tree,
                                frame.node,
                                &local2,
                                &params,
                                &param_names,
                                symtab,
                                stack_sig,
                            )
                        })
                        .collect::<Option<Vec<_>>>()
                        .unwrap_or_else(|| {
                            // An argument read a field of a nil node: the call
                            // still happens in the paper's semantics only if
                            // guarded; treat unresolved reads as unconstrained.
                            raw_args
                                .iter()
                                .enumerate()
                                .map(|(i, _)| {
                                    LinExpr::var(
                                        symtab.intern(&format!("arg:{stack_sig}:{block}:{i}")),
                                    )
                                })
                                .collect()
                        });
                    let mut child_frames = frames.clone();
                    child_frames.push(Frame {
                        func: callee_idx,
                        node: callee_node,
                        call_block: Some(block),
                    });
                    let saved_len = stack_sig.len();
                    stack_sig.push_str(&format!("/{block}@{}", callee_node));
                    explore(
                        table,
                        tree,
                        options,
                        symtab,
                        out,
                        child_frames,
                        callee_args,
                        combined,
                        stack_sig,
                    );
                    stack_sig.truncate(saved_len);
                }
            }
        }
    }
}

fn resolve_loc(tree: &ValueTree, loc: Loc, target: NodeRef) -> Loc {
    match (loc, target) {
        (Loc::Nil, _) => Loc::Nil,
        (Loc::Node(n), NodeRef::Cur) => Loc::Node(n),
        (Loc::Node(n), NodeRef::Child(dir)) => {
            let child = match dir {
                retreet_lang::ast::Dir::Left => tree.left(n),
                retreet_lang::ast::Dir::Right => tree.right(n),
            };
            child.map(Loc::Node).unwrap_or(Loc::Nil)
        }
    }
}

/// Grounds a path summary produced by `retreet-lang::wp` against the
/// concrete tree and the caller-supplied parameter expressions:
///
/// * nil atoms are decided by the tree shape (an infeasible case is dropped),
/// * field symbols become the tree's initial field values,
/// * parameter symbols become the caller's argument expressions,
/// * ghost symbols are renamed into the global, stack-qualified namespace so
///   that configurations sharing a stack prefix share ghost variables.
///
/// Returns `None` when no case of the condition survives.
#[allow(clippy::too_many_arguments)]
fn ground_summary(
    _table: &BlockTable,
    tree: &ValueTree,
    loc: Loc,
    condition: &PathCondition,
    env: SymbolicEnv,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<(System, SymbolicEnv)> {
    let mut feasible_cases: Vec<System> = Vec::new();
    'cases: for case in &condition.cases {
        // Shape atoms must agree with the concrete tree.
        for (node_ref, must_be_nil) in &case.nil_atoms {
            let is_nil = matches!(resolve_loc(tree, loc, *node_ref), Loc::Nil);
            if is_nil != *must_be_nil {
                continue 'cases;
            }
        }
        // Ground the arithmetic system.
        match ground_system(
            &case.arith,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        ) {
            Some(system) => feasible_cases.push(system),
            None => continue 'cases,
        }
    }
    if feasible_cases.is_empty() {
        if condition.cases.is_empty() {
            return None;
        }
        // All cases were shape-infeasible.
        return None;
    }
    // Several feasible cases form a disjunction; for the over-approximating
    // enumeration we keep the weakest commitment by selecting the first
    // feasible case's constraints (any real execution follows one of them,
    // and every case is explored as its own `paths_to` alternative for the
    // conditionals that matter — the remaining disjunctions come from
    // negated conjunctions, which the case studies do not produce).
    let system = feasible_cases.swap_remove(0);
    Some((system, env))
}

#[allow(clippy::too_many_arguments)]
fn ground_system(
    system: &System,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<System> {
    let mut out = System::new();
    for atom in system.atoms() {
        let grounded = ground_atom(
            atom,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        )?;
        out.push(grounded);
    }
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn ground_atom(
    atom: &Atom,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<Atom> {
    let mut expr = atom.expr().clone();
    for sym in atom.expr().vars().collect::<Vec<_>>() {
        let replacement = ground_sym(
            sym,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        )?;
        expr = expr.substitute(sym, &replacement);
    }
    Some(Atom::new(expr, atom.rel()))
}

#[allow(clippy::too_many_arguments)]
fn ground_expr(
    expr: &LinExpr,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<LinExpr> {
    let mut out = expr.clone();
    for sym in expr.vars().collect::<Vec<_>>() {
        let replacement = ground_sym(
            sym,
            tree,
            loc,
            local,
            params,
            param_names,
            symtab,
            stack_sig,
        )?;
        out = out.substitute(sym, &replacement);
    }
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn ground_sym(
    sym: Sym,
    tree: &ValueTree,
    loc: Loc,
    local: &SymTab,
    params: &[LinExpr],
    param_names: &[String],
    symtab: &mut SymTab,
    stack_sig: &str,
) -> Option<LinExpr> {
    let name = local.name(sym)?.to_string();
    if let Some(param) = name.strip_prefix("param:") {
        if let Some(index) = param_names.iter().position(|p| p == param) {
            if let Some(value) = params.get(index) {
                return Some(value.clone());
            }
        }
        // A local variable read before assignment (or a parameter the caller
        // did not supply): model it as an unconstrained stack-local symbol.
        return Some(LinExpr::var(
            symtab.intern(&format!("local:{stack_sig}:{param}")),
        ));
    }
    if let Some(field) = name.strip_prefix("field:") {
        // field:<noderef>.<name> — the node reference is `n`, `n.l`, or `n.r`.
        // Field values are kept *symbolic*, shared per concrete (node, field)
        // pair across the whole enumeration: this mirrors the paper's
        // ConsistentCondSet treatment (conditions on the same node must be
        // jointly satisfiable, but field contents are otherwise
        // unconstrained), and keeps the enumeration a strict
        // over-approximation of every real execution.  Reading a field of a
        // nil node makes the path infeasible.
        let (node_ref, field_name) = parse_field_name(field)?;
        let node = resolve_loc(tree, loc, node_ref).node()?;
        return Some(LinExpr::var(
            symtab.intern(&format!("treefield:{node}:{field_name}")),
        ));
    }
    if let Some(ghost) = name.strip_prefix("ghost:") {
        return Some(LinExpr::var(
            symtab.intern(&format!("ghost:{stack_sig}:{ghost}")),
        ));
    }
    // Unknown symbol kind: keep it opaque but stack-qualified.
    Some(LinExpr::var(
        symtab.intern(&format!("opaque:{stack_sig}:{name}")),
    ))
}

fn parse_field_name(text: &str) -> Option<(NodeRef, String)> {
    // Formats produced by wp::syms::field: "n.f", "n.l.f", "n.r.f".
    let rest = text.strip_prefix("n.")?;
    if let Some(field) = rest.strip_prefix("l.") {
        return Some((
            NodeRef::Child(retreet_lang::ast::Dir::Left),
            field.to_string(),
        ));
    }
    if let Some(field) = rest.strip_prefix("r.") {
        return Some((
            NodeRef::Child(retreet_lang::ast::Dir::Right),
            field.to_string(),
        ));
    }
    Some((NodeRef::Cur, rest.to_string()))
}

/// The relation between two configurations over the same tree (the
/// `Consistent`/`Ordered`/`Parallel` analysis of §4, made concrete).
pub fn relation(table: &BlockTable, a: &Configuration, b: &Configuration) -> ConfigRelation {
    // Find the first index where the frame stacks diverge.
    let mut k = 0;
    while k < a.frames.len() && k < b.frames.len() && a.frames[k] == b.frames[k] {
        k += 1;
    }
    let block_a = if k < a.frames.len() {
        a.frames[k]
            .call_block
            .expect("non-main diverging frame has a call block")
    } else {
        a.target
    };
    let block_b = if k < b.frames.len() {
        b.frames[k]
            .call_block
            .expect("non-main diverging frame has a call block")
    } else {
        b.target
    };
    if block_a == block_b {
        // Same call block at the divergence point with different nodes is
        // impossible over the same tree (the node is determined by the
        // caller's node); so this means both are the same iteration.
        if k >= a.frames.len() && k >= b.frames.len() {
            return ConfigRelation::Same;
        }
        // Diverging later is impossible if the frames were equal; treat the
        // deeper one as ordered after its own call block.
        return if a.frames.len() <= b.frames.len() {
            ConfigRelation::OrderedBefore
        } else {
            ConfigRelation::OrderedAfter
        };
    }
    match table.relation(block_a, block_b) {
        Relation::SeqBefore => ConfigRelation::OrderedBefore,
        Relation::SeqAfter => ConfigRelation::OrderedAfter,
        Relation::Parallel => ConfigRelation::Parallel,
        Relation::Branch => ConfigRelation::Incompatible,
        Relation::Same => ConfigRelation::Same,
        Relation::DifferentFunc => ConfigRelation::Incompatible,
    }
}

/// A data dependence between the final iterations of two configurations: the
/// concrete node and field they conflict on (at least one side writes).
pub fn dependence(
    table: &BlockTable,
    tree: &ValueTree,
    a: &Configuration,
    b: &Configuration,
) -> Option<(NodeId, String)> {
    let accesses_a = concrete_accesses(table, tree, a);
    let accesses_b = concrete_accesses(table, tree, b);
    for (node_a, field_a, write_a) in &accesses_a {
        for (node_b, field_b, write_b) in &accesses_b {
            if node_a == node_b && field_a == field_b && (*write_a || *write_b) {
                return Some((*node_a, field_a.clone()));
            }
        }
    }
    None
}

/// The concrete `(node, field, is_write)` accesses of a configuration's final
/// iteration.
pub fn concrete_accesses(
    table: &BlockTable,
    tree: &ValueTree,
    config: &Configuration,
) -> Vec<(NodeId, String, bool)> {
    let sets = rw_sets_of_block(table, config.target);
    let loc = config.target_loc();
    let mut out = Vec::new();
    let add = |access: &Access, is_write: bool, out: &mut Vec<(NodeId, String, bool)>| {
        if let Access::Field(node_ref, field) = access {
            if let Some(node) = resolve_loc(tree, loc, *node_ref).node() {
                out.push((node, field.clone(), is_write));
            }
        }
    };
    for access in &sets.reads {
        add(access, false, &mut out);
    }
    for access in &sets.writes {
        add(access, true, &mut out);
    }
    out
}

/// Checks whether the conjunction of two configurations' constraints is
/// satisfiable (they can occur in the same execution as far as the integer
/// reasoning is concerned).
pub fn mutually_feasible(a: &Configuration, b: &Configuration) -> bool {
    let mut combined = a.constraints.clone();
    combined.extend_from(&b.constraints);
    Solver::decision_only().check(&combined).is_sat()
}

/// Convenience re-export for building `CondCase`-free tests.
pub fn always_true_case() -> CondCase {
    CondCase::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_lang::BlockTable;

    fn three_node_tree() -> ValueTree {
        // root with left and right children.
        let mut tree = ValueTree::single();
        let root = tree.root();
        tree.add_left(root);
        tree.add_right(root);
        tree
    }

    #[test]
    fn running_example_configurations_on_a_single_node() {
        let program = corpus::size_counting_parallel();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // The execution shown in §3 on a single node u has 6 iterations
        // (s0 on u.l, s0 on u.r, s7 on u, s4 on u.l, s4 on u.r, s3 on u) plus
        // Main's return s10 on u; the over-approximating enumeration must
        // cover all of them.
        assert!(configs.len() >= 7);
        let mut target_blocks: Vec<u32> = configs.iter().map(|c| c.target.0).collect();
        target_blocks.sort_unstable();
        target_blocks.dedup();
        assert!(target_blocks.contains(&0), "s0 occurs");
        assert!(target_blocks.contains(&3), "s3 occurs");
        assert!(target_blocks.contains(&4), "s4 occurs");
        assert!(target_blocks.contains(&7), "s7 occurs");
        assert!(target_blocks.contains(&10), "s10 occurs");
    }

    #[test]
    fn configurations_respect_the_tree_shape() {
        let program = corpus::size_counting_parallel();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // On a single-node tree the recursion immediately hits nil children:
        // no configuration can be deeper than Main -> Odd/Even -> Even/Odd
        // (on a nil child) and then stops.
        assert!(configs.iter().all(|c| c.frames.len() <= 3));
        // The else-branch blocks (s1, s2) are unreachable on nil locations,
        // so no configuration targets s5/s6 at depth 3.
        for config in &configs {
            if config.frames.len() == 3 {
                assert_eq!(config.frames[2].node, Loc::Nil);
                assert!(matches!(config.target.0, 0 | 4));
            }
        }
    }

    #[test]
    fn parallel_and_ordered_relations() {
        let program = corpus::size_counting_parallel();
        let table = BlockTable::build(&program);
        let tree = three_node_tree();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // Find a configuration under the Odd branch (s8) and one under the
        // Even branch (s9): they must be parallel.
        let under_odd = configs
            .iter()
            .find(|c| c.frames.len() >= 2 && c.frames[1].call_block == Some(BlockId(8)))
            .expect("configuration under Odd");
        let under_even = configs
            .iter()
            .find(|c| c.frames.len() >= 2 && c.frames[1].call_block == Some(BlockId(9)))
            .expect("configuration under Even");
        assert_eq!(
            relation(&table, under_odd, under_even),
            ConfigRelation::Parallel
        );
        assert_eq!(
            relation(&table, under_even, under_odd),
            ConfigRelation::Parallel
        );
        // A configuration and itself are the same.
        assert_eq!(relation(&table, under_odd, under_odd), ConfigRelation::Same);
    }

    #[test]
    fn sequential_composition_orders_configurations() {
        let program = corpus::size_counting_sequential();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        let under_odd = configs
            .iter()
            .find(|c| c.frames.len() >= 2 && c.frames[1].call_block == Some(BlockId(8)))
            .unwrap();
        let under_even = configs
            .iter()
            .find(|c| c.frames.len() >= 2 && c.frames[1].call_block == Some(BlockId(9)))
            .unwrap();
        assert_eq!(
            relation(&table, under_odd, under_even),
            ConfigRelation::OrderedBefore
        );
        assert_eq!(
            relation(&table, under_even, under_odd),
            ConfigRelation::OrderedAfter
        );
    }

    #[test]
    fn dependences_are_detected_on_shared_fields() {
        let program = corpus::overlapping_parallel();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // Two parallel configurations both writing root.total must exist.
        let mut found = false;
        for (i, a) in configs.iter().enumerate() {
            for b in configs.iter().skip(i + 1) {
                if relation(&table, a, b) == ConfigRelation::Parallel
                    && dependence(&table, &tree, a, b).is_some()
                    && mutually_feasible(a, b)
                {
                    found = true;
                }
            }
        }
        assert!(found, "the overlapping parallel traversals must conflict");
    }

    #[test]
    fn branch_divergence_is_incompatible() {
        let program = corpus::size_counting_sequential();
        let table = BlockTable::build(&program);
        let tree = ValueTree::single();
        let configs = enumerate(&table, &tree, &EnumOptions::default());
        // s0 (then branch of Odd) and a configuration through the else branch
        // of the same Odd activation cannot coexist; on a single-node tree the
        // else branch of the root Odd activation is taken, so compare the
        // nil-child configurations instead: s0 on u.l (under s1) vs s0 on u.l
        // … there is only one; instead check that no pair is Incompatible yet
        // relation is total.
        for a in &configs {
            for b in &configs {
                let _ = relation(&table, a, b);
            }
        }
        // Feasibility of each configuration individually.
        assert!(configs
            .iter()
            .all(|c| Solver::decision_only().check(&c.constraints).is_sat()));
    }
}
