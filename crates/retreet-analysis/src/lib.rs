//! # retreet-analysis — iteration-level reasoning for Retreet programs
//!
//! This crate implements the back half of the Retreet framework: the
//! stack-based *configuration* abstraction of §3, and the dependence queries
//! of §4 — data-race detection (`DataRace⟦P⟧`, Theorem 2) and
//! transformation-correctness checking (`Conflict⟦P, P′⟧`, Theorem 3).
//!
//! The paper discharges these queries by encoding them to MSO over trees and
//! calling MONA.  The reproduction replaces MONA with two complementary
//! bounded engines (see DESIGN.md §3 for the substitution argument):
//!
//! * the **configuration engine** ([`configs`], [`race`]) — enumerates the
//!   paper's configurations over every tree up to a size bound, keeping
//!   parameters and speculative call returns symbolic (discharged by
//!   `retreet-logic`) and the tree shape concrete;
//! * the **trace engine** ([`interp`], [`equiv`]) — a reference interpreter
//!   recording iterations, accesses and series-parallel positions, used for
//!   dynamic race validation and for differential equivalence checking of
//!   fusions, including the Theorem 3 dependence-order condition.
//!
//! [`coarse`] adds the TreeFuser-style field-granularity baseline used by the
//! ablation benchmarks, and [`vtree`] provides the concrete trees all of the
//! above run on.
//!
//! # Example: the paper's two headline verdicts
//!
//! ```
//! use retreet_analysis::race::{check_data_race, RaceOptions};
//! use retreet_analysis::equiv::{check_equivalence, EquivOptions};
//! use retreet_lang::corpus;
//!
//! let mut race_opts = RaceOptions::default();
//! race_opts.max_nodes = 3;
//! // Odd(n) ‖ Even(n) is data-race-free (checked in 0.02s by MONA in §5).
//! assert!(check_data_race(&corpus::size_counting_parallel(), &race_opts).is_race_free());
//!
//! let mut equiv_opts = EquivOptions::default();
//! equiv_opts.max_nodes = 4;
//! // The Fig. 6a fusion is correct; the Fig. 6b fusion is not.
//! assert!(check_equivalence(
//!     &corpus::size_counting_sequential(),
//!     &corpus::size_counting_fused(),
//!     &equiv_opts,
//! ).is_equivalent());
//! assert!(!check_equivalence(
//!     &corpus::size_counting_sequential(),
//!     &corpus::size_counting_fused_invalid(),
//!     &equiv_opts,
//! ).is_equivalent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarse;
pub mod configs;
pub mod corresp;
pub mod equiv;
pub mod interp;
pub mod naive;
mod par;
pub mod race;
pub mod summary;
pub mod vtree;

pub use configs::{
    AnalysisContext, ConfigRelation, Configuration, EnumOptions, Frame, Loc, PathSummaries,
    SharedSymTab,
};
pub use equiv::{
    check_equivalence, check_equivalence_cancellable, Disagreement, EquivCounterExample,
    EquivOptions, EquivVerdict,
};
pub use interp::{run, ExecOrder, FieldAccess, Iteration, RunResult, Trace};
pub use race::{
    check_data_race, check_data_race_cancellable, check_data_race_dynamic,
    check_data_race_dynamic_cancellable, RaceOptions, RaceVerdict, RaceWitness,
};
pub use vtree::{test_trees, NodeId, ValueTree};
