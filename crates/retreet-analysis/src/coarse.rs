//! A coarse-grained, TreeFuser-style dependence baseline.
//!
//! Prior frameworks discussed in §1/§6 of the paper reason about whole
//! traversals at the granularity of *fields*: if one traversal writes a field
//! that another traversal reads or writes — anywhere in the tree — the pair
//! is conservatively declared conflicting, and the fusion or parallelization
//! is rejected.  Retreet's contribution is precisely the finer, per-iteration
//! reasoning that accepts these transformations.
//!
//! This module implements that baseline so the benchmarks can report the
//! ablation: which of the paper's case studies the coarse analysis rejects
//! while the fine-grained analysis (and the ground-truth differential check)
//! accepts.

use std::collections::BTreeSet;

use retreet_lang::ast::{BlockKind, Program};
use retreet_lang::blocks::BlockTable;
use retreet_lang::rw::{rw_sets_of_block, Access};

/// The field footprint of one top-level traversal (one call in `Main`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraversalFootprint {
    /// Name of the entry function of the traversal.
    pub entry: String,
    /// Fields possibly read anywhere in the traversal.
    pub reads: BTreeSet<String>,
    /// Fields possibly written anywhere in the traversal.
    pub writes: BTreeSet<String>,
}

impl TraversalFootprint {
    /// True when the two traversals conflict at field granularity.
    pub fn conflicts_with(&self, other: &TraversalFootprint) -> bool {
        let rw_conflict = self
            .writes
            .iter()
            .any(|f| other.reads.contains(f) || other.writes.contains(f));
        let wr_conflict = other.writes.iter().any(|f| self.reads.contains(f));
        rw_conflict || wr_conflict
    }
}

/// Computes the field footprint of every traversal launched directly from
/// `Main`, in launch order.
pub fn traversal_footprints(program: &Program) -> Vec<TraversalFootprint> {
    let table = BlockTable::build(program);
    let Some(main) = program.main() else {
        return Vec::new();
    };
    let mut footprints = Vec::new();
    for block in main.blocks() {
        let BlockKind::Call(call) = &block.kind else {
            continue;
        };
        let mut footprint = TraversalFootprint {
            entry: call.callee.clone(),
            ..TraversalFootprint::default()
        };
        // Transitively collect the callee functions reachable from the entry.
        let mut reachable: Vec<usize> = Vec::new();
        if let Some(start) = program.func_index(&call.callee) {
            let mut stack = vec![start];
            while let Some(func) = stack.pop() {
                if reachable.contains(&func) {
                    continue;
                }
                reachable.push(func);
                for inner in program.funcs[func].blocks() {
                    if let BlockKind::Call(inner_call) = &inner.kind {
                        if let Some(next) = program.func_index(&inner_call.callee) {
                            stack.push(next);
                        }
                    }
                }
            }
        }
        for func in reachable {
            for &block_id in table.blocks_of_func(func) {
                let sets = rw_sets_of_block(&table, block_id);
                for access in &sets.reads {
                    if let Access::Field(_, field) = access {
                        footprint.reads.insert(field.clone());
                    }
                }
                for access in &sets.writes {
                    if let Access::Field(_, field) = access {
                        footprint.writes.insert(field.clone());
                    }
                }
            }
        }
        footprints.push(footprint);
    }
    footprints
}

/// The coarse baseline's verdict for fusing all of `Main`'s traversals into a
/// single pass: accepted only when no pair of traversals conflicts at field
/// granularity.
pub fn coarse_fusion_ok(program: &Program) -> bool {
    let footprints = traversal_footprints(program);
    for (i, a) in footprints.iter().enumerate() {
        for b in footprints.iter().skip(i + 1) {
            if a.conflicts_with(b) {
                return false;
            }
        }
    }
    true
}

/// The coarse baseline's verdict for running `Main`'s traversals in parallel:
/// identical criterion (field-granular disjointness).
pub fn coarse_parallel_ok(program: &Program) -> bool {
    coarse_fusion_ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;

    #[test]
    fn css_minification_is_rejected_by_the_coarse_baseline() {
        // All three passes touch `value`, so field-granular analysis refuses
        // to fuse them — while the fine-grained check (equiv.rs) proves the
        // fusion correct.  This is the ablation claim of §1/§6.
        assert!(!coarse_fusion_ok(&corpus::css_minify_original()));
    }

    #[test]
    fn cycletree_fusion_is_rejected_by_the_coarse_baseline() {
        assert!(!coarse_fusion_ok(&corpus::cycletree_original()));
    }

    #[test]
    fn size_counting_is_accepted_by_the_coarse_baseline() {
        // Odd/Even touch no fields at all, so even the coarse baseline is
        // happy to fuse or parallelize them.
        assert!(coarse_fusion_ok(&corpus::size_counting_sequential()));
        assert!(coarse_parallel_ok(&corpus::size_counting_parallel()));
    }

    #[test]
    fn footprints_list_fields_per_traversal() {
        let footprints = traversal_footprints(&corpus::css_minify_original());
        assert_eq!(footprints.len(), 3);
        assert_eq!(footprints[0].entry, "ConvertValues");
        assert!(footprints[0].writes.contains("value"));
        assert!(footprints[1].reads.contains("prop"));
        assert!(footprints[2].reads.contains("initial"));
    }

    #[test]
    fn mutation_case_is_rejected_by_the_coarse_baseline() {
        // Swap writes `swapped`; IncrmLeft writes `v` and reads `v` — the
        // traversals are actually field-disjoint except through `v`…
        let footprints = traversal_footprints(&corpus::tree_mutation_original());
        assert_eq!(footprints.len(), 2);
        // Swap writes `swapped` only; IncrmLeft reads/writes `v` only; so the
        // coarse baseline accepts this particular (already simplified) form.
        assert!(coarse_fusion_ok(&corpus::tree_mutation_original()));
    }
}
