//! Symbols and linear integer expressions.
//!
//! A [`LinExpr`] is a finite sum `c + Σ aᵢ·xᵢ` with exact `i64` coefficients.
//! All arithmetic in the Retreet language (Fig. 2: `AExpr ::= 0 | 1 | n.f | v |
//! AExpr + AExpr | AExpr − AExpr`) denotes linear expressions, so this type is
//! a lossless target for the weakest-precondition computation in
//! `retreet-lang::wp`.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An interned symbol (variable, field access, or ghost return value).
///
/// The numeric payload is assigned by [`crate::symtab::SymTab`]; two symbols
/// from the same table are equal exactly when they were interned from the same
/// name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Builds a symbol from a raw index (used by the interner).
    pub fn from_usize(index: usize) -> Self {
        Sym(u32::try_from(index).expect("symbol index overflow"))
    }

    /// Returns the raw index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A linear integer expression `constant + Σ coeff·sym`.
///
/// The representation keeps coefficients in a `BTreeMap` so that expressions
/// have a canonical form: equal expressions compare equal structurally, and
/// iteration order is deterministic (important for reproducible analyses and
/// goldens in the test-suite).  Zero coefficients are never stored.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    constant: i64,
    coeffs: BTreeMap<Sym, i64>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(value: i64) -> Self {
        LinExpr {
            constant: value,
            coeffs: BTreeMap::new(),
        }
    }

    /// The expression `1·sym`.
    pub fn var(sym: Sym) -> Self {
        Self::scaled_var(sym, 1)
    }

    /// The expression `coeff·sym`.
    pub fn scaled_var(sym: Sym, coeff: i64) -> Self {
        let mut coeffs = BTreeMap::new();
        if coeff != 0 {
            coeffs.insert(sym, coeff);
        }
        LinExpr {
            constant: 0,
            coeffs,
        }
    }

    /// Returns the constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Returns the coefficient of `sym` (zero when absent).
    pub fn coeff(&self, sym: Sym) -> i64 {
        self.coeffs.get(&sym).copied().unwrap_or(0)
    }

    /// True when the expression is a constant (has no variables).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Returns `Some(c)` when the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<i64> {
        if self.is_constant() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Iterates over `(sym, coeff)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (Sym, i64)> + '_ {
        self.coeffs.iter().map(|(&s, &c)| (s, c))
    }

    /// The set of variables mentioned by the expression.
    pub fn vars(&self) -> impl Iterator<Item = Sym> + '_ {
        self.coeffs.keys().copied()
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// Adds `coeff·sym` in place.
    pub fn add_term(&mut self, sym: Sym, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.coeffs.entry(sym).or_insert(0);
        *entry = entry.checked_add(coeff).expect("coefficient overflow");
        if *entry == 0 {
            self.coeffs.remove(&sym);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, value: i64) {
        self.constant = self.constant.checked_add(value).expect("constant overflow");
    }

    /// Multiplies the whole expression by a scalar.
    pub fn scale(&self, factor: i64) -> LinExpr {
        if factor == 0 {
            return LinExpr::zero();
        }
        let mut out = LinExpr::constant(self.constant.checked_mul(factor).expect("overflow"));
        for (sym, coeff) in self.terms() {
            out.add_term(sym, coeff.checked_mul(factor).expect("overflow"));
        }
        out
    }

    /// Substitutes `sym := replacement` and returns the resulting expression.
    ///
    /// This is the workhorse of the weakest-precondition computation
    /// (`wp(n.f = e, φ) = φ[e/n.f]`).
    pub fn substitute(&self, sym: Sym, replacement: &LinExpr) -> LinExpr {
        let coeff = self.coeff(sym);
        if coeff == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(&sym);
        out + replacement.scale(coeff)
    }

    /// Evaluates the expression under a (partial) assignment.
    ///
    /// Returns `None` when some variable is unassigned.
    pub fn eval<F>(&self, lookup: F) -> Option<i64>
    where
        F: Fn(Sym) -> Option<i64>,
    {
        let mut acc = self.constant;
        for (sym, coeff) in self.terms() {
            let value = lookup(sym)?;
            acc = acc.checked_add(coeff.checked_mul(value)?)?;
        }
        Some(acc)
    }

    /// Greatest common divisor of all variable coefficients (0 for constants).
    pub fn coeff_gcd(&self) -> i64 {
        self.coeffs.values().fold(0i64, |acc, &c| gcd(acc, c.abs()))
    }
}

/// Euclid's gcd on non-negative integers; `gcd(0, x) = x`.
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        out.add_constant(rhs.constant);
        for (sym, coeff) in rhs.terms() {
            out.add_term(sym, coeff);
        }
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    // Subtraction really is addition of the negation here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.neg()
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(-1)
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: i64) -> LinExpr {
        self.scale(rhs)
    }
}

impl From<i64> for LinExpr {
    fn from(value: i64) -> Self {
        LinExpr::constant(value)
    }
}

impl From<Sym> for LinExpr {
    fn from(sym: Sym) -> Self {
        LinExpr::var(sym)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (sym, coeff) in self.terms() {
            if first {
                if coeff == 1 {
                    write!(f, "{sym}")?;
                } else if coeff == -1 {
                    write!(f, "-{sym}")?;
                } else {
                    write!(f, "{coeff}*{sym}")?;
                }
                first = false;
            } else if coeff > 0 {
                if coeff == 1 {
                    write!(f, " + {sym}")?;
                } else {
                    write!(f, " + {coeff}*{sym}")?;
                }
            } else if coeff == -1 {
                write!(f, " - {sym}")?;
            } else {
                write!(f, " - {}*{sym}", -coeff)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> Sym {
        Sym::from_usize(i)
    }

    #[test]
    fn constant_expression_roundtrip() {
        let e = LinExpr::constant(42);
        assert!(e.is_constant());
        assert_eq!(e.as_constant(), Some(42));
        assert_eq!(e.eval(|_| None), Some(42));
    }

    #[test]
    fn addition_merges_coefficients() {
        let e = LinExpr::var(s(0)) + LinExpr::scaled_var(s(0), 2) + LinExpr::constant(5);
        assert_eq!(e.coeff(s(0)), 3);
        assert_eq!(e.constant_term(), 5);
    }

    #[test]
    fn subtraction_cancels_terms() {
        let e = LinExpr::var(s(1)) - LinExpr::var(s(1));
        assert!(e.is_constant());
        assert_eq!(e.as_constant(), Some(0));
    }

    #[test]
    fn scaling_by_zero_gives_zero() {
        let e = (LinExpr::var(s(0)) + LinExpr::constant(9)).scale(0);
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn substitution_replaces_variable() {
        // (2x + y + 1)[x := y - 3] = 3y - 5
        let x = s(0);
        let y = s(1);
        let e = LinExpr::scaled_var(x, 2) + LinExpr::var(y) + LinExpr::constant(1);
        let replacement = LinExpr::var(y) - LinExpr::constant(3);
        let out = e.substitute(x, &replacement);
        assert_eq!(out.coeff(x), 0);
        assert_eq!(out.coeff(y), 3);
        assert_eq!(out.constant_term(), -5);
    }

    #[test]
    fn substitution_of_absent_variable_is_identity() {
        let e = LinExpr::var(s(0)) + LinExpr::constant(7);
        let out = e.substitute(s(5), &LinExpr::constant(100));
        assert_eq!(out, e);
    }

    #[test]
    fn evaluation_respects_assignment() {
        let e = LinExpr::scaled_var(s(0), 2) - LinExpr::var(s(1)) + LinExpr::constant(1);
        let value = e.eval(|sym| Some(if sym == s(0) { 4 } else { 3 }));
        assert_eq!(value, Some(2 * 4 - 3 + 1));
    }

    #[test]
    fn evaluation_is_none_for_missing_vars() {
        let e = LinExpr::var(s(0));
        assert_eq!(e.eval(|_| None), None);
    }

    #[test]
    fn gcd_of_coefficients() {
        let e = LinExpr::scaled_var(s(0), 6) + LinExpr::scaled_var(s(1), -9);
        assert_eq!(e.coeff_gcd(), 3);
        assert_eq!(LinExpr::constant(5).coeff_gcd(), 0);
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::scaled_var(s(0), 2) - LinExpr::var(s(1)) + LinExpr::constant(-4);
        assert_eq!(format!("{e}"), "2*s0 - s1 - 4");
        assert_eq!(format!("{}", LinExpr::zero()), "0");
    }
}
