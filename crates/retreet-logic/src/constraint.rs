//! Atomic constraints and conjunctive constraint systems.
//!
//! The Retreet encoding only ever needs *conjunctions* of linear constraints:
//! a path condition is the conjunction of the weakest preconditions of the
//! branches on the path (Lemma 1), and a "consistent condition set" is a
//! conjunction of branch conditions and their negations (§4).  Disjunction is
//! handled one level up by enumerating condition sets, so [`System`] is a
//! plain conjunction.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::intern::{atom_id, AtomId};
use crate::term::{LinExpr, Sym};

/// Comparison relation of an [`Atom`], always against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `expr = 0`
    Eq,
    /// `expr ≠ 0`
    Ne,
    /// `expr ≤ 0`
    Le,
    /// `expr < 0`
    Lt,
    /// `expr ≥ 0`
    Ge,
    /// `expr > 0`
    Gt,
}

impl Rel {
    /// The relation satisfied by exactly the values that do **not** satisfy
    /// `self`.
    pub fn negate(self) -> Rel {
        match self {
            Rel::Eq => Rel::Ne,
            Rel::Ne => Rel::Eq,
            Rel::Le => Rel::Gt,
            Rel::Lt => Rel::Ge,
            Rel::Ge => Rel::Lt,
            Rel::Gt => Rel::Le,
        }
    }

    /// Checks the relation on a concrete value.
    pub fn holds(self, value: i64) -> bool {
        match self {
            Rel::Eq => value == 0,
            Rel::Ne => value != 0,
            Rel::Le => value <= 0,
            Rel::Lt => value < 0,
            Rel::Ge => value >= 0,
            Rel::Gt => value > 0,
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Rel::Eq => "=",
            Rel::Ne => "!=",
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Ge => ">=",
            Rel::Gt => ">",
        };
        write!(f, "{text}")
    }
}

/// An atomic linear constraint `expr ⋈ 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    expr: LinExpr,
    rel: Rel,
}

impl Atom {
    /// Builds `expr ⋈ 0` directly.
    pub fn new(expr: LinExpr, rel: Rel) -> Self {
        Atom { expr, rel }
    }

    /// `lhs = rhs`
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Self {
        Atom::new(lhs - rhs, Rel::Eq)
    }

    /// `lhs ≠ rhs`
    pub fn ne(lhs: LinExpr, rhs: LinExpr) -> Self {
        Atom::new(lhs - rhs, Rel::Ne)
    }

    /// `lhs ≤ rhs`
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Self {
        Atom::new(lhs - rhs, Rel::Le)
    }

    /// `lhs < rhs`
    pub fn lt(lhs: LinExpr, rhs: LinExpr) -> Self {
        Atom::new(lhs - rhs, Rel::Lt)
    }

    /// `lhs ≥ rhs`
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Self {
        Atom::new(lhs - rhs, Rel::Ge)
    }

    /// `lhs > rhs`
    pub fn gt(lhs: LinExpr, rhs: LinExpr) -> Self {
        Atom::new(lhs - rhs, Rel::Gt)
    }

    /// The always-true constraint `0 = 0`.
    pub fn truth() -> Self {
        Atom::new(LinExpr::zero(), Rel::Eq)
    }

    /// The always-false constraint `0 ≠ 0`.
    pub fn falsity() -> Self {
        Atom::new(LinExpr::zero(), Rel::Ne)
    }

    /// The left-hand-side expression (compared against zero).
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relation.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// Logical negation.
    pub fn negate(&self) -> Atom {
        Atom::new(self.expr.clone(), self.rel.negate())
    }

    /// Substitutes a symbol by a linear expression in the atom.
    pub fn substitute(&self, sym: Sym, replacement: &LinExpr) -> Atom {
        Atom::new(self.expr.substitute(sym, replacement), self.rel)
    }

    /// Evaluates the atom under a (partial) assignment.
    pub fn eval<F>(&self, lookup: F) -> Option<bool>
    where
        F: Fn(Sym) -> Option<i64>,
    {
        self.expr.eval(lookup).map(|v| self.rel.holds(v))
    }

    /// Returns `Some(truth-value)` when the atom mentions no variables.
    pub fn as_trivial(&self) -> Option<bool> {
        self.expr.as_constant().map(|c| self.rel.holds(c))
    }

    /// The variables mentioned by the atom.
    pub fn vars(&self) -> impl Iterator<Item = Sym> + '_ {
        self.expr.vars()
    }

    /// Rewrites the atom into the equivalent list of non-strict `≥` atoms
    /// (plus possibly an `Eq`), using integer tightening for strict
    /// comparisons: over the integers `e > 0  ⇔  e − 1 ≥ 0`.
    ///
    /// Disequalities cannot be expressed as a conjunction; they are returned
    /// unchanged and handled by case-splitting in the solver.
    pub fn normalize(&self) -> Vec<Atom> {
        match self.rel {
            Rel::Ge => vec![self.clone()],
            Rel::Gt => vec![Atom::new(self.expr.clone() - LinExpr::constant(1), Rel::Ge)],
            Rel::Le => vec![Atom::new(self.expr.clone().scale(-1), Rel::Ge)],
            Rel::Lt => vec![Atom::new(
                self.expr.clone().scale(-1) - LinExpr::constant(1),
                Rel::Ge,
            )],
            Rel::Eq => vec![
                Atom::new(self.expr.clone(), Rel::Ge),
                Atom::new(self.expr.clone().scale(-1), Rel::Ge),
            ],
            Rel::Ne => vec![self.clone()],
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} 0", self.expr, self.rel)
    }
}

/// A conjunction of atomic constraints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct System {
    atoms: Vec<Atom>,
}

impl System {
    /// An empty (trivially satisfiable) system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a system from an iterator of atoms.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        System {
            atoms: atoms.into_iter().collect(),
        }
    }

    /// Adds an atom to the conjunction.
    pub fn push(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// Conjoins all atoms of `other` into `self`.
    pub fn extend_from(&mut self, other: &System) {
        self.atoms.extend(other.atoms.iter().cloned());
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when there are no atoms (the system is trivially satisfiable).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All variables mentioned anywhere in the system, deduplicated and
    /// sorted.
    pub fn vars(&self) -> Vec<Sym> {
        let mut vars: Vec<Sym> = self.atoms.iter().flat_map(|a| a.vars()).collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// The *normalized key* of the conjunction: the interned ids of its
    /// atoms, sorted and deduplicated.  Two systems with the same key are
    /// the same conjunction up to atom order and duplication — which makes
    /// the key an exact memo-cache key for satisfiability (see
    /// [`crate::solver::SolverCache`]).
    pub fn interned_key(&self) -> Vec<AtomId> {
        let mut ids: Vec<AtomId> = self.atoms.iter().map(atom_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// A 64-bit fingerprint of the normalized key — order- and
    /// duplication-insensitive, stable within one process.  Cheap identity
    /// for logging and coarse bucketing; exact comparisons should use
    /// [`Self::interned_key`].
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.interned_key().hash(&mut hasher);
        hasher.finish()
    }

    /// Substitutes a symbol everywhere in the system.
    pub fn substitute(&self, sym: Sym, replacement: &LinExpr) -> System {
        System::from_atoms(self.atoms.iter().map(|a| a.substitute(sym, replacement)))
    }

    /// Evaluates the conjunction under a (partial) assignment.
    pub fn eval<F>(&self, lookup: F) -> Option<bool>
    where
        F: Fn(Sym) -> Option<i64> + Copy,
    {
        let mut all = true;
        for atom in &self.atoms {
            match atom.eval(lookup) {
                Some(true) => {}
                Some(false) => return Some(false),
                None => all = false,
            }
        }
        if all {
            Some(true)
        } else {
            None
        }
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

impl FromIterator<Atom> for System {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        System::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sym;

    fn x() -> LinExpr {
        LinExpr::var(Sym::from_usize(0))
    }

    fn y() -> LinExpr {
        LinExpr::var(Sym::from_usize(1))
    }

    #[test]
    fn negation_is_involutive() {
        for rel in [Rel::Eq, Rel::Ne, Rel::Le, Rel::Lt, Rel::Ge, Rel::Gt] {
            assert_eq!(rel.negate().negate(), rel);
        }
    }

    #[test]
    fn rel_holds_matches_semantics() {
        assert!(Rel::Eq.holds(0));
        assert!(!Rel::Eq.holds(1));
        assert!(Rel::Gt.holds(1));
        assert!(!Rel::Gt.holds(0));
        assert!(Rel::Le.holds(0));
        assert!(Rel::Lt.holds(-1));
        assert!(Rel::Ne.holds(5));
    }

    #[test]
    fn atom_constructors_compare_sides() {
        let a = Atom::gt(x(), y());
        assert_eq!(
            a.eval(|s| Some(if s.as_usize() == 0 { 3 } else { 2 })),
            Some(true)
        );
        assert_eq!(a.eval(|_| Some(2)), Some(false));
    }

    #[test]
    fn trivial_atoms_fold() {
        assert_eq!(Atom::truth().as_trivial(), Some(true));
        assert_eq!(Atom::falsity().as_trivial(), Some(false));
        assert_eq!(
            Atom::gt(LinExpr::constant(3), LinExpr::constant(1)).as_trivial(),
            Some(true)
        );
        assert_eq!(Atom::gt(x(), LinExpr::constant(1)).as_trivial(), None);
    }

    #[test]
    fn normalization_tightens_strict_bounds() {
        // x > 0 becomes x - 1 >= 0
        let normalized = Atom::gt(x(), LinExpr::constant(0)).normalize();
        assert_eq!(normalized.len(), 1);
        assert_eq!(normalized[0].rel(), Rel::Ge);
        assert_eq!(normalized[0].expr().constant_term(), -1);
        // x = 0 becomes two inequalities.
        let eqs = Atom::eq(x(), LinExpr::constant(0)).normalize();
        assert_eq!(eqs.len(), 2);
        assert!(eqs.iter().all(|a| a.rel() == Rel::Ge));
    }

    #[test]
    fn system_eval_conjunction() {
        let mut sys = System::new();
        sys.push(Atom::ge(x(), LinExpr::constant(0)));
        sys.push(Atom::lt(y(), LinExpr::constant(10)));
        let sat = sys.eval(|s| Some(if s.as_usize() == 0 { 5 } else { 3 }));
        assert_eq!(sat, Some(true));
        let unsat = sys.eval(|s| Some(if s.as_usize() == 0 { -1 } else { 3 }));
        assert_eq!(unsat, Some(false));
        let unknown = sys.eval(|s| if s.as_usize() == 0 { Some(1) } else { None });
        assert_eq!(unknown, None);
    }

    #[test]
    fn system_vars_are_deduplicated() {
        let mut sys = System::new();
        sys.push(Atom::ge(x(), y()));
        sys.push(Atom::le(x(), LinExpr::constant(3)));
        assert_eq!(sys.vars().len(), 2);
    }

    #[test]
    fn substitute_into_system() {
        let mut sys = System::new();
        sys.push(Atom::gt(x(), LinExpr::constant(0)));
        let substituted = sys.substitute(Sym::from_usize(0), &LinExpr::constant(-1));
        assert_eq!(substituted.atoms()[0].as_trivial(), Some(false));
    }

    #[test]
    fn interned_key_is_order_and_duplication_insensitive() {
        let a = Atom::gt(x(), LinExpr::constant(0));
        let b = Atom::eq(y(), LinExpr::constant(2));
        let forward = System::from_atoms(vec![a.clone(), b.clone()]);
        let backward = System::from_atoms(vec![b.clone(), a.clone(), a.clone()]);
        assert_eq!(forward.interned_key(), backward.interned_key());
        assert_eq!(forward.fingerprint(), backward.fingerprint());
        let other = System::from_atoms(vec![a]);
        assert_ne!(forward.interned_key(), other.interned_key());
    }

    #[test]
    fn display_reads_naturally() {
        let mut sys = System::new();
        sys.push(Atom::gt(x(), LinExpr::constant(0)));
        sys.push(Atom::eq(y(), LinExpr::constant(2)));
        let text = format!("{sys}");
        assert!(text.contains("&&"));
        assert!(format!("{}", System::new()).contains("true"));
    }
}
