//! Symbol interning shared by the Retreet crates.
//!
//! Symbols ([`crate::term::Sym`]) are small copyable indices; the [`SymTab`]
//! maps them back to their textual names.  Interning keeps linear expressions
//! and constraint systems compact and makes symbol comparison `O(1)`.

use std::collections::HashMap;
use std::fmt;

use crate::term::Sym;

/// A string interner producing [`Sym`] handles.
///
/// The table is append-only: once a name is interned its handle never changes,
/// which lets analyses in other crates cache handles freely.
#[derive(Debug, Default, Clone)]
pub struct SymTab {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl SymTab {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing handle if it was seen before.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Sym::from_usize(self.names.len());
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Interns a name built from a prefix and a numeric suffix, e.g. `ret#3`.
    ///
    /// This is the idiom the analysis crates use for ghost variables
    /// (speculative return values of call blocks).
    pub fn intern_indexed(&mut self, prefix: &str, index: usize) -> Sym {
        let name = format!("{prefix}#{index}");
        self.intern(&name)
    }

    /// Looks up an already-interned name without inserting it.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// Returns the textual name of `sym`, if it was produced by this table.
    pub fn name(&self, sym: Sym) -> Option<&str> {
        self.names.get(sym.as_usize()).map(String::as_str)
    }

    /// Returns the textual name of `sym`, falling back to a positional
    /// placeholder for foreign symbols.
    pub fn display(&self, sym: Sym) -> String {
        match self.name(sym) {
            Some(name) => name.to_owned(),
            None => "$".to_string(),
        }
        .replace('$', &format!("sym{}", sym.as_usize()))
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Sym, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym::from_usize(i), n.as_str()))
    }
}

impl fmt::Display for SymTab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymTab[")?;
        for (i, name) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}:{name}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut tab = SymTab::new();
        let a = tab.intern("a");
        let b = tab.intern("b");
        let a2 = tab.intern("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(tab.len(), 2);
    }

    #[test]
    fn name_round_trips() {
        let mut tab = SymTab::new();
        let x = tab.intern("node.value");
        assert_eq!(tab.name(x), Some("node.value"));
        assert_eq!(tab.lookup("node.value"), Some(x));
        assert_eq!(tab.lookup("missing"), None);
    }

    #[test]
    fn indexed_interning_produces_distinct_symbols() {
        let mut tab = SymTab::new();
        let a = tab.intern_indexed("ret", 0);
        let b = tab.intern_indexed("ret", 1);
        let a2 = tab.intern_indexed("ret", 0);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(tab.name(b), Some("ret#1"));
    }

    #[test]
    fn display_handles_foreign_symbols() {
        let tab = SymTab::new();
        let foreign = Sym::from_usize(7);
        assert_eq!(tab.display(foreign), "sym7");
    }

    #[test]
    fn iteration_preserves_order() {
        let mut tab = SymTab::new();
        tab.intern("x");
        tab.intern("y");
        tab.intern("z");
        let names: Vec<&str> = tab.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }
}
