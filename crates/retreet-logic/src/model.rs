//! Integer models (variable assignments) produced by the solver.

use std::collections::BTreeMap;
use std::fmt;

use crate::constraint::System;
use crate::symtab::SymTab;
use crate::term::{LinExpr, Sym};

/// A total-by-default integer assignment: unmentioned variables are zero.
///
/// Models are used both as satisfying witnesses from the solver and as
/// concrete variable environments during speculative execution in
/// `retreet-analysis`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<Sym, i64>,
}

impl Model {
    /// The empty model (every variable is 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a model from explicit pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Sym, i64)>>(pairs: I) -> Self {
        Model {
            values: pairs.into_iter().collect(),
        }
    }

    /// Assigns `sym := value`.
    pub fn assign(&mut self, sym: Sym, value: i64) {
        self.values.insert(sym, value);
    }

    /// The value of `sym` if explicitly assigned.
    pub fn eval_var(&self, sym: Sym) -> Option<i64> {
        self.values.get(&sym).copied()
    }

    /// The value of `sym`, defaulting to zero.
    pub fn eval_var_or_zero(&self, sym: Sym) -> i64 {
        self.eval_var(sym).unwrap_or(0)
    }

    /// Evaluates a linear expression under the model (zero-defaulting).
    pub fn eval_expr(&self, expr: &LinExpr) -> i64 {
        expr.eval(|s| Some(self.eval_var_or_zero(s)))
            .expect("zero-defaulting evaluation cannot fail")
    }

    /// Checks that the model satisfies every atom of `system`.
    pub fn satisfies(&self, system: &System) -> bool {
        system
            .eval(|s| Some(self.eval_var_or_zero(s)))
            .unwrap_or(false)
    }

    /// Number of explicitly assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no variable is explicitly assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over explicit assignments.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, i64)> + '_ {
        self.values.iter().map(|(&s, &v)| (s, v))
    }

    /// Renders the model with symbol names from `syms`.
    pub fn display_with(&self, syms: &SymTab) -> String {
        let mut out = String::from("{");
        for (i, (sym, value)) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{} = {}", syms.display(sym), value));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (sym, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{sym} = {value}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Sym, i64)> for Model {
    fn from_iter<T: IntoIterator<Item = (Sym, i64)>>(iter: T) -> Self {
        Model::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Atom;

    fn s(i: usize) -> Sym {
        Sym::from_usize(i)
    }

    #[test]
    fn default_value_is_zero() {
        let m = Model::new();
        assert_eq!(m.eval_var(s(0)), None);
        assert_eq!(m.eval_var_or_zero(s(0)), 0);
    }

    #[test]
    fn expression_evaluation() {
        let m = Model::from_pairs(vec![(s(0), 2), (s(1), -3)]);
        let e = LinExpr::scaled_var(s(0), 3) + LinExpr::var(s(1)) + LinExpr::constant(1);
        assert_eq!(m.eval_expr(&e), 3 * 2 - 3 + 1);
    }

    #[test]
    fn satisfies_checks_all_atoms() {
        let m = Model::from_pairs(vec![(s(0), 5)]);
        let sat = System::from_atoms(vec![Atom::gt(LinExpr::var(s(0)), LinExpr::constant(0))]);
        let unsat = System::from_atoms(vec![Atom::lt(LinExpr::var(s(0)), LinExpr::constant(0))]);
        assert!(m.satisfies(&sat));
        assert!(!m.satisfies(&unsat));
    }

    #[test]
    fn display_with_names() {
        let mut tab = SymTab::new();
        let x = tab.intern("x");
        let m = Model::from_pairs(vec![(x, 7)]);
        assert_eq!(m.display_with(&tab), "{x = 7}");
    }
}
