//! Bridging access summaries to arithmetic feasibility queries.
//!
//! The structural (automata-based) race analysis summarizes guard atoms it
//! cannot decide structurally — `Gt` comparisons over execution-invariant
//! values such as immutable int parameters and never-written fields — as
//! named linear constraints.  This module turns such a summary into a
//! [`System`] over interned symbols and asks the Fourier–Motzkin solver
//! whether the conjunction is satisfiable at all: an unsatisfiable
//! conjunction proves the two guarded accesses can never fire together on
//! *any* tree and valuation, letting the caller discharge a race candidate
//! without enumeration.

use crate::constraint::{Atom, System};
use crate::solver::Solver;
use crate::symtab::SymTab;
use crate::term::{LinExpr, Sym};

/// Accumulates guard atoms keyed by stable names and decides whether their
/// conjunction is satisfiable.
///
/// Symbols are interned by name, so two summaries that mention the same
/// location (e.g. the field `n.cfg` read by both sides of a parallel pair)
/// share a variable — which is exactly what makes a contradiction like
/// `n.cfg > 0 ∧ ¬(n.cfg > 0)` detectable.  Callers are responsible for only
/// feeding atoms whose values are invariant over the compared executions.
#[derive(Debug, Default)]
pub struct ConjunctionBuilder {
    syms: SymTab,
    system: System,
}

impl ConjunctionBuilder {
    /// A builder with no atoms (vacuously satisfiable).
    pub fn new() -> Self {
        ConjunctionBuilder::default()
    }

    /// Interns the symbol for a named location or variable.
    pub fn sym(&mut self, name: &str) -> Sym {
        self.syms.intern(name)
    }

    /// A linear expression for a single named location.
    pub fn var(&mut self, name: &str) -> LinExpr {
        let sym = self.sym(name);
        LinExpr::var(sym)
    }

    /// Adds `expr > 0` (the surface language's `Gt` guard) or its negation.
    pub fn require_gt_zero(&mut self, expr: LinExpr, positive: bool) {
        let atom = if positive {
            Atom::gt(expr, LinExpr::zero())
        } else {
            Atom::le(expr, LinExpr::zero())
        };
        self.system.push(atom);
    }

    /// Adds an arbitrary atom.
    pub fn require(&mut self, atom: Atom) {
        self.system.push(atom);
    }

    /// Number of accumulated atoms.
    pub fn len(&self) -> usize {
        self.system.len()
    }

    /// True when no atom has been added yet.
    pub fn is_empty(&self) -> bool {
        self.system.len() == 0
    }

    /// True when some integer assignment satisfies every accumulated atom.
    ///
    /// An empty conjunction is trivially satisfiable.
    pub fn feasible(&self) -> bool {
        Solver::new().check(&self.system).is_sat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_conjunction_is_feasible() {
        assert!(ConjunctionBuilder::new().feasible());
    }

    #[test]
    fn shared_symbol_contradiction_is_infeasible() {
        let mut builder = ConjunctionBuilder::new();
        let cfg = builder.var("fld:cur:cfg");
        builder.require_gt_zero(cfg.clone(), true);
        builder.require_gt_zero(cfg, false);
        assert!(!builder.feasible());
    }

    #[test]
    fn distinct_symbols_stay_feasible() {
        let mut builder = ConjunctionBuilder::new();
        let a = builder.var("fld:cur:a");
        let b = builder.var("fld:cur:b");
        builder.require_gt_zero(a, true);
        builder.require_gt_zero(b, false);
        assert!(builder.feasible());
        assert_eq!(builder.len(), 2);
    }

    #[test]
    fn interning_is_stable_by_name() {
        let mut builder = ConjunctionBuilder::new();
        let first = builder.sym("var:x");
        let again = builder.sym("var:x");
        assert_eq!(first, again);
    }
}
