//! Interval propagation over conjunctions of linear constraints.
//!
//! This is a cheap pre-pass in front of Fourier–Motzkin elimination: it
//! narrows per-variable integer intervals by repeatedly propagating each
//! constraint, detecting many unsatisfiable systems early and providing
//! finite ranges from which the model-construction step can pick witness
//! values.

use std::collections::BTreeMap;
use std::fmt;

use crate::constraint::{Atom, Rel, System};
use crate::term::Sym;

/// An integer interval with optionally unbounded endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i64>,
}

impl Interval {
    /// The full interval (−∞, +∞).
    pub fn top() -> Self {
        Interval { lo: None, hi: None }
    }

    /// A single-point interval.
    pub fn point(value: i64) -> Self {
        Interval {
            lo: Some(value),
            hi: Some(value),
        }
    }

    /// A bounded interval `[lo, hi]`.
    pub fn bounded(lo: i64, hi: i64) -> Self {
        Interval {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// True when no integer lies in the interval.
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(lo), Some(hi)) if lo > hi)
    }

    /// True when the interval contains `value`.
    pub fn contains(&self, value: i64) -> bool {
        self.lo.is_none_or(|lo| value >= lo) && self.hi.is_none_or(|hi| value <= hi)
    }

    /// Intersection of two intervals.
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// A representative integer in the interval, if any; prefers values close
    /// to zero so counterexample models stay readable.
    pub fn witness(&self) -> Option<i64> {
        if self.is_empty() {
            return None;
        }
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) => {
                if lo <= 0 && 0 <= hi {
                    Some(0)
                } else if lo > 0 {
                    Some(lo)
                } else {
                    Some(hi)
                }
            }
            (Some(lo), None) => Some(lo.max(0)),
            (None, Some(hi)) => Some(hi.min(0)),
            (None, None) => Some(0),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Some(lo) => write!(f, "[{lo}, ")?,
            None => write!(f, "(-inf, ")?,
        }
        match self.hi {
            Some(hi) => write!(f, "{hi}]"),
            None => write!(f, "+inf)"),
        }
    }
}

/// A per-variable interval environment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalMap {
    map: BTreeMap<Sym, Interval>,
}

impl IntervalMap {
    /// Creates an environment where every variable is unconstrained.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current interval of `sym` (top if never narrowed).
    pub fn get(&self, sym: Sym) -> Interval {
        self.map.get(&sym).copied().unwrap_or_else(Interval::top)
    }

    /// Narrows the interval of `sym` by intersecting with `interval`.
    ///
    /// Returns `true` if the interval actually changed.
    pub fn narrow(&mut self, sym: Sym, interval: Interval) -> bool {
        let current = self.get(sym);
        let next = current.meet(&interval);
        if next != current {
            self.map.insert(sym, next);
            true
        } else {
            false
        }
    }

    /// True when some variable has been narrowed to the empty interval.
    pub fn has_conflict(&self) -> bool {
        self.map.values().any(Interval::is_empty)
    }

    /// Iterates over narrowed variables.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, Interval)> + '_ {
        self.map.iter().map(|(&s, &i)| (s, i))
    }

    /// Picks a witness value for `sym` within its interval.
    pub fn witness(&self, sym: Sym) -> Option<i64> {
        self.get(sym).witness()
    }
}

/// Result of running interval propagation on a [`System`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationResult {
    /// A conflict was found; the system is unsatisfiable over the integers.
    Conflict,
    /// No conflict found; the returned map holds the narrowed intervals.
    Narrowed(IntervalMap),
}

/// Propagates every atom of `system` until a fixpoint (or the iteration cap)
/// is reached.
///
/// Only atoms where a variable appears with coefficient ±1 and all other
/// variables are already bounded contribute to narrowing; everything else is
/// left to the Fourier–Motzkin step.  The propagation is sound: it never
/// reports `Conflict` for a satisfiable system.
pub fn propagate(system: &System) -> PropagationResult {
    let mut env = IntervalMap::new();
    // The fixpoint terminates because intervals only shrink, but we still cap
    // the number of sweeps to stay linear in pathological cases.
    let max_sweeps = 4 * system.len().max(4);
    for _ in 0..max_sweeps {
        let mut changed = false;
        for atom in system.atoms() {
            if atom.rel() == Rel::Ne {
                // Disequalities do not narrow intervals (they remove at most a
                // single point); handled by the solver's case split.
                continue;
            }
            for norm in atom.normalize() {
                changed |= propagate_ge(&norm, &mut env);
            }
            if env.has_conflict() {
                return PropagationResult::Conflict;
            }
        }
        if !changed {
            break;
        }
    }
    if env.has_conflict() {
        PropagationResult::Conflict
    } else {
        PropagationResult::Narrowed(env)
    }
}

/// Narrows intervals using a single `expr ≥ 0` atom.  Returns true on change.
fn propagate_ge(atom: &Atom, env: &mut IntervalMap) -> bool {
    debug_assert_eq!(atom.rel(), Rel::Ge);
    let expr = atom.expr();
    let mut changed = false;
    for (target, coeff) in expr.terms() {
        if coeff != 1 && coeff != -1 {
            continue;
        }
        // expr = coeff*target + rest ≥ 0
        //   coeff = 1:  target ≥ -rest_max is useless; target ≥ -(upper bound of rest)?
        // We need bounds of `rest = expr - coeff*target`.
        let mut rest_lo: Option<i64> = Some(expr.constant_term());
        let mut rest_hi: Option<i64> = Some(expr.constant_term());
        for (sym, c) in expr.terms() {
            if sym == target {
                continue;
            }
            let iv = env.get(sym);
            let (term_lo, term_hi) = if c >= 0 {
                (
                    iv.lo.and_then(|v| v.checked_mul(c)),
                    iv.hi.and_then(|v| v.checked_mul(c)),
                )
            } else {
                (
                    iv.hi.and_then(|v| v.checked_mul(c)),
                    iv.lo.and_then(|v| v.checked_mul(c)),
                )
            };
            rest_lo = match (rest_lo, term_lo) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            };
            rest_hi = match (rest_hi, term_hi) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            };
        }
        // coeff*target ≥ -rest, using the best available bound of rest.
        if coeff == 1 {
            // target ≥ -rest_hi  is wrong; we need target ≥ -(max of rest)?  No:
            // target ≥ -rest for every admissible rest, so the *guaranteed*
            // bound uses the maximum of rest: target ≥ -rest_max only follows
            // when rest is fixed.  The sound derivation is:
            //   target + rest ≥ 0  ⇒  target ≥ -rest  ⇒  target ≥ -(rest_hi)
            // only if rest ≤ rest_hi always holds, which it does.  However the
            // inequality must hold for the *actual* rest, so the strongest
            // sound narrowing is target ≥ -rest_hi.
            if let Some(hi) = rest_hi {
                changed |= env.narrow(
                    target,
                    Interval {
                        lo: Some(-hi),
                        hi: None,
                    },
                );
            }
        } else {
            // -target + rest ≥ 0  ⇒  target ≤ rest ≤ rest_hi
            if let Some(hi) = rest_hi {
                changed |= env.narrow(
                    target,
                    Interval {
                        lo: None,
                        hi: Some(hi),
                    },
                );
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LinExpr;

    fn sym(i: usize) -> Sym {
        Sym::from_usize(i)
    }

    fn var(i: usize) -> LinExpr {
        LinExpr::var(sym(i))
    }

    #[test]
    fn interval_meet_and_emptiness() {
        let a = Interval::bounded(0, 10);
        let b = Interval::bounded(5, 20);
        assert_eq!(a.meet(&b), Interval::bounded(5, 10));
        assert!(Interval::bounded(3, 2).is_empty());
        assert!(!Interval::top().is_empty());
    }

    #[test]
    fn interval_witness_prefers_zero() {
        assert_eq!(Interval::bounded(-5, 5).witness(), Some(0));
        assert_eq!(Interval::bounded(2, 9).witness(), Some(2));
        assert_eq!(Interval::bounded(-9, -2).witness(), Some(-2));
        assert_eq!(Interval::top().witness(), Some(0));
        assert_eq!(Interval::bounded(1, 0).witness(), None);
    }

    #[test]
    fn propagation_finds_simple_conflict() {
        // x >= 5 && x <= 3  is unsatisfiable.
        let sys = System::from_atoms(vec![
            Atom::ge(var(0), LinExpr::constant(5)),
            Atom::le(var(0), LinExpr::constant(3)),
        ]);
        assert_eq!(propagate(&sys), PropagationResult::Conflict);
    }

    #[test]
    fn propagation_narrows_bounds() {
        // 0 <= x <= 7
        let sys = System::from_atoms(vec![
            Atom::ge(var(0), LinExpr::constant(0)),
            Atom::le(var(0), LinExpr::constant(7)),
        ]);
        match propagate(&sys) {
            PropagationResult::Narrowed(env) => {
                assert_eq!(env.get(sym(0)), Interval::bounded(0, 7));
            }
            PropagationResult::Conflict => panic!("expected narrowed"),
        }
    }

    #[test]
    fn propagation_chains_through_variables() {
        // x >= 3, y >= x + 1  =>  y >= 4
        let sys = System::from_atoms(vec![
            Atom::ge(var(0), LinExpr::constant(3)),
            Atom::ge(var(1), var(0) + LinExpr::constant(1)),
        ]);
        match propagate(&sys) {
            PropagationResult::Narrowed(env) => {
                assert_eq!(env.get(sym(1)).lo, Some(4));
            }
            PropagationResult::Conflict => panic!("expected narrowed"),
        }
    }

    #[test]
    fn propagation_ignores_disequalities() {
        let sys = System::from_atoms(vec![Atom::ne(var(0), LinExpr::constant(0))]);
        assert!(matches!(propagate(&sys), PropagationResult::Narrowed(_)));
    }

    #[test]
    fn strict_bounds_are_tightened_to_integers() {
        // x > 2 && x < 4 has the single integer solution 3.
        let sys = System::from_atoms(vec![
            Atom::gt(var(0), LinExpr::constant(2)),
            Atom::lt(var(0), LinExpr::constant(4)),
        ]);
        match propagate(&sys) {
            PropagationResult::Narrowed(env) => {
                assert_eq!(env.get(sym(0)), Interval::bounded(3, 3));
            }
            PropagationResult::Conflict => panic!("expected narrowed"),
        }
    }

    #[test]
    fn empty_integer_gap_is_a_conflict() {
        // x > 2 && x < 3 has no integer solution.
        let sys = System::from_atoms(vec![
            Atom::gt(var(0), LinExpr::constant(2)),
            Atom::lt(var(0), LinExpr::constant(3)),
        ]);
        assert_eq!(propagate(&sys), PropagationResult::Conflict);
    }
}
