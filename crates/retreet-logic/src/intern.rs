//! Hash-consing of atoms and linear expressions.
//!
//! The bounded engines create the *same* constraints over and over: every
//! tree shape re-grounds the same path conditions, and every configuration
//! pair re-conjoins the same feasibility systems.  Interning maps each
//! distinct [`Atom`] / [`LinExpr`] to a small integer id exactly once, so
//!
//! * structural equality degrades to an integer compare,
//! * a [`crate::constraint::System`] has a compact *normalized key* (its
//!   sorted, deduplicated atom ids) suitable as an exact memo-cache key, and
//! * the solver memo cache ([`crate::solver::SolverCache`]) never has to hash
//!   a full expression tree on the hot path more than once per distinct atom.
//!
//! The pools are process-global and append-only: ids staying stable for
//! the lifetime of the process is what makes them usable as exact cache
//! keys (evicting pool entries while any [`crate::solver::SolverCache`]
//! still holds their ids would let a recycled id alias a different atom).
//! One program's enumeration produces a few thousand distinct atoms, so the
//! cost is a few hundred KB per distinct program verified; a process
//! serving an unbounded stream of *distinct* programs will grow the pools
//! without bound — epoch-scoped pools tied to the per-program analysis
//! context are the planned fix if that workload materializes.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::constraint::Atom;
use crate::term::LinExpr;

/// The interned identity of an [`Atom`]: equal ids ⇔ structurally equal
/// atoms (within one process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId(u32);

impl AtomId {
    /// The raw pool index.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The interned identity of a [`LinExpr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw pool index.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

struct Pool<T> {
    ids: HashMap<T, u32>,
    items: Vec<T>,
}

impl<T: Clone + Eq + std::hash::Hash> Pool<T> {
    fn new() -> Self {
        Pool {
            ids: HashMap::new(),
            items: Vec::new(),
        }
    }

    fn intern(&mut self, value: &T) -> u32 {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = u32::try_from(self.items.len()).expect("intern pool overflow");
        self.items.push(value.clone());
        self.ids.insert(value.clone(), id);
        id
    }

    fn get(&self, id: u32) -> Option<T> {
        self.items.get(id as usize).cloned()
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

fn atom_pool() -> &'static Mutex<Pool<Atom>> {
    static POOL: OnceLock<Mutex<Pool<Atom>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Pool::new()))
}

fn expr_pool() -> &'static Mutex<Pool<LinExpr>> {
    static POOL: OnceLock<Mutex<Pool<LinExpr>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Pool::new()))
}

/// Interns an atom, returning its stable process-wide id.
pub fn atom_id(atom: &Atom) -> AtomId {
    AtomId(atom_pool().lock().expect("atom pool poisoned").intern(atom))
}

/// Recovers the atom behind an id (a clone of the pooled value).
pub fn atom_of(id: AtomId) -> Option<Atom> {
    atom_pool().lock().expect("atom pool poisoned").get(id.0)
}

/// Interns a linear expression, returning its stable process-wide id.
pub fn expr_id(expr: &LinExpr) -> ExprId {
    ExprId(expr_pool().lock().expect("expr pool poisoned").intern(expr))
}

/// Recovers the expression behind an id (a clone of the pooled value).
pub fn expr_of(id: ExprId) -> Option<LinExpr> {
    expr_pool().lock().expect("expr pool poisoned").get(id.0)
}

/// Number of distinct atoms interned so far (diagnostics).
pub fn atom_pool_len() -> usize {
    atom_pool().lock().expect("atom pool poisoned").len()
}

/// Number of distinct expressions interned so far (diagnostics).
pub fn expr_pool_len() -> usize {
    expr_pool().lock().expect("expr pool poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Rel;
    use crate::term::Sym;

    fn atom(c: i64) -> Atom {
        Atom::new(
            LinExpr::var(Sym::from_usize(0)) + LinExpr::constant(c),
            Rel::Ge,
        )
    }

    #[test]
    fn equal_atoms_share_an_id() {
        let a = atom_id(&atom(3));
        let b = atom_id(&atom(3));
        assert_eq!(a, b);
        assert_eq!(atom_of(a), Some(atom(3)));
    }

    #[test]
    fn distinct_atoms_get_distinct_ids() {
        assert_ne!(atom_id(&atom(1)), atom_id(&atom(2)));
    }

    #[test]
    fn expressions_intern_independently_of_atoms() {
        let e = LinExpr::var(Sym::from_usize(1)) + LinExpr::constant(7);
        let a = expr_id(&e);
        let b = expr_id(&e);
        assert_eq!(a, b);
        assert_eq!(expr_of(a), Some(e));
        assert!(expr_pool_len() >= 1);
        assert!(atom_pool_len() >= 1 || atom_pool_len() == 0);
    }
}
