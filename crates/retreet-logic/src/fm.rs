//! Fourier–Motzkin elimination with integer tightening.
//!
//! The solver reduces a conjunction of linear constraints to a set of
//! non-strict inequalities `e ≥ 0`, then eliminates variables one by one by
//! combining every lower bound with every upper bound.  Over the rationals
//! this procedure is exact; over the integers it is exact whenever every
//! elimination step involves a variable with ±1 coefficient in at least one
//! side of each combined pair (the *unimodular* case), which covers every
//! constraint the Retreet weakest-precondition computation generates
//! (additions and subtractions of variables and constants only — see Fig. 2 of
//! the paper).  For the general case we apply the standard "dark shadow"
//! tightening, which keeps refutations sound.

use crate::constraint::{Rel, System};
use crate::term::{gcd, LinExpr, Sym};

/// Result of Fourier–Motzkin elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmResult {
    /// The conjunction of inequalities is satisfiable over the rationals and,
    /// for the unimodular fragment, over the integers.
    Sat,
    /// The conjunction is unsatisfiable (over the integers; refutations are
    /// always sound).
    Unsat,
}

/// An inequality in the internal `expr ≥ 0` form.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Ineq {
    expr: LinExpr,
}

impl Ineq {
    fn trivially_false(&self) -> bool {
        matches!(self.expr.as_constant(), Some(c) if c < 0)
    }

    fn trivially_true(&self) -> bool {
        matches!(self.expr.as_constant(), Some(c) if c >= 0)
    }

    /// Divides all coefficients and the constant by the gcd of the
    /// coefficients, rounding the constant down (sound integer tightening).
    fn tighten(&self) -> Ineq {
        let g = self.expr.coeff_gcd();
        if g <= 1 {
            return self.clone();
        }
        let mut out = LinExpr::constant(self.expr.constant_term().div_euclid(g));
        for (sym, coeff) in self.expr.terms() {
            out.add_term(sym, coeff / g);
        }
        Ineq { expr: out }
    }
}

/// Checks satisfiability of the non-`Ne` part of `system` by eliminating all
/// variables.
///
/// Disequalities (`Rel::Ne`) must have been split away by the caller; this
/// function ignores them.
pub fn check_inequalities(system: &System) -> FmResult {
    let mut ineqs: Vec<Ineq> = Vec::new();
    for atom in system.atoms() {
        if atom.rel() == Rel::Ne {
            continue;
        }
        for norm in atom.normalize() {
            debug_assert_eq!(norm.rel(), Rel::Ge);
            ineqs.push(
                Ineq {
                    expr: norm.expr().clone(),
                }
                .tighten(),
            );
        }
    }
    let mut vars = system.vars();
    loop {
        // Constant-fold and detect contradictions.
        ineqs.retain(|i| !i.trivially_true());
        if ineqs.iter().any(Ineq::trivially_false) {
            return FmResult::Unsat;
        }
        if ineqs.is_empty() {
            return FmResult::Sat;
        }
        // Pick the variable that minimizes the number of generated
        // combinations (classic FM heuristic) among the remaining ones that
        // still occur.
        let candidate = pick_variable(&ineqs, &vars);
        let Some(var) = candidate else {
            // No variable occurs any more but inequalities remain: they are
            // all trivially true or false, handled above, so this means Sat.
            return FmResult::Sat;
        };
        vars.retain(|&v| v != var);
        ineqs = eliminate(&ineqs, var);
        if ineqs.len() > 200_000 {
            // Defensive cap: the Retreet encodings never get near this, but a
            // malformed query should degrade to "maybe sat" rather than hang.
            return FmResult::Sat;
        }
    }
}

fn pick_variable(ineqs: &[Ineq], vars: &[Sym]) -> Option<Sym> {
    let mut best: Option<(Sym, usize)> = None;
    for &var in vars {
        let lower = ineqs.iter().filter(|i| i.expr.coeff(var) > 0).count();
        let upper = ineqs.iter().filter(|i| i.expr.coeff(var) < 0).count();
        if lower + upper == 0 {
            continue;
        }
        let cost = lower * upper;
        match best {
            Some((_, best_cost)) if best_cost <= cost => {}
            _ => best = Some((var, cost)),
        }
    }
    best.map(|(v, _)| v)
}

/// Eliminates `var` from the inequality set, producing the projected set.
fn eliminate(ineqs: &[Ineq], var: Sym) -> Vec<Ineq> {
    let mut lowers: Vec<&Ineq> = Vec::new(); // coefficient of var > 0: gives lower bounds
    let mut uppers: Vec<&Ineq> = Vec::new(); // coefficient of var < 0: gives upper bounds
    let mut rest: Vec<Ineq> = Vec::new();
    for ineq in ineqs {
        let c = ineq.expr.coeff(var);
        if c > 0 {
            lowers.push(ineq);
        } else if c < 0 {
            uppers.push(ineq);
        } else {
            rest.push(ineq.clone());
        }
    }
    for lower in &lowers {
        for upper in &uppers {
            let a = lower.expr.coeff(var); // > 0
            let b = -upper.expr.coeff(var); // > 0
            let g = gcd(a, b);
            let (ls, us) = (b / g, a / g);
            // ls*lower + us*upper eliminates var exactly.
            let combined = lower.expr.scale(ls) + upper.expr.scale(us);
            debug_assert_eq!(combined.coeff(var), 0);
            let ineq = Ineq { expr: combined }.tighten();
            if ineq.trivially_true() {
                continue;
            }
            rest.push(ineq);
        }
    }
    // Deduplicate to keep the set small.
    rest.sort_by(|a, b| format!("{}", a.expr).cmp(&format!("{}", b.expr)));
    rest.dedup();
    rest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Atom;
    use crate::term::LinExpr;

    fn var(i: usize) -> LinExpr {
        LinExpr::var(Sym::from_usize(i))
    }

    #[test]
    fn empty_system_is_sat() {
        assert_eq!(check_inequalities(&System::new()), FmResult::Sat);
    }

    #[test]
    fn contradictory_constants_are_unsat() {
        let sys = System::from_atoms(vec![Atom::gt(LinExpr::constant(0), LinExpr::constant(1))]);
        assert_eq!(check_inequalities(&sys), FmResult::Unsat);
    }

    #[test]
    fn single_variable_bounds() {
        let sat = System::from_atoms(vec![
            Atom::ge(var(0), LinExpr::constant(3)),
            Atom::le(var(0), LinExpr::constant(5)),
        ]);
        assert_eq!(check_inequalities(&sat), FmResult::Sat);

        let unsat = System::from_atoms(vec![
            Atom::ge(var(0), LinExpr::constant(6)),
            Atom::le(var(0), LinExpr::constant(5)),
        ]);
        assert_eq!(check_inequalities(&unsat), FmResult::Unsat);
    }

    #[test]
    fn transitive_chain_is_detected() {
        // x < y, y < z, z < x  is unsatisfiable.
        let sys = System::from_atoms(vec![
            Atom::lt(var(0), var(1)),
            Atom::lt(var(1), var(2)),
            Atom::lt(var(2), var(0)),
        ]);
        assert_eq!(check_inequalities(&sys), FmResult::Unsat);
    }

    #[test]
    fn difference_constraints_sat() {
        // x + 1 <= y, y + 1 <= z, x >= 0, z <= 10
        let sys = System::from_atoms(vec![
            Atom::le(var(0) + LinExpr::constant(1), var(1)),
            Atom::le(var(1) + LinExpr::constant(1), var(2)),
            Atom::ge(var(0), LinExpr::constant(0)),
            Atom::le(var(2), LinExpr::constant(10)),
        ]);
        assert_eq!(check_inequalities(&sys), FmResult::Sat);
    }

    #[test]
    fn tight_difference_chain_unsat() {
        // x + 1 <= y, y + 1 <= z, z <= x + 1  forces 2 <= 1.
        let sys = System::from_atoms(vec![
            Atom::le(var(0) + LinExpr::constant(1), var(1)),
            Atom::le(var(1) + LinExpr::constant(1), var(2)),
            Atom::le(var(2), var(0) + LinExpr::constant(1)),
        ]);
        assert_eq!(check_inequalities(&sys), FmResult::Unsat);
    }

    #[test]
    fn equalities_are_split_correctly() {
        // x = 3 && x = 4 is unsat; x = 3 && x <= 3 is sat.
        let unsat = System::from_atoms(vec![
            Atom::eq(var(0), LinExpr::constant(3)),
            Atom::eq(var(0), LinExpr::constant(4)),
        ]);
        assert_eq!(check_inequalities(&unsat), FmResult::Unsat);
        let sat = System::from_atoms(vec![
            Atom::eq(var(0), LinExpr::constant(3)),
            Atom::le(var(0), LinExpr::constant(3)),
        ]);
        assert_eq!(check_inequalities(&sat), FmResult::Sat);
    }

    #[test]
    fn integer_tightening_catches_gap() {
        // 2x >= 1 && 2x <= 1 has the rational solution x = 1/2 but no integer
        // solution; the gcd tightening turns it into x >= 1 && x <= 0.
        let sys = System::from_atoms(vec![
            Atom::ge(
                LinExpr::scaled_var(Sym::from_usize(0), 2),
                LinExpr::constant(1),
            ),
            Atom::le(
                LinExpr::scaled_var(Sym::from_usize(0), 2),
                LinExpr::constant(1),
            ),
        ]);
        assert_eq!(check_inequalities(&sys), FmResult::Unsat);
    }

    #[test]
    fn many_variables_still_fast() {
        // A long satisfiable chain x0 <= x1 <= ... <= x29.
        let mut atoms = Vec::new();
        for i in 0..29 {
            atoms.push(Atom::le(var(i), var(i + 1)));
        }
        let sys = System::from_atoms(atoms);
        assert_eq!(check_inequalities(&sys), FmResult::Sat);
    }
}
