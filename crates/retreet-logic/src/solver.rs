//! The public satisfiability interface.
//!
//! [`Solver::check`] decides conjunctions of linear integer constraints by
//! combining three ingredients:
//!
//! 1. **Interval propagation** ([`crate::interval`]) as a cheap filter and a
//!    source of witness candidates,
//! 2. **disequality case-splitting** — each `e ≠ 0` atom is split into
//!    `e < 0 ∨ e > 0` and the cases are explored in turn, and
//! 3. **Fourier–Motzkin elimination** ([`crate::fm`]) as the complete decision
//!    step for the remaining conjunction of inequalities.
//!
//! When a system is satisfiable the solver additionally reconstructs an
//! integer [`Model`] by projecting the system onto one variable at a time,
//! picking a witness inside the implied bounds, and substituting it back.

use crate::constraint::{Atom, Rel, System};
use crate::fm::{check_inequalities, FmResult};
use crate::interval::{propagate, PropagationResult};
use crate::model::Model;
use crate::term::{LinExpr, Sym};

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The system is satisfiable; a witness model is attached when model
    /// reconstruction succeeded (it does for the unimodular fragment used by
    /// the Retreet encodings).
    Sat(Option<Model>),
    /// The system has no integer solution.
    Unsat,
}

impl Outcome {
    /// True for either `Sat` variant.
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }

    /// True for `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, Outcome::Unsat)
    }

    /// The witness model, if one was constructed.
    pub fn model(&self) -> Option<&Model> {
        match self {
            Outcome::Sat(model) => model.as_ref(),
            Outcome::Unsat => None,
        }
    }
}

/// Configuration for the satisfiability procedure.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Maximum number of disequality atoms that are case-split exactly; any
    /// system with more is still decided soundly but models may be missed.
    pub max_disequality_splits: usize,
    /// Whether to attempt witness-model reconstruction for satisfiable
    /// systems.
    pub build_models: bool,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            max_disequality_splits: 16,
            build_models: true,
        }
    }
}

impl Solver {
    /// A solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// A solver that skips model construction (slightly faster for pure
    /// yes/no queries such as `ConsistentCondSet` membership).
    pub fn decision_only() -> Self {
        Solver {
            build_models: false,
            ..Self::default()
        }
    }

    /// Decides the conjunction `system`.
    pub fn check(&self, system: &System) -> Outcome {
        // Quick syntactic check for trivially false atoms.
        for atom in system.atoms() {
            if atom.as_trivial() == Some(false) {
                return Outcome::Unsat;
            }
        }
        // Cheap interval pre-pass.
        if let PropagationResult::Conflict = propagate(system) {
            return Outcome::Unsat;
        }
        // Split disequalities.
        let disequalities: Vec<&Atom> = system
            .atoms()
            .iter()
            .filter(|a| a.rel() == Rel::Ne && a.as_trivial().is_none())
            .collect();
        if disequalities.len() > self.max_disequality_splits {
            // Too many splits: fall back to ignoring disequalities, which is
            // sound for Sat answers (a superset system) but may report Sat for
            // an Unsat-with-disequalities system.  The Retreet encodings stay
            // far below the cap.
            return match check_inequalities(system) {
                FmResult::Sat => Outcome::Sat(None),
                FmResult::Unsat => Outcome::Unsat,
            };
        }
        self.check_with_splits(system, &disequalities, 0)
    }

    /// Convenience helper: decides whether `system ∧ extra` is satisfiable.
    pub fn check_with(&self, system: &System, extra: &[Atom]) -> Outcome {
        let mut combined = system.clone();
        for atom in extra {
            combined.push(atom.clone());
        }
        self.check(&combined)
    }

    /// Returns true when `system` entails `atom` (i.e. `system ∧ ¬atom` is
    /// unsatisfiable).
    pub fn entails(&self, system: &System, atom: &Atom) -> bool {
        let mut combined = system.clone();
        combined.push(atom.negate());
        self.check(&combined).is_unsat()
    }

    fn check_with_splits(&self, system: &System, disequalities: &[&Atom], index: usize) -> Outcome {
        if index == disequalities.len() {
            return match check_inequalities(system) {
                FmResult::Unsat => Outcome::Unsat,
                FmResult::Sat => {
                    if self.build_models {
                        Outcome::Sat(self.build_model(system))
                    } else {
                        Outcome::Sat(None)
                    }
                }
            };
        }
        let atom = disequalities[index];
        // e ≠ 0  ⇒  e ≤ -1  ∨  e ≥ 1  (integer tightening).
        for replacement in [
            Atom::new(
                atom.expr().clone().scale(-1) - LinExpr::constant(1),
                Rel::Ge,
            ),
            Atom::new(atom.expr().clone() - LinExpr::constant(1), Rel::Ge),
        ] {
            let mut case = System::new();
            for a in system.atoms() {
                if a != atom {
                    case.push(a.clone());
                }
            }
            case.push(replacement);
            let outcome = self.check_with_splits(&case, disequalities, index + 1);
            if outcome.is_sat() {
                return outcome;
            }
        }
        Outcome::Unsat
    }

    /// Reconstructs a witness model for a system already known to be
    /// satisfiable (over the rationals).  Returns `None` when the
    /// reconstruction does not land on an integer model, which cannot happen
    /// for the unimodular systems generated by the Retreet front-end but is
    /// handled defensively.
    fn build_model(&self, system: &System) -> Option<Model> {
        let mut current = system.clone();
        let mut model = Model::new();
        let mut vars = current.vars();
        // Deterministic order keeps counterexamples stable across runs.
        vars.sort_unstable();
        for var in vars {
            let (lo, hi) = implied_bounds(&current, var);
            let witness = pick_witness(lo, hi)?;
            model.assign(var, witness);
            current = current.substitute(var, &LinExpr::constant(witness));
            if check_inequalities(&current) == FmResult::Unsat {
                // The chosen integer witness is infeasible (non-unimodular
                // corner); try the other end of the interval once before
                // giving up.
                let retry = match (lo, hi) {
                    (Some(l), Some(h)) if l != h => Some(if witness == l { h } else { l }),
                    _ => None,
                };
                let retry = retry?;
                model.assign(var, retry);
                current = system_with_model_prefix(system, &model);
                if check_inequalities(&current) == FmResult::Unsat {
                    return None;
                }
            }
        }
        if model.satisfies(system) {
            Some(model)
        } else {
            None
        }
    }
}

/// Substitutes every assignment of `model` into `system`.
fn system_with_model_prefix(system: &System, model: &Model) -> System {
    let mut out = system.clone();
    for (sym, value) in model.iter() {
        out = out.substitute(sym, &LinExpr::constant(value));
    }
    out
}

/// Computes integer bounds implied for `var` by eliminating all other
/// variables from the non-disequality part of `system`.
fn implied_bounds(system: &System, var: Sym) -> (Option<i64>, Option<i64>) {
    // Project by eliminating every other variable through pairwise
    // combination — we reuse the FM machinery by substituting nothing and
    // instead reading single-variable inequalities after normalization of the
    // full projection.  For the small systems at hand a simpler sound
    // approach suffices: collect bounds from atoms where `var` is the only
    // variable, plus interval propagation results.
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    if let PropagationResult::Narrowed(env) = propagate(system) {
        let iv = env.get(var);
        lo = iv.lo;
        hi = iv.hi;
    }
    for atom in system.atoms() {
        if atom.rel() == Rel::Ne {
            continue;
        }
        for norm in atom.normalize() {
            let expr = norm.expr();
            if expr.num_vars() != 1 {
                continue;
            }
            let coeff = expr.coeff(var);
            if coeff == 0 {
                continue;
            }
            let c = expr.constant_term();
            if coeff > 0 {
                // coeff*var + c >= 0  =>  var >= ceil(-c / coeff)
                let bound =
                    (-c).div_euclid(coeff) + if (-c).rem_euclid(coeff) != 0 { 1 } else { 0 };
                lo = Some(lo.map_or(bound, |b| b.max(bound)));
            } else {
                // coeff*var + c >= 0  =>  var <= floor(c / -coeff)
                let bound = c.div_euclid(-coeff);
                hi = Some(hi.map_or(bound, |b| b.min(bound)));
            }
        }
    }
    (lo, hi)
}

fn pick_witness(lo: Option<i64>, hi: Option<i64>) -> Option<i64> {
    match (lo, hi) {
        (Some(l), Some(h)) if l > h => None,
        (Some(l), Some(h)) => Some(if l <= 0 && 0 <= h {
            0
        } else if l > 0 {
            l
        } else {
            h
        }),
        (Some(l), None) => Some(l.max(0)),
        (None, Some(h)) => Some(h.min(0)),
        (None, None) => Some(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symtab::SymTab;

    fn setup() -> (SymTab, Sym, Sym, Sym) {
        let mut tab = SymTab::new();
        let x = tab.intern("x");
        let y = tab.intern("y");
        let z = tab.intern("z");
        (tab, x, y, z)
    }

    #[test]
    fn empty_system_sat_with_empty_model() {
        let outcome = Solver::new().check(&System::new());
        assert!(outcome.is_sat());
        assert!(outcome.model().unwrap().is_empty());
    }

    #[test]
    fn bounded_system_produces_verified_model() {
        let (_, x, y, _) = setup();
        let sys = System::from_atoms(vec![
            Atom::gt(LinExpr::var(x), LinExpr::var(y)),
            Atom::ge(LinExpr::var(y), LinExpr::constant(3)),
            Atom::le(LinExpr::var(x), LinExpr::constant(4)),
        ]);
        let outcome = Solver::new().check(&sys);
        let model = outcome.model().expect("model");
        assert!(model.satisfies(&sys));
        assert_eq!(model.eval_var(x), Some(4));
        assert_eq!(model.eval_var(y), Some(3));
    }

    #[test]
    fn unsat_cycle() {
        let (_, x, y, z) = setup();
        let sys = System::from_atoms(vec![
            Atom::lt(LinExpr::var(x), LinExpr::var(y)),
            Atom::lt(LinExpr::var(y), LinExpr::var(z)),
            Atom::lt(LinExpr::var(z), LinExpr::var(x)),
        ]);
        assert!(Solver::new().check(&sys).is_unsat());
    }

    #[test]
    fn disequality_forces_split() {
        let (_, x, _, _) = setup();
        // 0 <= x <= 1 && x != 0  =>  x = 1.
        let sys = System::from_atoms(vec![
            Atom::ge(LinExpr::var(x), LinExpr::constant(0)),
            Atom::le(LinExpr::var(x), LinExpr::constant(1)),
            Atom::ne(LinExpr::var(x), LinExpr::constant(0)),
        ]);
        let outcome = Solver::new().check(&sys);
        assert!(outcome.is_sat());
        if let Some(model) = outcome.model() {
            assert_eq!(model.eval_var(x), Some(1));
        }
    }

    #[test]
    fn disequality_makes_point_unsat() {
        let (_, x, _, _) = setup();
        // x = 5 && x != 5 is unsat.
        let sys = System::from_atoms(vec![
            Atom::eq(LinExpr::var(x), LinExpr::constant(5)),
            Atom::ne(LinExpr::var(x), LinExpr::constant(5)),
        ]);
        assert!(Solver::new().check(&sys).is_unsat());
    }

    #[test]
    fn entailment() {
        let (_, x, y, _) = setup();
        let sys = System::from_atoms(vec![
            Atom::ge(LinExpr::var(x), LinExpr::var(y) + LinExpr::constant(1)),
            Atom::ge(LinExpr::var(y), LinExpr::constant(0)),
        ]);
        let solver = Solver::new();
        assert!(solver.entails(&sys, &Atom::gt(LinExpr::var(x), LinExpr::constant(0))));
        assert!(!solver.entails(&sys, &Atom::gt(LinExpr::var(y), LinExpr::constant(0))));
    }

    #[test]
    fn check_with_extra_atoms() {
        let (_, x, _, _) = setup();
        let sys = System::from_atoms(vec![Atom::ge(LinExpr::var(x), LinExpr::constant(0))]);
        let solver = Solver::new();
        assert!(solver
            .check_with(&sys, &[Atom::le(LinExpr::var(x), LinExpr::constant(5))])
            .is_sat());
        assert!(solver
            .check_with(&sys, &[Atom::lt(LinExpr::var(x), LinExpr::constant(0))])
            .is_unsat());
    }

    #[test]
    fn decision_only_skips_models() {
        let (_, x, _, _) = setup();
        let sys = System::from_atoms(vec![Atom::ge(LinExpr::var(x), LinExpr::constant(0))]);
        let outcome = Solver::decision_only().check(&sys);
        assert!(outcome.is_sat());
        assert!(outcome.model().is_none());
    }

    #[test]
    fn path_condition_shape_from_the_paper() {
        // The example in §3.1: PathCond ≡ M(p) + 1 ≥ M(r0)  — satisfiable,
        // and its conjunction with M(p) + 1 < M(r0) is not.
        let mut tab = SymTab::new();
        let p = tab.intern("p");
        let r0 = tab.intern("r0");
        let cond = Atom::ge(LinExpr::var(p) + LinExpr::constant(1), LinExpr::var(r0));
        let sys = System::from_atoms(vec![cond.clone()]);
        let solver = Solver::new();
        assert!(solver.check(&sys).is_sat());
        assert!(solver.check_with(&sys, &[cond.negate()]).is_unsat());
    }
}
