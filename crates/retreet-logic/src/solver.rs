//! The public satisfiability interface.
//!
//! [`Solver::check`] decides conjunctions of linear integer constraints by
//! combining three ingredients:
//!
//! 1. **Interval propagation** ([`crate::interval`]) as a cheap filter and a
//!    source of witness candidates,
//! 2. **disequality case-splitting** — each `e ≠ 0` atom is split into
//!    `e < 0 ∨ e > 0` and the cases are explored in turn, and
//! 3. **Fourier–Motzkin elimination** ([`crate::fm`]) as the complete decision
//!    step for the remaining conjunction of inequalities.
//!
//! When a system is satisfiable the solver additionally reconstructs an
//! integer [`Model`] by projecting the system onto one variable at a time,
//! picking a witness inside the implied bounds, and substituting it back.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::constraint::{Atom, Rel, System};
use crate::fm::{check_inequalities, FmResult};
use crate::intern::AtomId;
use crate::interval::{propagate, PropagationResult};
use crate::model::Model;
use crate::term::{LinExpr, Sym};

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The system is satisfiable; a witness model is attached when model
    /// reconstruction succeeded (it does for the unimodular fragment used by
    /// the Retreet encodings).
    Sat(Option<Model>),
    /// The system has no integer solution.
    Unsat,
}

impl Outcome {
    /// True for either `Sat` variant.
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }

    /// True for `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, Outcome::Unsat)
    }

    /// The witness model, if one was constructed.
    pub fn model(&self) -> Option<&Model> {
        match self {
            Outcome::Sat(model) => model.as_ref(),
            Outcome::Unsat => None,
        }
    }
}

/// Configuration for the satisfiability procedure.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Maximum number of disequality atoms that are case-split exactly; any
    /// system with more is still decided soundly but models may be missed.
    pub max_disequality_splits: usize,
    /// Whether to attempt witness-model reconstruction for satisfiable
    /// systems.
    pub build_models: bool,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            max_disequality_splits: 16,
            build_models: true,
        }
    }
}

/// A memo cache mapping *normalized systems* (their sorted, deduplicated
/// interned atom ids — see [`System::interned_key`]) to solver [`Outcome`]s.
///
/// The bounded engines discharge the same conjunctions thousands of times:
/// every tree shape re-grounds the same path conditions, and the O(n²)
/// configuration-pair loops re-conjoin the same feasibility systems.  With a
/// shared cache each distinct conjunction is decided exactly once per
/// process; every repeat is a hash lookup.
///
/// [`Solver::check_cached`] additionally splits a system into its
/// variable-connected *components* and caches each component separately, so
/// extending an already-checked system with constraints over fresh variables
/// never re-solves the untouched part.
///
/// Keys are exact (interned atom id sets plus the solver configuration), so
/// a hit can never return the verdict of a different conjunction.  The cache
/// is thread-safe; share one per analysis run (or longer).
#[derive(Debug, Default)]
pub struct SolverCache {
    map: Mutex<HashMap<(Vec<AtomId>, u32), Outcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss/entry counters of a [`SolverCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverCacheStats {
    /// Component checks answered from the cache.
    pub hits: u64,
    /// Component checks that ran the decision procedure.
    pub misses: u64,
    /// Distinct components stored.
    pub entries: usize,
}

impl SolverCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current hit/miss/entry counters.
    pub fn stats(&self) -> SolverCacheStats {
        SolverCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("solver cache poisoned").len(),
        }
    }

    fn get(&self, key: &(Vec<AtomId>, u32)) -> Option<Outcome> {
        let map = self.map.lock().expect("solver cache poisoned");
        match map.get(key) {
            Some(outcome) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(outcome.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: (Vec<AtomId>, u32), outcome: Outcome) {
        self.map
            .lock()
            .expect("solver cache poisoned")
            .insert(key, outcome);
    }
}

impl Solver {
    /// A solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// A solver that skips model construction (slightly faster for pure
    /// yes/no queries such as `ConsistentCondSet` membership).
    pub fn decision_only() -> Self {
        Solver {
            build_models: false,
            ..Self::default()
        }
    }

    /// Decides the conjunction `system`.
    pub fn check(&self, system: &System) -> Outcome {
        // Quick syntactic check for trivially false atoms.
        for atom in system.atoms() {
            if atom.as_trivial() == Some(false) {
                return Outcome::Unsat;
            }
        }
        // Cheap interval pre-pass.
        if let PropagationResult::Conflict = propagate(system) {
            return Outcome::Unsat;
        }
        // Split disequalities.
        let disequalities: Vec<&Atom> = system
            .atoms()
            .iter()
            .filter(|a| a.rel() == Rel::Ne && a.as_trivial().is_none())
            .collect();
        if disequalities.len() > self.max_disequality_splits {
            // Too many splits: fall back to ignoring disequalities, which is
            // sound for Sat answers (a superset system) but may report Sat for
            // an Unsat-with-disequalities system.  The Retreet encodings stay
            // far below the cap.
            return match check_inequalities(system) {
                FmResult::Sat => Outcome::Sat(None),
                FmResult::Unsat => Outcome::Unsat,
            };
        }
        self.check_with_splits(system, &disequalities, 0)
    }

    /// Like [`Self::check`], but memoized through `cache` and decomposed
    /// into variable-connected components first.
    ///
    /// Two atoms belong to the same component when they (transitively) share
    /// a variable; a conjunction is satisfiable iff every component is.
    /// Decomposition makes the memoization *incremental*: conjoining two
    /// already-checked systems (as the configuration-pair loops do) mostly
    /// re-encounters components that are already in the cache, and only the
    /// components actually connected by shared variables are re-decided.
    pub fn check_cached(&self, system: &System, cache: &SolverCache) -> Outcome {
        let cfg = self.cache_tag();
        let mut models: Option<Vec<Model>> = self.build_models.then(Vec::new);
        for component in components(system) {
            let outcome = match component {
                Component::TriviallyFalse => return Outcome::Unsat,
                Component::TriviallyTrue => continue,
                Component::System(subsystem) => {
                    let key = (subsystem.interned_key(), cfg);
                    match cache.get(&key) {
                        Some(outcome) => outcome,
                        None => {
                            let outcome = self.check(&subsystem);
                            cache.insert(key, outcome.clone());
                            outcome
                        }
                    }
                }
            };
            match outcome {
                Outcome::Unsat => return Outcome::Unsat,
                Outcome::Sat(Some(model)) => {
                    if let Some(models) = models.as_mut() {
                        models.push(model);
                    }
                }
                Outcome::Sat(None) => models = None,
            }
        }
        let merged = models.map(|parts| {
            let mut model = Model::new();
            for part in parts {
                for (sym, value) in part.iter() {
                    model.assign(sym, value);
                }
            }
            model
        });
        Outcome::Sat(merged)
    }

    /// The part of the solver configuration that can change an outcome —
    /// mixed into [`SolverCache`] keys so differently-configured solvers can
    /// share one cache exactly.
    fn cache_tag(&self) -> u32 {
        (u32::try_from(self.max_disequality_splits.min(0x7fff_ffff)).unwrap_or(0x7fff_ffff) << 1)
            | u32::from(self.build_models)
    }

    /// Convenience helper: decides whether `system ∧ extra` is satisfiable.
    pub fn check_with(&self, system: &System, extra: &[Atom]) -> Outcome {
        let mut combined = system.clone();
        for atom in extra {
            combined.push(atom.clone());
        }
        self.check(&combined)
    }

    /// Returns true when `system` entails `atom` (i.e. `system ∧ ¬atom` is
    /// unsatisfiable).
    pub fn entails(&self, system: &System, atom: &Atom) -> bool {
        let mut combined = system.clone();
        combined.push(atom.negate());
        self.check(&combined).is_unsat()
    }

    fn check_with_splits(&self, system: &System, disequalities: &[&Atom], index: usize) -> Outcome {
        if index == disequalities.len() {
            return match check_inequalities(system) {
                FmResult::Unsat => Outcome::Unsat,
                FmResult::Sat => {
                    if self.build_models {
                        Outcome::Sat(self.build_model(system))
                    } else {
                        Outcome::Sat(None)
                    }
                }
            };
        }
        let atom = disequalities[index];
        // e ≠ 0  ⇒  e ≤ -1  ∨  e ≥ 1  (integer tightening).
        for replacement in [
            Atom::new(
                atom.expr().clone().scale(-1) - LinExpr::constant(1),
                Rel::Ge,
            ),
            Atom::new(atom.expr().clone() - LinExpr::constant(1), Rel::Ge),
        ] {
            let mut case = System::new();
            for a in system.atoms() {
                if a != atom {
                    case.push(a.clone());
                }
            }
            case.push(replacement);
            let outcome = self.check_with_splits(&case, disequalities, index + 1);
            if outcome.is_sat() {
                return outcome;
            }
        }
        Outcome::Unsat
    }

    /// Reconstructs a witness model for a system already known to be
    /// satisfiable (over the rationals).  Returns `None` when the
    /// reconstruction does not land on an integer model, which cannot happen
    /// for the unimodular systems generated by the Retreet front-end but is
    /// handled defensively.
    fn build_model(&self, system: &System) -> Option<Model> {
        let mut current = system.clone();
        let mut model = Model::new();
        let mut vars = current.vars();
        // Deterministic order keeps counterexamples stable across runs.
        vars.sort_unstable();
        for var in vars {
            let (lo, hi) = implied_bounds(&current, var);
            let witness = pick_witness(lo, hi)?;
            model.assign(var, witness);
            current = current.substitute(var, &LinExpr::constant(witness));
            if check_inequalities(&current) == FmResult::Unsat {
                // The chosen integer witness is infeasible (non-unimodular
                // corner); try the other end of the interval once before
                // giving up.
                let retry = match (lo, hi) {
                    (Some(l), Some(h)) if l != h => Some(if witness == l { h } else { l }),
                    _ => None,
                };
                let retry = retry?;
                model.assign(var, retry);
                current = system_with_model_prefix(system, &model);
                if check_inequalities(&current) == FmResult::Unsat {
                    return None;
                }
            }
        }
        if model.satisfies(system) {
            Some(model)
        } else {
            None
        }
    }
}

/// One variable-connected component of a system.
enum Component {
    /// A constant atom that holds (contributes nothing).
    TriviallyTrue,
    /// A constant atom that fails (the whole system is unsatisfiable).
    TriviallyFalse,
    /// A sub-conjunction whose atoms transitively share variables.
    System(System),
}

/// Splits a conjunction into variable-connected components (union–find over
/// the atoms' variables).  Constant atoms are folded immediately.  The
/// decomposition is deterministic: components come out ordered by the first
/// atom of each component in the original system.
fn components(system: &System) -> Vec<Component> {
    let atoms = system.atoms();
    let mut out = Vec::new();
    // Union–find over atom indices, linked through shared variables.
    let mut parent: Vec<usize> = (0..atoms.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let mut owner_of_var: HashMap<Sym, usize> = HashMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        if atom.as_trivial().is_some() {
            continue;
        }
        for var in atom.vars() {
            match owner_of_var.get(&var) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        // Keep the smaller index as the root so component
                        // order follows the original atom order.
                        let (lo, hi) = if ri < rj { (ri, rj) } else { (rj, ri) };
                        parent[hi] = lo;
                    }
                }
                None => {
                    owner_of_var.insert(var, i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, System> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    for (i, atom) in atoms.iter().enumerate() {
        match atom.as_trivial() {
            Some(true) => out.push(Component::TriviallyTrue),
            Some(false) => {
                out.push(Component::TriviallyFalse);
            }
            None => {
                let root = find(&mut parent, i);
                groups
                    .entry(root)
                    .or_insert_with(|| {
                        order.push(root);
                        System::new()
                    })
                    .push(atom.clone());
            }
        }
    }
    for root in order {
        out.push(Component::System(groups.remove(&root).expect("grouped")));
    }
    out
}

/// Substitutes every assignment of `model` into `system`.
fn system_with_model_prefix(system: &System, model: &Model) -> System {
    let mut out = system.clone();
    for (sym, value) in model.iter() {
        out = out.substitute(sym, &LinExpr::constant(value));
    }
    out
}

/// Computes integer bounds implied for `var` by eliminating all other
/// variables from the non-disequality part of `system`.
fn implied_bounds(system: &System, var: Sym) -> (Option<i64>, Option<i64>) {
    // Project by eliminating every other variable through pairwise
    // combination — we reuse the FM machinery by substituting nothing and
    // instead reading single-variable inequalities after normalization of the
    // full projection.  For the small systems at hand a simpler sound
    // approach suffices: collect bounds from atoms where `var` is the only
    // variable, plus interval propagation results.
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    if let PropagationResult::Narrowed(env) = propagate(system) {
        let iv = env.get(var);
        lo = iv.lo;
        hi = iv.hi;
    }
    for atom in system.atoms() {
        if atom.rel() == Rel::Ne {
            continue;
        }
        for norm in atom.normalize() {
            let expr = norm.expr();
            if expr.num_vars() != 1 {
                continue;
            }
            let coeff = expr.coeff(var);
            if coeff == 0 {
                continue;
            }
            let c = expr.constant_term();
            if coeff > 0 {
                // coeff*var + c >= 0  =>  var >= ceil(-c / coeff)
                let bound =
                    (-c).div_euclid(coeff) + if (-c).rem_euclid(coeff) != 0 { 1 } else { 0 };
                lo = Some(lo.map_or(bound, |b| b.max(bound)));
            } else {
                // coeff*var + c >= 0  =>  var <= floor(c / -coeff)
                let bound = c.div_euclid(-coeff);
                hi = Some(hi.map_or(bound, |b| b.min(bound)));
            }
        }
    }
    (lo, hi)
}

fn pick_witness(lo: Option<i64>, hi: Option<i64>) -> Option<i64> {
    match (lo, hi) {
        (Some(l), Some(h)) if l > h => None,
        (Some(l), Some(h)) => Some(if l <= 0 && 0 <= h {
            0
        } else if l > 0 {
            l
        } else {
            h
        }),
        (Some(l), None) => Some(l.max(0)),
        (None, Some(h)) => Some(h.min(0)),
        (None, None) => Some(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symtab::SymTab;

    fn setup() -> (SymTab, Sym, Sym, Sym) {
        let mut tab = SymTab::new();
        let x = tab.intern("x");
        let y = tab.intern("y");
        let z = tab.intern("z");
        (tab, x, y, z)
    }

    #[test]
    fn empty_system_sat_with_empty_model() {
        let outcome = Solver::new().check(&System::new());
        assert!(outcome.is_sat());
        assert!(outcome.model().unwrap().is_empty());
    }

    #[test]
    fn bounded_system_produces_verified_model() {
        let (_, x, y, _) = setup();
        let sys = System::from_atoms(vec![
            Atom::gt(LinExpr::var(x), LinExpr::var(y)),
            Atom::ge(LinExpr::var(y), LinExpr::constant(3)),
            Atom::le(LinExpr::var(x), LinExpr::constant(4)),
        ]);
        let outcome = Solver::new().check(&sys);
        let model = outcome.model().expect("model");
        assert!(model.satisfies(&sys));
        assert_eq!(model.eval_var(x), Some(4));
        assert_eq!(model.eval_var(y), Some(3));
    }

    #[test]
    fn unsat_cycle() {
        let (_, x, y, z) = setup();
        let sys = System::from_atoms(vec![
            Atom::lt(LinExpr::var(x), LinExpr::var(y)),
            Atom::lt(LinExpr::var(y), LinExpr::var(z)),
            Atom::lt(LinExpr::var(z), LinExpr::var(x)),
        ]);
        assert!(Solver::new().check(&sys).is_unsat());
    }

    #[test]
    fn disequality_forces_split() {
        let (_, x, _, _) = setup();
        // 0 <= x <= 1 && x != 0  =>  x = 1.
        let sys = System::from_atoms(vec![
            Atom::ge(LinExpr::var(x), LinExpr::constant(0)),
            Atom::le(LinExpr::var(x), LinExpr::constant(1)),
            Atom::ne(LinExpr::var(x), LinExpr::constant(0)),
        ]);
        let outcome = Solver::new().check(&sys);
        assert!(outcome.is_sat());
        if let Some(model) = outcome.model() {
            assert_eq!(model.eval_var(x), Some(1));
        }
    }

    #[test]
    fn disequality_makes_point_unsat() {
        let (_, x, _, _) = setup();
        // x = 5 && x != 5 is unsat.
        let sys = System::from_atoms(vec![
            Atom::eq(LinExpr::var(x), LinExpr::constant(5)),
            Atom::ne(LinExpr::var(x), LinExpr::constant(5)),
        ]);
        assert!(Solver::new().check(&sys).is_unsat());
    }

    #[test]
    fn entailment() {
        let (_, x, y, _) = setup();
        let sys = System::from_atoms(vec![
            Atom::ge(LinExpr::var(x), LinExpr::var(y) + LinExpr::constant(1)),
            Atom::ge(LinExpr::var(y), LinExpr::constant(0)),
        ]);
        let solver = Solver::new();
        assert!(solver.entails(&sys, &Atom::gt(LinExpr::var(x), LinExpr::constant(0))));
        assert!(!solver.entails(&sys, &Atom::gt(LinExpr::var(y), LinExpr::constant(0))));
    }

    #[test]
    fn check_with_extra_atoms() {
        let (_, x, _, _) = setup();
        let sys = System::from_atoms(vec![Atom::ge(LinExpr::var(x), LinExpr::constant(0))]);
        let solver = Solver::new();
        assert!(solver
            .check_with(&sys, &[Atom::le(LinExpr::var(x), LinExpr::constant(5))])
            .is_sat());
        assert!(solver
            .check_with(&sys, &[Atom::lt(LinExpr::var(x), LinExpr::constant(0))])
            .is_unsat());
    }

    #[test]
    fn decision_only_skips_models() {
        let (_, x, _, _) = setup();
        let sys = System::from_atoms(vec![Atom::ge(LinExpr::var(x), LinExpr::constant(0))]);
        let outcome = Solver::decision_only().check(&sys);
        assert!(outcome.is_sat());
        assert!(outcome.model().is_none());
    }

    #[test]
    fn cached_check_agrees_with_direct_check() {
        let (_, x, y, z) = setup();
        let cache = SolverCache::new();
        let systems = vec![
            System::new(),
            System::from_atoms(vec![
                Atom::gt(LinExpr::var(x), LinExpr::var(y)),
                Atom::ge(LinExpr::var(y), LinExpr::constant(3)),
                Atom::le(LinExpr::var(x), LinExpr::constant(4)),
            ]),
            System::from_atoms(vec![
                Atom::lt(LinExpr::var(x), LinExpr::var(y)),
                Atom::lt(LinExpr::var(y), LinExpr::var(z)),
                Atom::lt(LinExpr::var(z), LinExpr::var(x)),
            ]),
            System::from_atoms(vec![
                Atom::eq(LinExpr::var(x), LinExpr::constant(5)),
                Atom::ne(LinExpr::var(x), LinExpr::constant(5)),
            ]),
            System::from_atoms(vec![Atom::falsity()]),
        ];
        for solver in [Solver::new(), Solver::decision_only()] {
            for sys in &systems {
                let direct = solver.check(sys);
                let cached = solver.check_cached(sys, &cache);
                assert_eq!(direct.is_sat(), cached.is_sat(), "system {sys}");
                if let Some(model) = cached.model() {
                    assert!(model.satisfies(sys));
                }
            }
        }
    }

    #[test]
    fn cache_splits_independent_components() {
        let (_, x, y, _) = setup();
        let cache = SolverCache::new();
        let solver = Solver::decision_only();
        let a = System::from_atoms(vec![Atom::ge(LinExpr::var(x), LinExpr::constant(0))]);
        let b = System::from_atoms(vec![Atom::ge(LinExpr::var(y), LinExpr::constant(1))]);
        assert!(solver.check_cached(&a, &cache).is_sat());
        assert!(solver.check_cached(&b, &cache).is_sat());
        let before = cache.stats();
        // The conjunction decomposes into the two already-cached components:
        // no new solver run.
        let mut ab = a.clone();
        ab.extend_from(&b);
        assert!(solver.check_cached(&ab, &cache).is_sat());
        let after = cache.stats();
        assert_eq!(before.misses, after.misses);
        assert_eq!(after.hits, before.hits + 2);
    }

    #[test]
    fn cached_models_merge_across_components() {
        let (_, x, y, _) = setup();
        let cache = SolverCache::new();
        let sys = System::from_atoms(vec![
            Atom::ge(LinExpr::var(x), LinExpr::constant(7)),
            Atom::le(LinExpr::var(y), LinExpr::constant(-2)),
        ]);
        let outcome = Solver::new().check_cached(&sys, &cache);
        let model = outcome.model().expect("merged model");
        assert!(model.satisfies(&sys));
    }

    #[test]
    fn path_condition_shape_from_the_paper() {
        // The example in §3.1: PathCond ≡ M(p) + 1 ≥ M(r0)  — satisfiable,
        // and its conjunction with M(p) + 1 < M(r0) is not.
        let mut tab = SymTab::new();
        let p = tab.intern("p");
        let r0 = tab.intern("r0");
        let cond = Atom::ge(LinExpr::var(p) + LinExpr::constant(1), LinExpr::var(r0));
        let sys = System::from_atoms(vec![cond.clone()]);
        let solver = Solver::new();
        assert!(solver.check(&sys).is_sat());
        assert!(solver.check_with(&sys, &[cond.negate()]).is_unsat());
    }
}
