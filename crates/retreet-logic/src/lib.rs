//! # retreet-logic — linear integer arithmetic substrate
//!
//! The Retreet paper (§4) assumes that the consistency of a set of branch
//! conditions (`ConsistentCondSet`) and the feasibility of path conditions can
//! be discharged by an SMT solver for linear integer arithmetic.  This crate
//! is the from-scratch substrate that plays that role in the reproduction.
//!
//! The crate provides:
//!
//! * [`term`] — interned symbols ([`term::Sym`]) and linear expressions
//!   ([`term::LinExpr`]) with exact `i64` coefficients.
//! * [`constraint`] — atomic constraints ([`constraint::Atom`]) of the form
//!   `e ⋈ 0` for `⋈ ∈ {=, ≠, ≤, <, ≥, >}` and conjunctive constraint systems
//!   ([`constraint::System`]).
//! * [`interval`] — a cheap interval-propagation pre-pass that catches most
//!   trivially (un)satisfiable systems.
//! * [`fm`] — Fourier–Motzkin variable elimination with integer tightening,
//!   the complete decision step for the conjunctions the Retreet encoding
//!   produces.
//! * [`solver`] — the public entry point: [`solver::Solver`] combines interval
//!   propagation, equality substitution and Fourier–Motzkin elimination and
//!   answers sat/unsat, optionally with a model.  [`solver::SolverCache`]
//!   memoizes outcomes per normalized system, decomposed into
//!   variable-connected components.
//! * [`intern`] — hash-consing of atoms and expressions; the source of the
//!   normalized system keys the memo cache is exact over.
//! * [`incremental`] — [`incremental::IncrementalSolver`], push/pop
//!   assumption frames with cached-UNSAT prefix pruning (the DFS engine's
//!   backtracking interface).
//! * [`symtab`] — a small symbol interner shared by the other Retreet crates.
//! * [`bridge`] — [`bridge::ConjunctionBuilder`], the summary→formula bridge
//!   the automata-based race analysis uses to discharge arithmetic guard
//!   conjunctions over execution-invariant values.
//!
//! # Example
//!
//! ```
//! use retreet_logic::prelude::*;
//!
//! let mut syms = SymTab::new();
//! let x = syms.intern("x");
//! let y = syms.intern("y");
//!
//! // x > y  ∧  y ≥ 3  ∧  x ≤ 4   has the single integer model x = 4, y = 3.
//! let mut sys = System::new();
//! sys.push(Atom::gt(LinExpr::var(x), LinExpr::var(y)));
//! sys.push(Atom::ge(LinExpr::var(y), LinExpr::constant(3)));
//! sys.push(Atom::le(LinExpr::var(x), LinExpr::constant(4)));
//!
//! let outcome = Solver::new().check(&sys);
//! assert!(outcome.is_sat());
//! let model = outcome.model().unwrap();
//! assert_eq!(model.eval_var(x), Some(4));
//! assert_eq!(model.eval_var(y), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod constraint;
pub mod fm;
pub mod incremental;
pub mod intern;
pub mod interval;
pub mod model;
pub mod solver;
pub mod symtab;
pub mod term;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::constraint::{Atom, Rel, System};
    pub use crate::incremental::IncrementalSolver;
    pub use crate::intern::{AtomId, ExprId};
    pub use crate::interval::{Interval, IntervalMap};
    pub use crate::model::Model;
    pub use crate::solver::{Outcome, Solver, SolverCache};
    pub use crate::symtab::SymTab;
    pub use crate::term::{LinExpr, Sym};
}

pub use bridge::ConjunctionBuilder;
pub use constraint::{Atom, Rel, System};
pub use incremental::IncrementalSolver;
pub use intern::{AtomId, ExprId};
pub use model::Model;
pub use solver::{Outcome, Solver, SolverCache, SolverCacheStats};
pub use symtab::SymTab;
pub use term::{LinExpr, Sym};
