//! Incremental satisfiability over push/pop assumption frames.
//!
//! The configuration DFS in `retreet-analysis` extends one constraint
//! system along every branch of the search tree: each recursion step
//! conjoins the atoms of one more intra-procedural path and re-asks
//! "still satisfiable?".  Re-solving the whole conjunction from scratch at
//! every step is what made the bounded engines quadratic-ish in practice.
//!
//! [`IncrementalSolver`] keeps the conjunction as a stack of *frames*:
//!
//! * [`IncrementalSolver::push`] opens a frame, [`IncrementalSolver::pop`]
//!   drops every atom assumed since the matching push — the DFS backtrack
//!   operation, O(1) amortized, no system cloning;
//! * [`IncrementalSolver::check`] decides the current conjunction through a
//!   shared [`SolverCache`], decomposed into variable-connected components —
//!   so the already-SAT prefix of the stack is never re-solved (its
//!   components hit the cache) and only components touched by newly assumed
//!   atoms run the decision procedure;
//! * once a prefix is known UNSAT, every deeper `check` is answered
//!   immediately without looking at the solver at all (extension pruning:
//!   a superset of an unsatisfiable set is unsatisfiable).

use crate::constraint::{Atom, System};
use crate::solver::{Outcome, Solver, SolverCache};

/// A push/pop satisfiability stack over a shared [`SolverCache`].
pub struct IncrementalSolver<'c> {
    solver: Solver,
    cache: &'c SolverCache,
    atoms: Vec<Atom>,
    /// Atom-stack length at each `push`.
    frames: Vec<usize>,
    /// `Some(frame_depth)` once the conjunction was found UNSAT at that
    /// frame depth; cleared when popping above it.
    unsat_at: Option<usize>,
}

impl<'c> IncrementalSolver<'c> {
    /// A fresh stack deciding with `solver` through `cache`.
    pub fn new(solver: Solver, cache: &'c SolverCache) -> Self {
        IncrementalSolver {
            solver,
            cache,
            atoms: Vec::new(),
            frames: Vec::new(),
            unsat_at: None,
        }
    }

    /// Opens an assumption frame.
    pub fn push(&mut self) {
        self.frames.push(self.atoms.len());
    }

    /// Drops every atom assumed since the matching [`Self::push`].
    ///
    /// # Panics
    /// Panics when there is no open frame.
    pub fn pop(&mut self) {
        let mark = self.frames.pop().expect("pop without matching push");
        self.atoms.truncate(mark);
        if self.unsat_at.is_some_and(|depth| self.frames.len() < depth) {
            self.unsat_at = None;
        }
    }

    /// Number of open frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Assumes one atom in the current frame.
    pub fn assume(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// Assumes every atom of `system` in the current frame.
    pub fn assume_all(&mut self, system: &System) {
        self.atoms.extend(system.atoms().iter().cloned());
    }

    /// The current conjunction as an owned [`System`] (used to attach the
    /// constraints to an enumerated configuration at a DFS leaf).
    pub fn current_system(&self) -> System {
        System::from_atoms(self.atoms.iter().cloned())
    }

    /// Decides the current conjunction.
    ///
    /// UNSAT prefixes are pruned: once a check at some frame depth answered
    /// UNSAT, every deeper (or same-depth, extended) conjunction is UNSAT
    /// without re-solving.  SAT prefixes are never re-solved either — their
    /// variable-connected components hit the shared cache.
    pub fn check(&mut self) -> Outcome {
        if self
            .unsat_at
            .is_some_and(|depth| self.frames.len() >= depth)
        {
            return Outcome::Unsat;
        }
        let outcome = self.solver.check_cached(&self.current_system(), self.cache);
        if outcome.is_unsat() {
            self.unsat_at = Some(self.frames.len());
        }
        outcome
    }

    /// True when the current conjunction is satisfiable (convenience over
    /// [`Self::check`]).
    pub fn is_sat(&mut self) -> bool {
        self.check().is_sat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{LinExpr, Sym};

    fn var(i: usize) -> LinExpr {
        LinExpr::var(Sym::from_usize(i))
    }

    #[test]
    fn push_pop_restores_satisfiability() {
        let cache = SolverCache::new();
        let mut inc = IncrementalSolver::new(Solver::decision_only(), &cache);
        inc.assume(Atom::ge(var(0), LinExpr::constant(0)));
        assert!(inc.is_sat());
        inc.push();
        inc.assume(Atom::lt(var(0), LinExpr::constant(0)));
        assert!(!inc.is_sat());
        inc.pop();
        assert!(inc.is_sat());
    }

    #[test]
    fn unsat_prefix_prunes_deeper_checks_without_solving() {
        let cache = SolverCache::new();
        let mut inc = IncrementalSolver::new(Solver::decision_only(), &cache);
        inc.push();
        inc.assume(Atom::gt(var(0), LinExpr::constant(0)));
        inc.assume(Atom::lt(var(0), LinExpr::constant(0)));
        assert!(!inc.is_sat());
        let after_unsat = cache.stats();
        inc.push();
        // Constraints over a *fresh* variable: a non-incremental solver
        // would re-solve; the pruned stack answers UNSAT from the prefix.
        inc.assume(Atom::ge(var(1), LinExpr::constant(3)));
        assert!(!inc.is_sat());
        let after_pruned = cache.stats();
        assert_eq!(after_unsat.misses, after_pruned.misses, "no new solve");
        inc.pop();
        inc.pop();
        assert!(inc.is_sat(), "empty stack is trivially satisfiable");
    }

    #[test]
    fn sat_prefix_components_hit_the_cache() {
        let cache = SolverCache::new();
        let mut inc = IncrementalSolver::new(Solver::decision_only(), &cache);
        inc.assume(Atom::ge(var(0), LinExpr::constant(1)));
        assert!(inc.is_sat());
        let first = cache.stats();
        inc.push();
        inc.assume(Atom::ge(var(1), LinExpr::constant(2)));
        assert!(inc.is_sat());
        let second = cache.stats();
        // The prefix component `x0 >= 1` was answered from the cache; only
        // the fresh `x1 >= 2` component ran the solver.
        assert_eq!(second.misses, first.misses + 1);
        assert!(second.hits > first.hits);
    }

    #[test]
    fn current_system_reflects_the_stack() {
        let cache = SolverCache::new();
        let mut inc = IncrementalSolver::new(Solver::decision_only(), &cache);
        inc.assume(Atom::ge(var(0), LinExpr::constant(0)));
        inc.push();
        inc.assume(Atom::le(var(0), LinExpr::constant(5)));
        assert_eq!(inc.current_system().len(), 2);
        inc.pop();
        assert_eq!(inc.current_system().len(), 1);
        assert_eq!(inc.depth(), 0);
    }
}
