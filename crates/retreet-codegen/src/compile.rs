//! Lowering Retreet ASTs to bytecode.
//!
//! The compiler resolves every name at compile time: variables to registers
//! (one window per activation, zero-initialized, so an unassigned variable
//! reads 0 exactly like the interpreter's environment), fields to column
//! ids, callees to function indices.  Structured control flow becomes
//! jump-threaded conditionals — `&&` short-circuits exactly like the
//! interpreter's guard evaluation — and the interpreter's `Par` return
//! discipline (run every branch, last return wins, propagate afterwards)
//! compiles to a per-activation pending-return window plus one flag
//! register per `Par`.  The flags must be distinct: with a shared flag, a
//! return in an earlier sibling branch of an outer `Par` would satisfy the
//! post-branch check of a nested `Par` in a *later* sibling branch and make
//! it skip the rest of that branch — a return the nested `Par`'s own
//! branches never issued.  Returns propagate outward explicitly instead: a
//! nested `Par` whose own flag is raised sets the enclosing `Par`'s flag
//! before ending the enclosing branch.

use std::collections::HashMap;
use std::fmt;

use retreet_lang::ast::{
    AExpr, Assign, BExpr, BlockKind, CallBlock, Func, Ident, NodeRef, Program, Stmt, StraightBlock,
    MAIN,
};
use retreet_lang::rewrite::local_names;

use crate::bytecode::{CompiledProgram, FrameFunc, FuncCode, Instr, IterativeFunc, NodeSel};
use crate::lower::{IterativeLowering, LoweringCertificate};

/// Why a program could not be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program has no `Main`.
    NoMain,
    /// A call block references an undefined function (the interpreter fails
    /// lazily at execution time; the compiler is strict).
    UnknownFunction(String),
    /// A single activation needs more than `u16::MAX` registers.
    TooManyRegisters(Ident),
    /// A construct the bytecode tier does not support (only reachable for
    /// lowered-segment compilation, which rejects calls/returns/`Par`).
    Unsupported(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoMain => write!(f, "the program has no Main function"),
            CompileError::UnknownFunction(name) => {
                write!(f, "call to unknown function `{name}`")
            }
            CompileError::TooManyRegisters(func) => {
                write!(f, "function `{func}` needs more than 65535 registers")
            }
            CompileError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Every field name the program reads or writes, sorted (the column-id
/// assignment of the compiled program).
pub fn program_fields(program: &Program) -> Vec<String> {
    let mut fields = std::collections::BTreeSet::new();
    for func in &program.funcs {
        collect_stmt_fields(&func.body, &mut fields);
    }
    fields.into_iter().collect()
}

fn collect_stmt_fields(stmt: &Stmt, out: &mut std::collections::BTreeSet<String>) {
    match stmt {
        Stmt::Block(block) => match &block.kind {
            BlockKind::Call(call) => {
                for arg in &call.args {
                    collect_aexpr_fields(arg, out);
                }
            }
            BlockKind::Straight(straight) => {
                for assign in &straight.assigns {
                    match assign {
                        Assign::SetVar(_, value) => collect_aexpr_fields(value, out),
                        Assign::SetField(_, field, value) => {
                            out.insert(field.clone());
                            collect_aexpr_fields(value, out);
                        }
                    }
                }
                if let Some(ret) = &straight.ret {
                    for value in ret {
                        collect_aexpr_fields(value, out);
                    }
                }
            }
        },
        Stmt::If(cond, then_branch, else_branch) => {
            collect_bexpr_fields(cond, out);
            collect_stmt_fields(then_branch, out);
            collect_stmt_fields(else_branch, out);
        }
        Stmt::Seq(items) | Stmt::Par(items) => {
            for item in items {
                collect_stmt_fields(item, out);
            }
        }
    }
}

fn collect_aexpr_fields(expr: &AExpr, out: &mut std::collections::BTreeSet<String>) {
    match expr {
        AExpr::Const(_) | AExpr::Var(_) => {}
        AExpr::Field(_, field) => {
            out.insert(field.clone());
        }
        AExpr::Add(a, b) | AExpr::Sub(a, b) => {
            collect_aexpr_fields(a, out);
            collect_aexpr_fields(b, out);
        }
    }
}

fn collect_bexpr_fields(cond: &BExpr, out: &mut std::collections::BTreeSet<String>) {
    match cond {
        BExpr::True | BExpr::IsNil(_) => {}
        BExpr::Gt(expr) => collect_aexpr_fields(expr, out),
        BExpr::Not(inner) => collect_bexpr_fields(inner, out),
        BExpr::And(a, b) => {
            collect_bexpr_fields(a, out);
            collect_bexpr_fields(b, out);
        }
    }
}

/// Compiles a program for frame-based execution only (no iterative
/// lowering; every function gets [`FuncCode::Frames`]).
pub fn compile(program: &Program) -> Result<CompiledProgram, CompileError> {
    compile_program(program, &[])
}

/// Compiles a program, baking the given *already certified* lowerings into
/// iterative worklist loops.  Callers outside the crate go through
/// [`crate::compile_with_lowering`], which is what certifies them.
pub(crate) fn compile_program(
    program: &Program,
    lowered: &[(IterativeLowering, LoweringCertificate)],
) -> Result<CompiledProgram, CompileError> {
    let main = program.func_index(MAIN).ok_or(CompileError::NoMain)?;
    let fields = program_fields(program);
    let field_ids: HashMap<&str, u16> = fields
        .iter()
        .enumerate()
        .map(|(i, f)| (f.as_str(), i as u16))
        .collect();
    let func_ids: HashMap<&str, u16> = program
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i as u16))
        .collect();
    let by_name: HashMap<&str, &IterativeLowering> =
        lowered.iter().map(|(l, _)| (l.func.as_str(), l)).collect();
    let mut funcs = Vec::with_capacity(program.funcs.len());
    for func in &program.funcs {
        match by_name.get(func.name.as_str()) {
            Some(lowering) => funcs.push(FuncCode::Iterative(compile_iterative(
                lowering, &field_ids,
            )?)),
            None => funcs.push(FuncCode::Frames(compile_frame_func(
                func, &field_ids, &func_ids,
            )?)),
        }
    }
    Ok(CompiledProgram {
        funcs,
        func_names: program.funcs.iter().map(|f| f.name.clone()).collect(),
        fields,
        arity: program.arity,
        main: main as u16,
        lowerings: lowered.iter().map(|(_, c)| c.clone()).collect(),
    })
}

/// The return discipline a statement compiles under.
#[derive(Clone, Copy)]
enum RetCtx {
    /// Returns emit [`Instr::Ret`] directly.
    Direct,
    /// Inside a `Par` branch: returns fill the pending window, raise the
    /// enclosing `Par`'s own flag, and jump to the branch's end so the
    /// remaining branches still run (the interpreter's last-return-wins
    /// discipline).
    Par {
        /// Label of the enclosing branch's end.
        branch_end: usize,
        /// The enclosing `Par`'s flag register.
        flag: u16,
    },
}

struct FuncCompiler<'a> {
    code: Vec<Instr>,
    /// Variable name → register.
    names: HashMap<&'a str, u16>,
    /// First register past the named (and pending-return) area.
    temp_base: u16,
    temp_next: u16,
    max_regs: u16,
    /// Label id → bound pc (`u32::MAX` while unbound).
    labels: Vec<u32>,
    field_ids: &'a HashMap<&'a str, u16>,
    func_ids: Option<&'a HashMap<&'a str, u16>>,
    /// First register of the pending-return window (`Par` support); `None`
    /// in segment mode.
    pend: Option<u16>,
    /// Next unclaimed `Par` flag register (the flag area sits between the
    /// pending-return window and `temp_base`, one register per `Par`).
    next_par_flag: u16,
    pend_ret_label: Option<usize>,
    num_returns: u16,
}

impl<'a> FuncCompiler<'a> {
    fn emit(&mut self, instr: Instr) {
        self.code.push(instr);
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(u32::MAX);
        self.labels.len() - 1
    }

    fn bind(&mut self, label: usize) {
        self.labels[label] = self.code.len() as u32;
    }

    fn temp(&mut self) -> Result<u16, CompileError> {
        let reg = self.temp_next;
        self.temp_next = self
            .temp_next
            .checked_add(1)
            .ok_or_else(|| CompileError::TooManyRegisters("<segment>".into()))?;
        self.max_regs = self.max_regs.max(self.temp_next);
        Ok(reg)
    }

    fn named(&self, var: &str) -> u16 {
        // Pass 1 collected every local name, so the lookup cannot miss for
        // names the AST walker saw; fall back to a diagnostic panic rather
        // than silent miscompilation.
        *self
            .names
            .get(var)
            .unwrap_or_else(|| panic!("unallocated local `{var}`"))
    }

    fn field(&self, name: &str) -> u16 {
        *self
            .field_ids
            .get(name)
            .unwrap_or_else(|| panic!("unresolved field `{name}`"))
    }

    fn sel(node: NodeRef) -> NodeSel {
        match node {
            NodeRef::Cur => NodeSel::Cur,
            NodeRef::Child(dir) => NodeSel::child(dir),
        }
    }

    /// Evaluates an arithmetic expression, returning the register holding
    /// its value (a named register for plain variable reads, a fresh
    /// temporary otherwise).  Subexpressions evaluate left-to-right, like
    /// the interpreter.
    fn aexpr(&mut self, expr: &'a AExpr) -> Result<u16, CompileError> {
        match expr {
            AExpr::Const(value) => {
                let dst = self.temp()?;
                self.emit(Instr::Const { dst, value: *value });
                Ok(dst)
            }
            AExpr::Var(var) => Ok(self.named(var)),
            AExpr::Field(node, field) => {
                let dst = self.temp()?;
                self.emit(Instr::Load {
                    dst,
                    node: Self::sel(*node),
                    field: self.field(field),
                });
                Ok(dst)
            }
            AExpr::Add(a, b) => {
                let ra = self.aexpr(a)?;
                let rb = self.aexpr(b)?;
                let dst = self.temp()?;
                self.emit(Instr::Add { dst, a: ra, b: rb });
                Ok(dst)
            }
            AExpr::Sub(a, b) => {
                let ra = self.aexpr(a)?;
                let rb = self.aexpr(b)?;
                let dst = self.temp()?;
                self.emit(Instr::Sub { dst, a: ra, b: rb });
                Ok(dst)
            }
        }
    }

    /// Jump-threaded condition: control reaches `if_true` when the
    /// condition holds, `if_false` otherwise.  `And` short-circuits (its
    /// right conjunct is not evaluated when the left is false), mirroring
    /// the interpreter's `&&`.
    fn cond(
        &mut self,
        cond: &'a BExpr,
        if_true: usize,
        if_false: usize,
    ) -> Result<(), CompileError> {
        match cond {
            BExpr::True => self.emit(Instr::Jump {
                target: if_true as u32,
            }),
            BExpr::IsNil(node) => {
                self.emit(Instr::JumpIfNil {
                    node: Self::sel(*node),
                    target: if_true as u32,
                });
                self.emit(Instr::Jump {
                    target: if_false as u32,
                });
            }
            BExpr::Gt(expr) => {
                let src = self.aexpr(expr)?;
                self.emit(Instr::JumpIfPos {
                    src,
                    target: if_true as u32,
                });
                self.emit(Instr::Jump {
                    target: if_false as u32,
                });
            }
            BExpr::Not(inner) => self.cond(inner, if_false, if_true)?,
            BExpr::And(a, b) => {
                let mid = self.new_label();
                self.cond(a, mid, if_false)?;
                self.bind(mid);
                self.cond(b, if_true, if_false)?;
            }
        }
        Ok(())
    }

    fn straight(&mut self, straight: &'a StraightBlock, ctx: RetCtx) -> Result<(), CompileError> {
        let mark = self.temp_base.max(self.temp_next.min(self.temp_base));
        for assign in &straight.assigns {
            self.temp_next = mark;
            match assign {
                Assign::SetVar(var, value) => {
                    let src = self.aexpr(value)?;
                    let dst = self.named(var);
                    if src != dst {
                        self.emit(Instr::Copy { dst, src });
                    }
                }
                Assign::SetField(node, field, value) => {
                    let src = self.aexpr(value)?;
                    self.emit(Instr::Store {
                        node: Self::sel(*node),
                        field: self.field(field),
                        src,
                    });
                }
            }
        }
        if let Some(ret) = &straight.ret {
            self.temp_next = mark;
            match ctx {
                RetCtx::Direct => {
                    // Evaluate into a contiguous window, then return it.
                    let start = self.temp_next;
                    for _ in ret {
                        self.temp()?;
                    }
                    let scratch = self.temp_next;
                    for (i, expr) in ret.iter().enumerate() {
                        self.temp_next = scratch;
                        let src = self.aexpr(expr)?;
                        self.emit(Instr::Copy {
                            dst: start + i as u16,
                            src,
                        });
                    }
                    self.emit(Instr::Ret {
                        start,
                        count: ret.len() as u16,
                    });
                }
                RetCtx::Par { branch_end, flag } => {
                    let pend_start = self
                        .pend
                        .expect("pending window allocated for functions with Par");
                    let scratch = self.temp_next;
                    for (i, expr) in ret.iter().enumerate() {
                        self.temp_next = scratch;
                        let src = self.aexpr(expr)?;
                        self.emit(Instr::Copy {
                            dst: pend_start + i as u16,
                            src,
                        });
                    }
                    self.emit(Instr::Const {
                        dst: flag,
                        value: 1,
                    });
                    self.emit(Instr::Jump {
                        target: branch_end as u32,
                    });
                }
            }
        }
        self.temp_next = mark;
        Ok(())
    }

    fn call_block(&mut self, call: &'a CallBlock) -> Result<(), CompileError> {
        let Some(func_ids) = self.func_ids else {
            return Err(CompileError::Unsupported(
                "a call inside a lowered traversal segment".into(),
            ));
        };
        let func = *func_ids
            .get(call.callee.as_str())
            .ok_or_else(|| CompileError::UnknownFunction(call.callee.clone()))?;
        let mark = self.temp_next;
        let args_start = self.temp_next;
        for _ in &call.args {
            self.temp()?;
        }
        let scratch = self.temp_next;
        for (i, arg) in call.args.iter().enumerate() {
            self.temp_next = scratch;
            let src = self.aexpr(arg)?;
            self.emit(Instr::Copy {
                dst: args_start + i as u16,
                src,
            });
        }
        let results: Box<[u16]> = call.results.iter().map(|r| self.named(r)).collect();
        self.emit(Instr::Call {
            func,
            target: Self::sel(call.target),
            args_start,
            num_args: call.args.len() as u16,
            results,
        });
        self.temp_next = mark;
        Ok(())
    }

    fn stmt(&mut self, stmt: &'a Stmt, ctx: RetCtx) -> Result<(), CompileError> {
        match stmt {
            Stmt::Block(block) => match &block.kind {
                BlockKind::Call(call) => self.call_block(call),
                BlockKind::Straight(straight) => self.straight(straight, ctx),
            },
            Stmt::If(cond, then_branch, else_branch) => {
                let l_then = self.new_label();
                let l_else = self.new_label();
                let l_end = self.new_label();
                self.cond(cond, l_then, l_else)?;
                self.bind(l_then);
                self.stmt(then_branch, ctx)?;
                self.emit(Instr::Jump {
                    target: l_end as u32,
                });
                self.bind(l_else);
                self.stmt(else_branch, ctx)?;
                self.bind(l_end);
                Ok(())
            }
            Stmt::Seq(items) => {
                for item in items {
                    self.stmt(item, ctx)?;
                }
                Ok(())
            }
            Stmt::Par(items) => {
                if self.pend.is_none() {
                    return Err(CompileError::Unsupported(
                        "a Par inside a lowered traversal segment".into(),
                    ));
                }
                // Each Par owns a dedicated flag register, cleared on
                // entry, so its post-branch check can only observe returns
                // from its own branches — never a stale flag raised by an
                // earlier sibling branch of an enclosing Par.
                let flag = self.next_par_flag;
                self.next_par_flag += 1;
                self.emit(Instr::Const {
                    dst: flag,
                    value: 0,
                });
                for item in items {
                    let branch_end = self.new_label();
                    self.stmt(item, RetCtx::Par { branch_end, flag })?;
                    self.bind(branch_end);
                }
                // A branch returned: propagate — either straight to the
                // function's pending-return epilogue, or (when this Par is
                // itself inside a Par branch) by raising the enclosing
                // Par's flag and ending the enclosing branch.
                match ctx {
                    RetCtx::Direct => {
                        let target = *self
                            .pend_ret_label
                            .as_ref()
                            .expect("epilogue label allocated for functions with Par");
                        self.emit(Instr::JumpIfPos {
                            src: flag,
                            target: target as u32,
                        });
                    }
                    RetCtx::Par {
                        branch_end,
                        flag: outer_flag,
                    } => {
                        let l_propagate = self.new_label();
                        let l_done = self.new_label();
                        self.emit(Instr::JumpIfPos {
                            src: flag,
                            target: l_propagate as u32,
                        });
                        self.emit(Instr::Jump {
                            target: l_done as u32,
                        });
                        self.bind(l_propagate);
                        self.emit(Instr::Const {
                            dst: outer_flag,
                            value: 1,
                        });
                        self.emit(Instr::Jump {
                            target: branch_end as u32,
                        });
                        self.bind(l_done);
                    }
                }
                Ok(())
            }
        }
    }

    /// Rewrites label ids in jump targets to bound pcs.
    fn resolve(&mut self) {
        for instr in &mut self.code {
            let target = match instr {
                Instr::Jump { target }
                | Instr::JumpIfNil { target, .. }
                | Instr::JumpIfPos { target, .. } => target,
                _ => continue,
            };
            let pc = self.labels[*target as usize];
            debug_assert_ne!(pc, u32::MAX, "unbound label");
            *target = pc;
        }
    }
}

/// Number of `Par` statements in the body — each needs its own flag
/// register.
fn count_pars(stmt: &Stmt) -> usize {
    match stmt {
        Stmt::Block(_) => 0,
        Stmt::If(_, a, b) => count_pars(a) + count_pars(b),
        Stmt::Seq(items) => items.iter().map(count_pars).sum(),
        Stmt::Par(items) => 1 + items.iter().map(count_pars).sum::<usize>(),
    }
}

fn compile_frame_func(
    func: &Func,
    field_ids: &HashMap<&str, u16>,
    func_ids: &HashMap<&str, u16>,
) -> Result<FrameFunc, CompileError> {
    let locals = local_names(func);
    let num_pars = count_pars(&func.body);
    if locals.len() + func.num_returns + num_pars > u16::MAX as usize {
        return Err(CompileError::TooManyRegisters(func.name.clone()));
    }
    let names: HashMap<&str, u16> = locals
        .iter()
        .enumerate()
        .map(|(i, name)| (name.as_str(), i as u16))
        .collect();
    let named_count = names.len() as u16;
    let num_returns = func.num_returns as u16;
    // Window layout: named locals | pending-return window | one flag
    // register per Par | temporaries.
    let (pend, flag_base, temp_base) = if num_pars > 0 {
        let flag_base = named_count + num_returns;
        (Some(named_count), flag_base, flag_base + num_pars as u16)
    } else {
        (None, named_count, named_count)
    };
    let mut compiler = FuncCompiler {
        code: Vec::new(),
        names,
        temp_base,
        temp_next: temp_base,
        max_regs: temp_base,
        labels: Vec::new(),
        field_ids,
        func_ids: Some(func_ids),
        pend,
        next_par_flag: flag_base,
        pend_ret_label: None,
        num_returns,
    };
    if num_pars > 0 {
        compiler.pend_ret_label = Some(compiler.new_label());
    }
    compiler.stmt(&func.body, RetCtx::Direct)?;
    // Falling off the end returns no values (the interpreter's
    // `unwrap_or_default`); callers then bind nothing.
    compiler.emit(Instr::Ret { start: 0, count: 0 });
    if let Some(label) = compiler.pend_ret_label {
        compiler.bind(label);
        let pend_start = compiler.pend.expect("pend window");
        compiler.emit(Instr::Ret {
            start: pend_start,
            count: compiler.num_returns,
        });
    }
    compiler.resolve();
    let param_regs: Box<[u16]> = func.int_params.iter().map(|p| compiler.named(p)).collect();
    Ok(FrameFunc {
        code: compiler.code,
        num_regs: compiler.max_regs,
        param_regs,
        num_returns,
    })
}

/// Compiles a certified lowering's `k + 1` straight-line segments.
/// Segments are call-free, return-free, `Par`-free and variable-free by the
/// lowering shape check, so the compiler only needs scratch registers.
fn compile_iterative(
    lowering: &IterativeLowering,
    field_ids: &HashMap<&str, u16>,
) -> Result<IterativeFunc, CompileError> {
    let mut compiler = FuncCompiler {
        code: Vec::new(),
        names: HashMap::new(),
        temp_base: 0,
        temp_next: 0,
        max_regs: 0,
        labels: Vec::new(),
        field_ids,
        func_ids: None,
        pend: None,
        next_par_flag: 0,
        pend_ret_label: None,
        num_returns: lowering.returns.len() as u16,
    };
    let mut segments = Vec::with_capacity(lowering.segments.len());
    for stmts in &lowering.segments {
        segments.push(compiler.code.len() as u32);
        for stmt in stmts.iter() {
            compiler.stmt(stmt, RetCtx::Direct)?;
        }
        compiler.emit(Instr::EndSegment);
    }
    compiler.resolve();
    Ok(IterativeFunc {
        code: compiler.code,
        segments,
        axes: lowering.axes.clone(),
        returns: lowering.returns.clone(),
        num_regs: compiler.max_regs,
    })
}
