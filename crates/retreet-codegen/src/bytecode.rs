//! The compact register-based bytecode the VM executes.
//!
//! Each function compiles to a flat instruction vector over a zero-initialized
//! register file (one `i64` window per activation).  Field names are resolved
//! to column ids at compile time, node references to a three-way selector
//! against the activation's node index, and structured control flow
//! (`if`/`seq`/`par` and early returns) to conditional jumps — including the
//! interpreter's exact `Par` semantics (branches run in syntactic order, the
//! *last* returning branch wins, and the pending return propagates only after
//! every branch has run).

use retreet_lang::ast::{ChildAxis, Ident};

use crate::lower::LoweringCertificate;

/// Which node an instruction addresses, relative to the activation's node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSel {
    /// The activation's own node `n`.
    Cur,
    /// The child along an axis (nil when `n` is nil or lacks that child):
    /// `n.l` is axis 0, `n.r` axis 1, `n.c<k>` axis `k`.
    Child(ChildAxis),
}

impl NodeSel {
    /// `n.l` (axis 0).
    pub const LEFT: NodeSel = NodeSel::Child(ChildAxis::LEFT);
    /// `n.r` (axis 1).
    pub const RIGHT: NodeSel = NodeSel::Child(ChildAxis::RIGHT);

    /// The selector for a child axis.
    pub fn child(axis: ChildAxis) -> NodeSel {
        NodeSel::Child(axis)
    }
}

/// One bytecode instruction.  Registers are `u16` indices into the
/// activation's window; jump targets are absolute instruction indices
/// within the owning function's code vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst ← value`.
    Const {
        /// Destination register.
        dst: u16,
        /// The literal.
        value: i64,
    },
    /// `dst ← src`.
    Copy {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// `dst ← a + b` (wrapping, like the interpreter).
    Add {
        /// Destination register.
        dst: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `dst ← a - b` (wrapping).
    Sub {
        /// Destination register.
        dst: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `dst ← node.field`; nil dereference when the selector resolves to nil.
    Load {
        /// Destination register.
        dst: u16,
        /// Addressed node.
        node: NodeSel,
        /// Field column id.
        field: u16,
    },
    /// `node.field ← src`; nil dereference when the selector resolves to nil.
    Store {
        /// Addressed node.
        node: NodeSel,
        /// Field column id.
        field: u16,
        /// Source register.
        src: u16,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Jump when the selector resolves to nil (a child selector on a nil
    /// node resolves to nil without error, like the interpreter's `resolve`).
    JumpIfNil {
        /// Addressed node.
        node: NodeSel,
        /// Target instruction index.
        target: u32,
    },
    /// Jump when `src > 0` (the `Gt` guard of the language).
    JumpIfPos {
        /// Tested register.
        src: u16,
        /// Target instruction index.
        target: u32,
    },
    /// Call `func` on the selected node.  Arguments are the contiguous
    /// registers `args_start .. args_start + num_args`; on return, the
    /// callee's values are scattered into the listed result registers
    /// (zip semantics: extra result registers keep their old values, like
    /// the interpreter binding fewer returns than result variables).
    Call {
        /// Callee function index.
        func: u16,
        /// The node the callee runs on.
        target: NodeSel,
        /// First argument register.
        args_start: u16,
        /// Number of arguments.
        num_args: u16,
        /// Result registers, in binding order.
        results: Box<[u16]>,
    },
    /// Return the contiguous registers `start .. start + count`.
    Ret {
        /// First returned register.
        start: u16,
        /// Number of returned values.
        count: u16,
    },
    /// Terminates a lowered traversal's straight-line segment (never appears
    /// in frame-based code).
    EndSegment,
}

/// A function compiled for frame-based execution (the general case,
/// including mutual recursion and `Par`).
#[derive(Debug, Clone)]
pub struct FrameFunc {
    /// The instruction vector.
    pub code: Vec<Instr>,
    /// Size of the activation's register window.
    pub num_regs: u16,
    /// Register of each integer parameter, in declaration order (duplicate
    /// parameter names share a register, so the last binding wins exactly
    /// like the interpreter's environment).
    pub param_regs: Box<[u16]>,
    /// Declared number of returned values.
    pub num_returns: u16,
}

/// A self-recursive traversal lowered to an explicit-worklist loop: the
/// recursion is replaced by an iterative depth-first schedule over the tree,
/// with the function's straight-line work split into `k + 1` segments for a
/// `k`-way recursion (before the first child, between consecutive children,
/// after the last child).  A binary traversal has the classic three
/// (pre/mid/post) segments.
///
/// Only certified lowerings are ever compiled to this form — see
/// [`crate::lower`].
#[derive(Debug, Clone)]
pub struct IterativeFunc {
    /// Segment code (each segment ends with [`Instr::EndSegment`]).
    pub code: Vec<Instr>,
    /// Entry pcs of the `k + 1` segments, in visit order: `segments[p]` runs
    /// before descending into the `p`-th visited child; the last entry is
    /// the post segment run after the final child's subtree.
    pub segments: Vec<u32>,
    /// The children in visit order (`k` distinct axes).
    pub axes: Vec<ChildAxis>,
    /// The constants the traversal returns (on nil and non-nil nodes alike —
    /// a requirement of the lowerable shape).
    pub returns: Vec<i64>,
    /// Scratch registers the segments use.
    pub num_regs: u16,
}

impl IterativeFunc {
    /// Entry pc of the segment run before the first child's subtree.
    pub fn pre(&self) -> u32 {
        self.segments[0]
    }

    /// Entry pc of the segment run after the last child's subtree.
    pub fn post(&self) -> u32 {
        *self.segments.last().expect("at least a post segment")
    }
}

/// How a function executes.
#[derive(Debug, Clone)]
pub enum FuncCode {
    /// Frame-based bytecode.
    Frames(FrameFunc),
    /// Certified explicit-worklist loop.
    Iterative(IterativeFunc),
}

/// A whole program, compiled.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Per-function code, indexed like the source program's function list.
    pub funcs: Vec<FuncCode>,
    /// Function names (for diagnostics), same indexing.
    pub func_names: Vec<Ident>,
    /// Field names in column-id order.
    pub fields: Vec<String>,
    /// The source program's tree arity (number of child columns a flat tree
    /// needs).
    pub arity: u8,
    /// Index of `Main`.
    pub main: u16,
    /// The equivalence certificates of every iterative lowering baked into
    /// [`Self::funcs`] (empty when compiled without lowering).
    pub lowerings: Vec<LoweringCertificate>,
}

impl CompiledProgram {
    /// Names of the functions compiled to certified worklist loops.
    pub fn lowered_funcs(&self) -> Vec<&str> {
        self.funcs
            .iter()
            .zip(self.func_names.iter())
            .filter(|(code, _)| matches!(code, FuncCode::Iterative(_)))
            .map(|(_, name)| name.as_str())
            .collect()
    }

    /// Total instruction count across all functions.
    pub fn code_len(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| match f {
                FuncCode::Frames(f) => f.code.len(),
                FuncCode::Iterative(f) => f.code.len(),
            })
            .sum()
    }
}
