//! The stack-free bytecode VM.
//!
//! Activations are pooled `Frame` records over one shared register arena —
//! no per-call `HashMap` environment, no `String` field lookups, no trace
//! recording.  Certified iterative lowerings bypass frames entirely: the VM
//! drains an explicit `(node, phase)` worklist, running the lowered
//! function's three straight-line segments around each subtree.
//!
//! Semantics match [`retreet_analysis::interp`] instruction-for-instruction:
//! wrapping `i64` arithmetic, unset variables reading 0, child selectors of
//! a nil node resolving to nil (so `nil(n.l)` on a leaf is just true, and a
//! call targeting `n.l` runs its callee on the nil node), nil field access
//! failing, and the same `MAX_DEPTH` recursion guard.  Worklist execution
//! has no *machine* recursion, but it still enforces the interpreter's
//! depth cap on the traversal it replaces — the recursive original counts
//! one activation per visited node (nil children included, since their
//! calls are made before the nil guard returns), and outcome parity with
//! the reference is part of the differential contract.

use std::fmt;

use retreet_analysis::vtree::ValueTree;
use retreet_lang::ast::ChildAxis;

use crate::bytecode::{CompiledProgram, FuncCode, Instr, IterativeFunc, NodeSel};
use crate::flat::{FlatTree, NIL};

/// Maximum live frames, matching the interpreter's recursion guard.
pub const MAX_DEPTH: usize = 10_000;

/// A runtime failure (the VM's mirror of the interpreter's errors; compile
/// errors like unknown callees are caught earlier, at compile time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A field access on the nil node.
    NilDereference,
    /// More than [`MAX_DEPTH`] nested calls — frame-based frames plus the
    /// activation depth a lowered traversal's recursive original would
    /// need.
    DepthExceeded,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NilDereference => write!(f, "field access on nil node"),
            VmError::DepthExceeded => {
                write!(f, "recursion depth exceeded {MAX_DEPTH}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// The outcome of a run: `Main`'s return values and the post-run tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmResult {
    /// Values returned by `Main`.
    pub returns: Vec<i64>,
    /// The tree after all field writes.
    pub tree: ValueTree,
}

/// One pooled activation record.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Function index.
    func: u16,
    /// The node this activation runs on ([`NIL`] is legal).
    node: u32,
    /// Resume pc (saved across calls).
    pc: u32,
    /// First register of this activation's window.
    base: u32,
}

/// A reusable virtual machine.  All working storage (register arena, frame
/// stack, worklist, return buffer) is pooled and reused across runs, so a
/// long-lived `Vm` allocates only while growing to its high-water mark.
#[derive(Debug, Default)]
pub struct Vm {
    regs: Vec<i64>,
    frames: Vec<Frame>,
    work: Vec<(u32, u8)>,
    retbuf: Vec<i64>,
}

/// Compiles nothing, runs one program on one tree: convenience wrapper
/// around a throwaway [`Vm`].
pub fn run_program(program: &CompiledProgram, tree: &ValueTree) -> Result<VmResult, VmError> {
    Vm::new().run(program, tree)
}

impl Vm {
    /// A fresh VM with empty pools.
    pub fn new() -> Self {
        Vm::default()
    }

    /// Runs `program` on `tree`: flattens the tree, executes, writes the
    /// field columns back.
    pub fn run(
        &mut self,
        program: &CompiledProgram,
        tree: &ValueTree,
    ) -> Result<VmResult, VmError> {
        let mut flat = FlatTree::from_value_tree_kary(tree, &program.fields, program.arity);
        let returns = self.run_flat(program, &mut flat)?;
        Ok(VmResult {
            returns,
            tree: flat.write_back(tree, &program.fields),
        })
    }

    /// Runs `program` directly on an already-flattened tree (mutated in
    /// place), returning `Main`'s values.  This is the allocation-light path
    /// benchmarks and batch runners use.
    pub fn run_flat(
        &mut self,
        program: &CompiledProgram,
        tree: &mut FlatTree,
    ) -> Result<Vec<i64>, VmError> {
        self.regs.clear();
        self.frames.clear();
        self.work.clear();
        let root = tree.root();
        match &program.funcs[program.main as usize] {
            FuncCode::Iterative(lowered) => {
                self.run_iterative(lowered, tree, root)?;
                return Ok(lowered.returns.clone());
            }
            FuncCode::Frames(main) => {
                self.regs.resize(main.num_regs as usize, 0);
                self.frames.push(Frame {
                    func: program.main,
                    node: root,
                    pc: 0,
                    base: 0,
                });
            }
        }
        'dispatch: loop {
            let fi = self.frames.len() - 1;
            let frame = self.frames[fi];
            let FuncCode::Frames(func) = &program.funcs[frame.func as usize] else {
                unreachable!("frame pushed for iterative function");
            };
            let base = frame.base as usize;
            let mut pc = frame.pc as usize;
            loop {
                let instr = &func.code[pc];
                pc += 1;
                match instr {
                    Instr::Const { dst, value } => self.regs[base + *dst as usize] = *value,
                    Instr::Copy { dst, src } => {
                        self.regs[base + *dst as usize] = self.regs[base + *src as usize]
                    }
                    Instr::Add { dst, a, b } => {
                        self.regs[base + *dst as usize] = self.regs[base + *a as usize]
                            .wrapping_add(self.regs[base + *b as usize])
                    }
                    Instr::Sub { dst, a, b } => {
                        self.regs[base + *dst as usize] = self.regs[base + *a as usize]
                            .wrapping_sub(self.regs[base + *b as usize])
                    }
                    Instr::Load { dst, node, field } => {
                        let n = resolve(tree, frame.node, *node);
                        if n == NIL {
                            return Err(VmError::NilDereference);
                        }
                        self.regs[base + *dst as usize] = tree.get(*field, n);
                    }
                    Instr::Store { node, field, src } => {
                        let n = resolve(tree, frame.node, *node);
                        if n == NIL {
                            return Err(VmError::NilDereference);
                        }
                        tree.set(*field, n, self.regs[base + *src as usize]);
                    }
                    Instr::Jump { target } => pc = *target as usize,
                    Instr::JumpIfNil { node, target } => {
                        if resolve(tree, frame.node, *node) == NIL {
                            pc = *target as usize;
                        }
                    }
                    Instr::JumpIfPos { src, target } => {
                        if self.regs[base + *src as usize] > 0 {
                            pc = *target as usize;
                        }
                    }
                    Instr::Call {
                        func: callee,
                        target,
                        args_start,
                        num_args,
                        results,
                    } => {
                        let node = resolve(tree, frame.node, *target);
                        match &program.funcs[*callee as usize] {
                            FuncCode::Iterative(lowered) => {
                                // A certified lowering returns constants;
                                // run the loop, scatter them (zip).
                                self.run_iterative(lowered, tree, node)?;
                                let k = results.len().min(lowered.returns.len());
                                for i in 0..k {
                                    self.regs[base + results[i] as usize] = lowered.returns[i];
                                }
                            }
                            FuncCode::Frames(callee_func) => {
                                if self.frames.len() >= MAX_DEPTH {
                                    return Err(VmError::DepthExceeded);
                                }
                                self.frames[fi].pc = pc as u32;
                                let new_base = self.regs.len();
                                self.regs
                                    .resize(new_base + callee_func.num_regs as usize, 0);
                                let k = (*num_args as usize).min(callee_func.param_regs.len());
                                for i in 0..k {
                                    self.regs[new_base + callee_func.param_regs[i] as usize] =
                                        self.regs[base + *args_start as usize + i];
                                }
                                self.frames.push(Frame {
                                    func: *callee,
                                    node,
                                    pc: 0,
                                    base: new_base as u32,
                                });
                                continue 'dispatch;
                            }
                        }
                    }
                    Instr::Ret { start, count } => {
                        self.retbuf.clear();
                        for i in 0..*count as usize {
                            self.retbuf.push(self.regs[base + *start as usize + i]);
                        }
                        self.regs.truncate(base);
                        self.frames.pop();
                        let Some(caller) = self.frames.last().copied() else {
                            return Ok(self.retbuf.clone());
                        };
                        let FuncCode::Frames(caller_func) = &program.funcs[caller.func as usize]
                        else {
                            unreachable!("frame pushed for iterative function");
                        };
                        // The caller's saved pc points just past its Call
                        // instruction, which carries the result registers.
                        let Instr::Call { results, .. } = &caller_func.code[caller.pc as usize - 1]
                        else {
                            unreachable!("resume pc does not follow a call");
                        };
                        let caller_base = caller.base as usize;
                        let k = results.len().min(self.retbuf.len());
                        for i in 0..k {
                            self.regs[caller_base + results[i] as usize] = self.retbuf[i];
                        }
                        continue 'dispatch;
                    }
                    Instr::EndSegment => unreachable!("EndSegment in frame code"),
                }
            }
        }
    }

    /// Runs a lowered function on the subtree rooted at `start` by draining
    /// an explicit worklist: phase `p < k` runs segment `p` and descends
    /// into the `p`-th visited child, phase `k` runs the post-segment (a
    /// binary traversal is the classic pre/mid/post).  Recursing into nil
    /// is a no-op (the recursive original would return its constants, which
    /// the lowered shape never reads), but the interpreter's [`MAX_DEPTH`]
    /// cap is still enforced against the depth the recursive original would
    /// reach, so both tiers fail the same over-deep trees.
    fn run_iterative(
        &mut self,
        lowered: &IterativeFunc,
        tree: &mut FlatTree,
        start: u32,
    ) -> Result<(), VmError> {
        // The interpreter counts this activation before evaluating the nil
        // guard, so the depth check precedes the nil early-out.
        if self.frames.len() >= MAX_DEPTH {
            return Err(VmError::DepthExceeded);
        }
        if start == NIL {
            return Ok(());
        }
        let base = self.regs.len();
        self.regs.resize(base + lowered.num_regs as usize, 0);
        let work_base = self.work.len();
        self.work.push((start, 0));
        let result = self.drain(lowered, tree, base, work_base);
        self.work.truncate(work_base);
        self.regs.truncate(base);
        result
    }

    fn drain(
        &mut self,
        lowered: &IterativeFunc,
        tree: &mut FlatTree,
        base: usize,
        work_base: usize,
    ) -> Result<(), VmError> {
        let num_calls = lowered.axes.len();
        while self.work.len() > work_base {
            let (node, phase) = self.work.pop().expect("non-empty worklist");
            let p = phase as usize;
            if p >= num_calls {
                self.segment(lowered, lowered.post() as usize, tree, node, base)?;
                continue;
            }
            if p == 0 {
                // `node`'s path depth below the traversal root: one
                // worklist entry per ancestor remains on the stack.
                let depth = self.work.len() - work_base;
                self.segment(lowered, lowered.segments[0] as usize, tree, node, base)?;
                // The recursive original now calls into every child — nil
                // ones included, whose activations the interpreter counts
                // before the nil guard returns.  Those calls sit
                // `frames + depth + 2` activations deep (live frames, the
                // path from the traversal root, this node, the child), and
                // the interpreter refuses them past MAX_DEPTH — so must we,
                // for outcome parity.
                if self.frames.len() + depth + 2 > MAX_DEPTH {
                    return Err(VmError::DepthExceeded);
                }
            } else {
                self.segment(lowered, lowered.segments[p] as usize, tree, node, base)?;
            }
            self.work.push((node, phase + 1));
            let child = child_of(tree, node, lowered.axes[p]);
            if child != NIL {
                self.work.push((child, 0));
            }
        }
        Ok(())
    }

    /// Executes one straight-line segment (from `pc` to its `EndSegment`)
    /// with `node` as the current node.
    fn segment(
        &mut self,
        lowered: &IterativeFunc,
        mut pc: usize,
        tree: &mut FlatTree,
        node: u32,
        base: usize,
    ) -> Result<(), VmError> {
        loop {
            let instr = &lowered.code[pc];
            pc += 1;
            match instr {
                Instr::Const { dst, value } => self.regs[base + *dst as usize] = *value,
                Instr::Copy { dst, src } => {
                    self.regs[base + *dst as usize] = self.regs[base + *src as usize]
                }
                Instr::Add { dst, a, b } => {
                    self.regs[base + *dst as usize] =
                        self.regs[base + *a as usize].wrapping_add(self.regs[base + *b as usize])
                }
                Instr::Sub { dst, a, b } => {
                    self.regs[base + *dst as usize] =
                        self.regs[base + *a as usize].wrapping_sub(self.regs[base + *b as usize])
                }
                Instr::Load {
                    dst,
                    node: sel,
                    field,
                } => {
                    let n = resolve(tree, node, *sel);
                    if n == NIL {
                        return Err(VmError::NilDereference);
                    }
                    self.regs[base + *dst as usize] = tree.get(*field, n);
                }
                Instr::Store {
                    node: sel,
                    field,
                    src,
                } => {
                    let n = resolve(tree, node, *sel);
                    if n == NIL {
                        return Err(VmError::NilDereference);
                    }
                    tree.set(*field, n, self.regs[base + *src as usize]);
                }
                Instr::Jump { target } => pc = *target as usize,
                Instr::JumpIfNil { node: sel, target } => {
                    if resolve(tree, node, *sel) == NIL {
                        pc = *target as usize;
                    }
                }
                Instr::JumpIfPos { src, target } => {
                    if self.regs[base + *src as usize] > 0 {
                        pc = *target as usize;
                    }
                }
                Instr::EndSegment => return Ok(()),
                Instr::Call { .. } | Instr::Ret { .. } => {
                    unreachable!("call/ret in lowered segment")
                }
            }
        }
    }
}

/// Resolves a node selector against the current node: a child selector on
/// the nil node resolves to nil without error, like the interpreter.
#[inline]
fn resolve(tree: &FlatTree, node: u32, sel: NodeSel) -> u32 {
    match sel {
        NodeSel::Cur => node,
        NodeSel::Child(axis) => {
            if node == NIL {
                NIL
            } else {
                tree.child(node, axis.index())
            }
        }
    }
}

#[inline]
fn child_of(tree: &FlatTree, node: u32, axis: ChildAxis) -> u32 {
    tree.child(node, axis.index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_analysis::interp;
    use retreet_lang::parser::parse_program;

    fn check_against_interp(source: &str, tree: &ValueTree) {
        let program = parse_program(source).expect("parse");
        let compiled = crate::compile::compile(&program).expect("compile");
        let expected = interp::run(&program, tree);
        let actual = run_program(&compiled, tree);
        match (expected, actual) {
            (Ok(exp), Ok(act)) => {
                assert_eq!(exp.returns, act.returns, "returns differ");
                assert!(
                    crate::flat::trees_agree(&exp.tree, &act.tree),
                    "trees differ"
                );
            }
            (Err(_), Err(_)) => {}
            (exp, act) => panic!("outcome mismatch: interp={exp:?} vm={act:?}"),
        }
    }

    #[test]
    fn sums_values_like_the_interpreter() {
        let source = r#"
            fn Sum(n) {
                if (n == nil) { return 0; }
                else {
                    a = Sum(n.l);
                    b = Sum(n.r);
                    return a + b + n.v;
                }
            }
            fn Main(n) {
                s = Sum(n);
                return s;
            }
        "#;
        let mut tree = ValueTree::complete(4, &["v"], |_, _| 1);
        tree.fill_fields(&["v"], 7);
        check_against_interp(source, &tree);
    }

    #[test]
    fn par_last_return_wins_and_all_branches_run() {
        let source = r#"
            fn Main(n) {
                {
                    n.a = 1;
                    return 10;
                    ||
                    n.b = 2;
                    return 20;
                }
                return 0;
            }
        "#;
        let program = parse_program(source).expect("parse");
        let compiled = crate::compile::compile(&program).expect("compile");
        let tree = ValueTree::single();
        let exp = interp::run(&program, &tree).expect("interp");
        let act = run_program(&compiled, &tree).expect("vm");
        assert_eq!(exp.returns, act.returns);
        assert_eq!(act.returns, vec![20], "last returning branch wins");
        assert_eq!(act.tree.field(act.tree.root(), "a"), 1, "both branches ran");
        check_against_interp(source, &tree);
    }

    #[test]
    fn nested_par_after_returning_sibling_ignores_stale_flag() {
        // Branch 1 of the outer Par returns, raising the outer Par's flag.
        // The nested Par in branch 2 has no returning branch, so branch 2
        // must still run `n.c = 3` — a shared flag register would make the
        // nested Par's post-branch check observe branch 1's return and end
        // branch 2 early.
        let source = r#"
            fn Main(n) {
                {
                    return 1;
                    ||
                    { n.a = 1; || n.b = 2; }
                    n.c = 3;
                }
                return 0;
            }
        "#;
        let program = parse_program(source).expect("parse");
        let compiled = crate::compile::compile(&program).expect("compile");
        let tree = ValueTree::single();
        let act = run_program(&compiled, &tree).expect("vm");
        assert_eq!(act.returns, vec![1]);
        assert_eq!(act.tree.field(act.tree.root(), "a"), 1);
        assert_eq!(act.tree.field(act.tree.root(), "b"), 2);
        assert_eq!(
            act.tree.field(act.tree.root(), "c"),
            3,
            "branch 2 must run to completion: its nested Par never returned"
        );
        check_against_interp(source, &tree);
    }

    #[test]
    fn nested_par_return_propagates_to_outer_par() {
        // The inner Par's branch returns: the rest of the enclosing outer
        // branch (`n.c = 3`) is skipped, the outer Par's remaining branch
        // still runs, and the value propagates out of both Pars.
        let source = r#"
            fn Main(n) {
                {
                    { n.a = 1; return 5; || n.b = 2; }
                    n.c = 3;
                    ||
                    n.d = 4;
                }
                return 9;
            }
        "#;
        let program = parse_program(source).expect("parse");
        let compiled = crate::compile::compile(&program).expect("compile");
        let tree = ValueTree::single();
        let act = run_program(&compiled, &tree).expect("vm");
        assert_eq!(act.returns, vec![5], "inner Par's return propagates");
        assert_eq!(act.tree.field(act.tree.root(), "a"), 1);
        assert_eq!(
            act.tree.field(act.tree.root(), "b"),
            2,
            "inner sibling still runs"
        );
        assert_eq!(
            act.tree.field(act.tree.root(), "c"),
            0,
            "rest of the branch is skipped"
        );
        assert_eq!(
            act.tree.field(act.tree.root(), "d"),
            4,
            "outer sibling still runs"
        );
        check_against_interp(source, &tree);
    }

    #[test]
    fn last_return_wins_across_nested_pars() {
        let source = r#"
            fn Main(n) {
                {
                    return 1;
                    ||
                    { return 2; || n.a = 1; }
                    n.b = 7;
                }
                return 0;
            }
        "#;
        let program = parse_program(source).expect("parse");
        let compiled = crate::compile::compile(&program).expect("compile");
        let tree = ValueTree::single();
        let act = run_program(&compiled, &tree).expect("vm");
        assert_eq!(act.returns, vec![2], "the nested Par's later return wins");
        assert_eq!(act.tree.field(act.tree.root(), "a"), 1);
        assert_eq!(
            act.tree.field(act.tree.root(), "b"),
            0,
            "skipped after the inner return"
        );
        check_against_interp(source, &tree);
    }

    /// A degenerate left chain of `len` nodes.
    fn left_chain(len: usize) -> ValueTree {
        let mut tree = ValueTree::single();
        let mut node = tree.root();
        for _ in 1..len {
            node = tree.add_left(node);
        }
        tree
    }

    const LOWERABLE_COUNTER: &str = r#"
        fn Main(n) {
            if (n == nil) { return 0; }
            else {
                n.v = n.v + 1;
                x = Main(n.l);
                y = Main(n.r);
                return 0;
            }
        }
    "#;

    #[test]
    fn lowered_traversal_enforces_the_interpreter_depth_cap() {
        let program = parse_program(LOWERABLE_COUNTER).expect("parse");
        let verifier = retreet_verify::Verifier::builder().build();
        let compiled = crate::compile_with_lowering(&verifier, &program).expect("compile");
        assert!(
            !compiled.lowerings.is_empty(),
            "Main should run as a certified worklist loop"
        );
        // A chain of MAX_DEPTH nodes: the recursive original's nil-child
        // calls at the deepest node would be activation MAX_DEPTH + 1, which
        // the interpreter refuses — the worklist must refuse it too.
        let too_deep = left_chain(MAX_DEPTH);
        assert!(matches!(
            run_program(&compiled, &too_deep),
            Err(VmError::DepthExceeded)
        ));
        // One node shorter, the deepest nil call sits exactly at MAX_DEPTH
        // and both tiers succeed.
        let just_fits = left_chain(MAX_DEPTH - 1);
        let result = run_program(&compiled, &just_fits).expect("within the cap");
        assert_eq!(result.returns, vec![0]);
        assert_eq!(result.tree.field(result.tree.root(), "v"), 1);
    }

    #[test]
    fn lowered_kary_traversal_honors_the_same_depth_boundary() {
        // The k-ary generalization of the depth-cap pin: a ternary
        // traversal lowered to a 4-segment worklist loop must refuse and
        // accept exactly the same chain lengths as the binary form — the
        // cap counts activations, not axes.
        let program = parse_program(
            r#"
            arity 3;
            fn Main(n) {
                if (n == nil) { return 0; }
                else {
                    n.v = n.v + 1;
                    x = Main(n.c0);
                    y = Main(n.c1);
                    z = Main(n.c2);
                    return 0;
                }
            }
            "#,
        )
        .expect("parse");
        let verifier = retreet_verify::Verifier::builder().build();
        let compiled = crate::compile_with_lowering(&verifier, &program).expect("compile");
        assert!(
            !compiled.lowerings.is_empty(),
            "the ternary Main should run as a certified worklist loop"
        );
        let chain = |len: usize| {
            let mut tree = ValueTree::single();
            let mut node = tree.root();
            for _ in 1..len {
                node = tree.add_child(node, 0);
            }
            tree
        };
        assert!(matches!(
            run_program(&compiled, &chain(MAX_DEPTH)),
            Err(VmError::DepthExceeded)
        ));
        let result = run_program(&compiled, &chain(MAX_DEPTH - 1)).expect("within the cap");
        assert_eq!(result.returns, vec![0]);
        assert_eq!(result.tree.field(result.tree.root(), "v"), 1);
    }

    #[test]
    #[ignore = "the reference interpreter's trace is quadratic in recursion \
                depth (~3 GB and tens of seconds on MAX_DEPTH chains); run \
                on demand to re-pin the boundary"]
    fn depth_cap_boundary_agrees_with_the_interpreter() {
        // The reference interpreter recurses natively, so give it a thread
        // with enough stack to reach its own MAX_DEPTH guard.
        let handle = std::thread::Builder::new()
            .stack_size(256 * 1024 * 1024)
            .spawn(|| {
                let program = parse_program(LOWERABLE_COUNTER).expect("parse");
                let deep = interp::run(&program, &left_chain(MAX_DEPTH));
                let fits = interp::run(&program, &left_chain(MAX_DEPTH - 1));
                (deep.is_err(), fits.is_ok())
            })
            .expect("spawn");
        let (deep_errs, fits_ok) = handle.join().expect("interpreter thread");
        assert!(deep_errs, "interpreter refuses the over-deep chain");
        assert!(fits_ok, "interpreter accepts the chain within the cap");
    }

    #[test]
    fn nil_dereference_matches_interpreter() {
        let source = r#"
            fn Main(n) {
                x = n.l.v;
                return x;
            }
        "#;
        let tree = ValueTree::single();
        let program = parse_program(source).expect("parse");
        let compiled = crate::compile::compile(&program).expect("compile");
        assert!(matches!(
            run_program(&compiled, &tree),
            Err(VmError::NilDereference)
        ));
        check_against_interp(source, &tree);
    }

    #[test]
    fn unset_variables_read_zero() {
        let source = r#"
            fn Main(n) {
                return x + 1;
            }
        "#;
        check_against_interp(source, &ValueTree::single());
    }
}
