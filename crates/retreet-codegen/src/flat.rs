//! Flat node-index trees: the VM's memory representation.
//!
//! The interpreter walks a [`ValueTree`] whose per-node fields live in a
//! `BTreeMap<String, i64>` — every field access hashes a string.  The VM
//! instead addresses nodes by dense `u32` index and fields by compile-time
//! resolved column id: a [`FlatTree`] is a structure-of-arrays view (left
//! child, right child, one `i64` column per field) built once per run from
//! the input [`ValueTree`] and written back once at the end.

use retreet_analysis::vtree::{NodeId, ValueTree};

/// The nil sentinel: `u32::MAX` marks an absent child (and the nil node a
/// callee may legally run on).
pub const NIL: u32 = u32::MAX;

/// A structure-of-arrays k-ary tree with integer field columns: one dense
/// `u32` child column per axis, one `i64` column per field.
#[derive(Debug, Clone)]
pub struct FlatTree {
    children: Vec<Vec<u32>>,
    columns: Vec<Vec<i64>>,
}

impl FlatTree {
    /// Builds the binary flat view of `tree` (axes `l`/`r` only); see
    /// [`FlatTree::from_value_tree_kary`] for higher arities.
    pub fn from_value_tree(tree: &ValueTree, fields: &[String]) -> Self {
        FlatTree::from_value_tree_kary(tree, fields, 2)
    }

    /// Builds the flat view of `tree` with `arity` child columns and one
    /// field column per name in `fields` (column order is the caller's
    /// field-id assignment).  Unset fields read as 0, exactly like
    /// [`ValueTree::field`].
    pub fn from_value_tree_kary(tree: &ValueTree, fields: &[String], arity: u8) -> Self {
        let n = tree.len();
        let mut children = vec![vec![NIL; n]; arity.max(2) as usize];
        for node in tree.nodes() {
            let i = node.as_usize();
            for (axis, column) in children.iter_mut().enumerate() {
                if let Some(child) = tree.child(node, axis) {
                    column[i] = child.0;
                }
            }
        }
        let columns = fields
            .iter()
            .map(|field| {
                (0..n as u32)
                    .map(|i| tree.field(NodeId(i), field))
                    .collect()
            })
            .collect();
        FlatTree { children, columns }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.children[0].len()
    }

    /// True when the tree has no nodes (never the case for trees built from
    /// a [`ValueTree`], which always has a root).
    pub fn is_empty(&self) -> bool {
        self.children[0].is_empty()
    }

    /// The root node index, or [`NIL`] for an empty tree.
    pub fn root(&self) -> u32 {
        if self.is_empty() {
            NIL
        } else {
            0
        }
    }

    /// Child of `node` along `axis` ([`NIL`] when absent).
    #[inline]
    pub fn child(&self, node: u32, axis: usize) -> u32 {
        self.children[axis][node as usize]
    }

    /// Left child of `node` ([`NIL`] when absent) — axis 0.
    #[inline]
    pub fn left(&self, node: u32) -> u32 {
        self.children[0][node as usize]
    }

    /// Right child of `node` ([`NIL`] when absent) — axis 1.
    #[inline]
    pub fn right(&self, node: u32) -> u32 {
        self.children[1][node as usize]
    }

    /// Reads column `field` of `node`.
    #[inline]
    pub fn get(&self, field: u16, node: u32) -> i64 {
        self.columns[field as usize][node as usize]
    }

    /// Writes column `field` of `node`.
    #[inline]
    pub fn set(&mut self, field: u16, node: u32, value: i64) {
        self.columns[field as usize][node as usize] = value;
    }

    /// Applies the column values back onto a copy of `original` (the tree
    /// the flat view was built from), yielding the post-run [`ValueTree`].
    pub fn write_back(&self, original: &ValueTree, fields: &[String]) -> ValueTree {
        let mut tree = original.clone();
        for (column, field) in self.columns.iter().zip(fields.iter()) {
            for (i, value) in column.iter().enumerate() {
                tree.set_field(NodeId(i as u32), field, *value);
            }
        }
        tree
    }
}

/// Semantic tree equality: same shape and every field of every node reads
/// the same value through [`ValueTree::field`] (which defaults unset fields
/// to 0).  This is the equality differential tests need — the VM
/// materializes explicit `0` entries where the interpreter leaves a field
/// unset, so raw [`ValueTree`] equality is too strict.
pub fn trees_agree(a: &ValueTree, b: &ValueTree) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for node in a.nodes() {
        for axis in 0..retreet_lang::ast::MAX_ARITY as usize {
            if a.child(node, axis) != b.child(node, axis) {
                return false;
            }
        }
    }
    let mut fields: Vec<String> = a
        .field_snapshot()
        .into_keys()
        .chain(b.field_snapshot().into_keys())
        .map(|(_, field)| field)
        .collect();
    fields.sort();
    fields.dedup();
    for node in a.nodes() {
        for field in &fields {
            if a.field(node, field) != b.field(node, field) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_view_roundtrips_fields_and_shape() {
        let mut tree = ValueTree::single();
        let root = tree.root();
        let l = tree.add_left(root);
        tree.set_field(root, "v", 7);
        tree.set_field(l, "v", -3);
        let fields = vec!["v".to_string(), "w".to_string()];
        let mut flat = FlatTree::from_value_tree(&tree, &fields);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.left(0), 1);
        assert_eq!(flat.right(0), NIL);
        assert_eq!(flat.get(0, 0), 7);
        assert_eq!(flat.get(1, 1), 0, "unset fields read 0");
        flat.set(1, 0, 42);
        let back = flat.write_back(&tree, &fields);
        assert_eq!(back.field(root, "w"), 42);
        assert_eq!(back.field(l, "v"), -3);
        assert!(trees_agree(&back, &back));
    }

    #[test]
    fn trees_agree_is_semantic_not_structural() {
        let a = ValueTree::single();
        let mut b = ValueTree::single();
        b.set_field(b.root(), "v", 0);
        // Raw equality differs (explicit 0 entry), semantic equality holds.
        assert_ne!(a, b);
        assert!(trees_agree(&a, &b));
        b.set_field(b.root(), "v", 1);
        assert!(!trees_agree(&a, &b));
    }
}
