//! Certified iterative lowering: recursion → explicit-worklist loop.
//!
//! A self-recursive traversal of the shape
//!
//! ```text
//! fn F(n) {
//!     if (nil(n)) { return c₁, …, cₖ; }
//!     else {
//!         ⟨pre⟩                  // straight-line work on n
//!         r… = F(n.d₁);
//!         ⟨mid⟩
//!         r… = F(n.d₂);          // d₂ ≠ d₁
//!         ⟨post⟩
//!         return c₁, …, cₖ;      // same constants as the nil arm
//!     }
//! }
//! ```
//!
//! is equivalent to a depth-first loop over an explicit worklist — no call
//! stack, no per-activation environment.  [`lower_function`] recognizes the
//! shape; the lowering is **never trusted**: [`certify_lowering`]
//! reconstructs a recursive function from the lowering's own pieces and asks
//! the verifier for an equivalence verdict between the original program and
//! the reconstruction (translation validation).  Only a positive verdict
//! lets the compiler emit the iterative form; a refusal carries the
//! verifier's concrete counterexample.

use std::fmt;

use retreet_lang::ast::{
    AExpr, Assign, BExpr, Block, BlockKind, CallBlock, ChildAxis, Func, Ident, NodeRef, Program,
    Stmt, StraightBlock,
};
use retreet_lang::rewrite::{flatten_seq, normalize_program};
use retreet_verify::{Query, Verdict, Verifier, VerifyError};

/// A recognized (not yet certified) iterative form of one function.
#[derive(Debug, Clone)]
pub struct IterativeLowering {
    /// The lowered function's name.
    pub func: Ident,
    /// The constants both return sites yield.
    pub returns: Vec<i64>,
    /// Child axes of the recursive calls, in visit order (pairwise
    /// distinct).  A binary traversal has two; a `k`-way one up to `k`.
    pub axes: Vec<ChildAxis>,
    /// Result variables of each call, indexed like [`Self::axes`] (dead in
    /// the lowered form — the callee returns constants — but needed to
    /// reconstruct the recursion).
    pub call_results: Vec<Vec<Ident>>,
    /// The `axes.len() + 1` straight-line segments: `segments[p]` runs
    /// before the `p`-th call, the final entry after the last call.
    pub segments: Vec<Vec<Stmt>>,
}

/// The verifier's receipt for one lowering: the equivalence verdict between
/// the original program and the recursive reconstruction of the iterative
/// form.  Carried by every [`crate::bytecode::CompiledProgram`] that runs a
/// worklist loop.
#[derive(Debug, Clone)]
pub struct LoweringCertificate {
    /// The lowered function.
    pub func: Ident,
    /// The (positive) equivalence verdict.
    pub verdict: Verdict,
}

/// Why a recognized lowering was refused the fast form.
#[derive(Debug)]
pub enum LoweringError {
    /// The verifier answered, and the answer was *not equivalent* — the
    /// verdict carries the concrete counterexample (tree + valuation on
    /// which the reconstruction disagrees with the original).
    Rejected {
        /// The function whose lowering was refused.
        func: Ident,
        /// The refusing verdict (outcome is `NotEquivalent`).
        verdict: Box<Verdict>,
    },
    /// The verifier could not answer the equivalence query at all.
    Verify(VerifyError),
}

impl fmt::Display for LoweringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoweringError::Rejected { func, verdict } => {
                write!(
                    f,
                    "iterative lowering of `{func}` refused: reconstruction is not \
                     equivalent to the original"
                )?;
                if let Some(ce) = verdict.counterexample() {
                    write!(f, " (counterexample: {ce:?})")?;
                }
                Ok(())
            }
            LoweringError::Verify(err) => write!(f, "lowering certification failed: {err}"),
        }
    }
}

impl std::error::Error for LoweringError {}

/// Recognizes the lowerable shape of `func`, if it has one.  Returning
/// `Some` is only a *candidate* — it grants nothing until
/// [`certify_lowering`] produces a positive verdict.
pub fn lower_function(func: &Func) -> Option<IterativeLowering> {
    if !func.int_params.is_empty() {
        return None;
    }
    // Body must be exactly `if (nil(n)) { return consts } else { … }`.
    let items = flatten_seq(&func.body);
    let [Stmt::If(BExpr::IsNil(NodeRef::Cur), then_branch, else_branch)] = items.as_slice() else {
        return None;
    };
    let nil_returns = const_return(then_branch)?;
    if nil_returns.len() != func.num_returns {
        return None;
    }

    let else_items = flatten_seq(else_branch);
    // At least two top-level self-recursive calls on pairwise distinct
    // child axes, no other calls anywhere.
    let call_positions: Vec<usize> = else_items
        .iter()
        .enumerate()
        .filter(|(_, item)| contains_call(item))
        .map(|(i, _)| i)
        .collect();
    if call_positions.len() < 2 {
        return None;
    }
    let mut axes = Vec::new();
    let mut call_results = Vec::new();
    for &pos in &call_positions {
        let (axis, results) = self_call(&else_items[pos], func)?;
        if axes.contains(&axis) {
            return None;
        }
        axes.push(axis);
        call_results.push(results);
    }

    // Slice the straight-line work between consecutive calls into the
    // `k + 1` segments of the worklist loop.
    let mut segments: Vec<Vec<Stmt>> = Vec::with_capacity(axes.len() + 1);
    segments.push(else_items[..call_positions[0]].to_vec());
    for pair in call_positions.windows(2) {
        segments.push(else_items[pair[0] + 1..pair[1]].to_vec());
    }
    let mut post = else_items[call_positions[call_positions.len() - 1] + 1..].to_vec();
    // The last item must be the constant return, matching the nil arm.
    let ret_item = post.pop()?;
    let Stmt::Block(block) = &ret_item else {
        return None;
    };
    let BlockKind::Straight(straight) = &block.kind else {
        return None;
    };
    let exit_returns: Vec<i64> = straight
        .ret
        .as_ref()?
        .iter()
        .map(|e| match e {
            AExpr::Const(v) => Some(*v),
            _ => None,
        })
        .collect::<Option<_>>()?;
    if exit_returns != nil_returns {
        return None;
    }
    if !straight.assigns.is_empty() {
        // Keep the trailing assignments (without the return) in `post`.
        post.push(Stmt::Block(Block::straight(StraightBlock {
            assigns: straight.assigns.clone(),
            ret: None,
        })));
    }
    segments.push(post);

    // Segments must be pure traversal work: no calls (already checked), no
    // returns, no `Par`, and no variables (reads or writes) — the worklist
    // loop has no per-node environment to keep them in.
    for segment in &segments {
        if !segment.iter().all(segment_ok) {
            return None;
        }
    }

    Some(IterativeLowering {
        func: func.name.clone(),
        returns: nil_returns,
        axes,
        call_results,
        segments,
    })
}

/// Rebuilds a *recursive* function from the lowering's pieces and returns
/// the whole program with that function swapped in (normalized).  This is
/// the subject the verifier compares against the original: if the shape
/// recognizer mis-sliced the function, the reconstruction differs and the
/// equivalence query refuses the lowering.
pub fn reconstruct_recursive(program: &Program, lowering: &IterativeLowering) -> Program {
    let ret_consts: Vec<AExpr> = lowering.returns.iter().map(|v| AExpr::Const(*v)).collect();
    let call = |axis: ChildAxis, results: &[Ident]| {
        Stmt::Block(Block::call(CallBlock {
            results: results.to_vec(),
            callee: lowering.func.clone(),
            target: NodeRef::Child(axis),
            args: Vec::new(),
        }))
    };
    let mut else_items = lowering.segments[0].clone();
    for (i, axis) in lowering.axes.iter().enumerate() {
        else_items.push(call(*axis, &lowering.call_results[i]));
        else_items.extend(lowering.segments[i + 1].iter().cloned());
    }
    else_items.push(Stmt::Block(Block::straight(StraightBlock::ret(
        ret_consts.clone(),
    ))));
    let body = Stmt::if_else(
        BExpr::IsNil(NodeRef::Cur),
        Stmt::Block(Block::straight(StraightBlock::ret(ret_consts))),
        Stmt::Seq(else_items),
    );
    let funcs = program
        .funcs
        .iter()
        .map(|f| {
            if f.name == lowering.func {
                Func {
                    name: f.name.clone(),
                    loc_param: f.loc_param.clone(),
                    int_params: Vec::new(),
                    num_returns: lowering.returns.len(),
                    body: body.clone(),
                }
            } else {
                f.clone()
            }
        })
        .collect();
    normalize_program(&program.with_funcs(funcs))
}

/// Asks the verifier whether the recursive reconstruction of `lowering` is
/// equivalent to `program`.  A positive verdict yields the certificate the
/// compiled program will carry; a negative one refuses the fast form with
/// the verifier's counterexample attached.
pub fn certify_lowering(
    verifier: &Verifier,
    program: &Program,
    lowering: &IterativeLowering,
) -> Result<LoweringCertificate, LoweringError> {
    let reconstructed = reconstruct_recursive(program, lowering);
    let normalized = normalize_program(program);
    match verifier.verify(Query::Equivalence(&normalized, &reconstructed)) {
        Ok(verdict) if verdict.is_equivalent() => Ok(LoweringCertificate {
            func: lowering.func.clone(),
            verdict,
        }),
        Ok(verdict) => Err(LoweringError::Rejected {
            func: lowering.func.clone(),
            verdict: Box::new(verdict),
        }),
        Err(err) => Err(LoweringError::Verify(err)),
    }
}

/// `Some(consts)` when the statement is exactly `return c₁, …, cₖ` with all
/// constants and no assignments.
fn const_return(stmt: &Stmt) -> Option<Vec<i64>> {
    let items = flatten_seq(stmt);
    let [Stmt::Block(block)] = items.as_slice() else {
        return None;
    };
    let BlockKind::Straight(straight) = &block.kind else {
        return None;
    };
    if !straight.assigns.is_empty() {
        return None;
    }
    straight
        .ret
        .as_ref()?
        .iter()
        .map(|e| match e {
            AExpr::Const(v) => Some(*v),
            _ => None,
        })
        .collect()
}

/// `Some((axis, results))` when the statement is a zero-argument
/// self-recursive call on a child of the current node.
fn self_call(stmt: &Stmt, func: &Func) -> Option<(ChildAxis, Vec<Ident>)> {
    let Stmt::Block(block) = stmt else {
        return None;
    };
    let BlockKind::Call(call) = &block.kind else {
        return None;
    };
    if call.callee != func.name || !call.args.is_empty() {
        return None;
    }
    let NodeRef::Child(axis) = call.target else {
        return None;
    };
    Some((axis, call.results.clone()))
}

fn contains_call(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Block(block) => matches!(block.kind, BlockKind::Call(_)),
        Stmt::If(_, a, b) => contains_call(a) || contains_call(b),
        Stmt::Seq(items) | Stmt::Par(items) => items.iter().any(contains_call),
    }
}

/// True when the statement is valid traversal-segment work: straight-line
/// field reads/writes and conditionals only — no calls, no returns, no
/// `Par`, no variables.
fn segment_ok(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Block(block) => match &block.kind {
            BlockKind::Call(_) => false,
            BlockKind::Straight(straight) => {
                straight.ret.is_none()
                    && straight.assigns.iter().all(|assign| match assign {
                        Assign::SetVar(..) => false,
                        Assign::SetField(_, _, value) => var_free(value),
                    })
            }
        },
        Stmt::If(cond, a, b) => cond_var_free(cond) && segment_ok(a) && segment_ok(b),
        Stmt::Seq(items) => items.iter().all(segment_ok),
        Stmt::Par(_) => false,
    }
}

fn var_free(expr: &AExpr) -> bool {
    match expr {
        AExpr::Const(_) | AExpr::Field(_, _) => true,
        AExpr::Var(_) => false,
        AExpr::Add(a, b) | AExpr::Sub(a, b) => var_free(a) && var_free(b),
    }
}

fn cond_var_free(cond: &BExpr) -> bool {
    match cond {
        BExpr::True | BExpr::IsNil(_) => true,
        BExpr::Gt(expr) => var_free(expr),
        BExpr::Not(inner) => cond_var_free(inner),
        BExpr::And(a, b) => cond_var_free(a) && cond_var_free(b),
    }
}
