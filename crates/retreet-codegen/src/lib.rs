//! `retreet-codegen`: the certified bytecode execution tier.
//!
//! The tree-walking interpreter in `retreet-analysis` is the semantic
//! reference: it records a full trace, keeps a `HashMap` environment per
//! activation and resolves field names through string maps — exactly what a
//! reference implementation should do, and exactly what a fast one should
//! not.  This crate adds the fast form:
//!
//! 1. [`compile()`] lowers a program to compact register-based bytecode
//!    ([`bytecode::CompiledProgram`]): variables become registers, fields
//!    become column ids, structured control flow becomes jumps, and call
//!    results become scatter lists.
//! 2. [`lower`] additionally recognizes self-recursive traversals that can
//!    run as an explicit-worklist loop — and *certifies* each lowering by
//!    reconstructing the recursion from the lowered pieces and asking
//!    `retreet-verify` for an equivalence verdict (translation validation).
//!    Uncertified lowerings are refused and fall back to frame bytecode.
//! 3. [`vm::Vm`] executes either form against a [`flat::FlatTree`]
//!    (structure-of-arrays node storage, dense `u32` node indices) with
//!    pooled frames and registers, no tracing, and interpreter-exact
//!    semantics.
//!
//! The interpreter stays available as the differential baseline; the
//! workspace's differential suite runs both on the same inputs and demands
//! identical returns, trees and error outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytecode;
pub mod compile;
pub mod flat;
pub mod lower;
pub mod vm;

use retreet_lang::ast::Program;
use retreet_transform::CertifiedTransform;
use retreet_verify::Verifier;

pub use bytecode::{CompiledProgram, FuncCode};
pub use compile::{compile, program_fields, CompileError};
pub use flat::{trees_agree, FlatTree, NIL};
pub use lower::{
    certify_lowering, lower_function, reconstruct_recursive, IterativeLowering,
    LoweringCertificate, LoweringError,
};
pub use vm::{run_program, Vm, VmError, VmResult};

use std::fmt;

/// Any failure while producing a compiled program.
#[derive(Debug)]
pub enum CodegenError {
    /// The bytecode compiler rejected the program.
    Compile(CompileError),
    /// Lowering certification could not run (verifier error).  Note that a
    /// *negative* verdict is not an error at this level — the function just
    /// keeps its frame-based form; see [`compile_with_lowering`].
    Verify(retreet_verify::VerifyError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Compile(err) => write!(f, "compile error: {err}"),
            CodegenError::Verify(err) => write!(f, "certification error: {err}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<CompileError> for CodegenError {
    fn from(err: CompileError) -> Self {
        CodegenError::Compile(err)
    }
}

/// Compiles `program` with certified iterative lowering: every function
/// whose shape [`lower_function`] recognizes is submitted to the verifier,
/// and only positively-certified lowerings execute as worklist loops — the
/// rest keep frame-based bytecode.  The returned program carries one
/// [`LoweringCertificate`] per lowered function.
pub fn compile_with_lowering(
    verifier: &Verifier,
    program: &Program,
) -> Result<CompiledProgram, CodegenError> {
    let mut certified = Vec::new();
    for func in &program.funcs {
        let Some(lowering) = lower_function(func) else {
            continue;
        };
        match certify_lowering(verifier, program, &lowering) {
            Ok(certificate) => certified.push((lowering, certificate)),
            // A refused lowering is not fatal: the function simply keeps
            // its (always-correct) frame-based form.
            Err(LoweringError::Rejected { .. }) => {}
            Err(LoweringError::Verify(err)) => return Err(CodegenError::Verify(err)),
        }
    }
    compile::compile_program(program, &certified).map_err(CodegenError::Compile)
}

/// Compiles the *transformed* side of a certified transform (fusion,
/// parallelization) with lowering — the compiled fast form of a program the
/// verifier already certified equivalent to its original.
pub fn compile_certified(
    verifier: &Verifier,
    transform: &CertifiedTransform,
) -> Result<CompiledProgram, CodegenError> {
    compile_with_lowering(verifier, &transform.transformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_analysis::interp;
    use retreet_analysis::vtree::ValueTree;
    use retreet_lang::corpus;

    fn quick_verifier() -> Verifier {
        Verifier::builder().build()
    }

    #[test]
    fn corpus_programs_compile() {
        for (name, program) in corpus::all() {
            match compile(&program) {
                Ok(compiled) => assert!(compiled.code_len() > 0, "{name}: empty code"),
                Err(err) => panic!("{name}: {err}"),
            }
        }
    }

    #[test]
    fn unknown_callee_is_a_compile_error() {
        let program = retreet_lang::parser::parse_program("fn Main(n) { x = Ghost(n); return x; }")
            .expect("parse");
        assert!(matches!(
            compile(&program),
            Err(CompileError::UnknownFunction(name)) if name == "Ghost"
        ));
    }

    #[test]
    fn lowering_is_certified_and_matches_interpreter() {
        let program = corpus::tree_mutation_original();
        let verifier = quick_verifier();
        let compiled = compile_with_lowering(&verifier, &program).expect("compile");
        assert!(
            !compiled.lowered_funcs().is_empty(),
            "expected at least one certified lowering in tree_mutation"
        );
        assert_eq!(compiled.lowerings.len(), compiled.lowered_funcs().len());
        for cert in &compiled.lowerings {
            assert!(cert.verdict.is_equivalent(), "{}: bad verdict", cert.func);
        }
        let mut tree = ValueTree::complete(6, &["v"], |_, _| 0);
        tree.fill_fields(&["v"], 11);
        let expected = interp::run(&program, &tree).expect("interp");
        let actual = run_program(&compiled, &tree).expect("vm");
        assert_eq!(expected.returns, actual.returns);
        assert!(trees_agree(&expected.tree, &actual.tree));
    }

    #[test]
    fn broken_lowering_is_refused_with_witness() {
        let program = corpus::tree_mutation_original();
        let func = program
            .funcs
            .iter()
            .find(|f| lower_function(f).is_some())
            .expect("a lowerable function");
        let mut lowering = lower_function(func).expect("lowering");
        // Sabotage: visit the first child twice, dropping the other subtree.
        lowering.axes[1] = lowering.axes[0];
        let verifier = quick_verifier();
        match certify_lowering(&verifier, &program, &lowering) {
            Err(LoweringError::Rejected {
                func: name,
                verdict,
            }) => {
                assert_eq!(name, lowering.func);
                assert!(
                    verdict.counterexample().is_some(),
                    "refusal must carry a concrete witness"
                );
            }
            other => panic!("sabotaged lowering was not refused: {other:?}"),
        }
    }
}
