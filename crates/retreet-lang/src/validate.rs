//! Well-formedness checks for Retreet programs (§2 and §2.1 of the paper).
//!
//! The checks enforce exactly the restrictions the paper's MSO encoding
//! relies on:
//!
//! * a `Main` entry point exists;
//! * every called function is defined, and call arities match;
//! * the **no-self-call** restriction: a function `g(n, v̄)` never calls
//!   `g(n, …)` on the *same* node, directly or indirectly through a chain of
//!   same-node calls (calls on `n.l`/`n.r` make progress down the tree and
//!   are fine) — this is what bounds executions to `O(|P| · h(T))` steps;
//! * **single-node traversal**: every call's location argument is `n`,
//!   `n.l`, or `n.r` (built into the AST, re-checked here);
//! * **no tree mutation**: no assignment to the pointer fields `l`/`r`
//!   (rejected by the parser, re-checked here for programmatically built
//!   ASTs);
//! * consistent return arities across all `return` statements of a function
//!   and all calls to it.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Assign, BlockKind, Func, NodeRef, Program, Stmt, MAIN};

/// A single validation diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// The function the problem was found in (empty for program-level
    /// problems).
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.func.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "in function `{}`: {}", self.func, self.message)
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a program, returning every problem found (empty = valid).
pub fn validate(program: &Program) -> Vec<ValidationError> {
    let mut errors = Vec::new();

    // Duplicate function names.
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for func in &program.funcs {
        *seen.entry(func.name.as_str()).or_default() += 1;
    }
    for (name, count) in &seen {
        if *count > 1 {
            errors.push(ValidationError {
                func: String::new(),
                message: format!("function `{name}` is defined {count} times"),
            });
        }
    }

    // Entry point.
    if program.main().is_none() {
        errors.push(ValidationError {
            func: String::new(),
            message: format!("no `{MAIN}` entry point"),
        });
    }

    for func in &program.funcs {
        validate_func(program, func, &mut errors);
    }

    // The no-self-call restriction: no cycle in the same-node call graph.
    check_same_node_cycles(program, &mut errors);

    errors
}

/// Convenience wrapper returning `Err` on the first batch of problems.
pub fn validate_or_err(program: &Program) -> Result<(), Vec<ValidationError>> {
    let errors = validate(program);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_func(program: &Program, func: &Func, errors: &mut Vec<ValidationError>) {
    let mut push = |message: String| {
        errors.push(ValidationError {
            func: func.name.clone(),
            message,
        })
    };

    let mut return_arities: Vec<usize> = Vec::new();
    for block in func.blocks() {
        match &block.kind {
            BlockKind::Call(call) => match program.func(&call.callee) {
                None => push(format!("call to undefined function `{}`", call.callee)),
                Some(callee) => {
                    if call.args.len() != callee.int_params.len() {
                        push(format!(
                            "call to `{}` passes {} integer argument(s), expected {}",
                            call.callee,
                            call.args.len(),
                            callee.int_params.len()
                        ));
                    }
                    if !call.results.is_empty() && call.results.len() != callee.num_returns {
                        push(format!(
                            "call to `{}` binds {} result(s), but it returns {}",
                            call.callee,
                            call.results.len(),
                            callee.num_returns
                        ));
                    }
                    if call.callee == func.name && call.target == NodeRef::Cur {
                        push(format!(
                            "function `{}` calls itself on the same node `{}` (violates the \
                                 no-self-call restriction)",
                            func.name, func.loc_param
                        ));
                    }
                }
            },
            BlockKind::Straight(straight) => {
                for assign in &straight.assigns {
                    if let Assign::SetField(_, field, _) = assign {
                        if field == "l" || field == "r" {
                            push(
                                "assignment to a pointer field (tree mutation) is not allowed"
                                    .to_string(),
                            );
                        }
                    }
                }
                if let Some(ret) = &straight.ret {
                    return_arities.push(ret.len());
                }
            }
        }
    }
    for arity in &return_arities {
        if *arity != func.num_returns {
            push(format!(
                "inconsistent return arity: found {}, function declares {}",
                arity, func.num_returns
            ));
            break;
        }
    }
}

/// Builds the *same-node* call graph (edges `g → h` when `g` contains a call
/// to `h` on the current node `n`) and reports every cycle, which would let a
/// function reach itself without descending the tree.
fn check_same_node_cycles(program: &Program, errors: &mut Vec<ValidationError>) {
    let n = program.funcs.len();
    let index: HashMap<&str, usize> = program
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, func) in program.funcs.iter().enumerate() {
        for block in func.blocks() {
            if let BlockKind::Call(call) = &block.kind {
                if call.target == NodeRef::Cur {
                    if let Some(&j) = index.get(call.callee.as_str()) {
                        edges[i].push(j);
                    }
                }
            }
        }
    }
    // A cycle exists iff some function can reach itself via same-node edges.
    for start in 0..n {
        let mut visited = vec![false; n];
        let mut stack = vec![start];
        let mut reached_self = false;
        while let Some(node) = stack.pop() {
            for &next in &edges[node] {
                if next == start {
                    reached_self = true;
                    break;
                }
                if !visited[next] {
                    visited[next] = true;
                    stack.push(next);
                }
            }
            if reached_self {
                break;
            }
        }
        if reached_self {
            errors.push(ValidationError {
                func: program.funcs[start].name.clone(),
                message: format!(
                    "function `{}` can call itself on the same node through same-node calls \
                     (violates the no-self-call restriction)",
                    program.funcs[start].name
                ),
            });
        }
    }
}

/// Checks whether a statement contains any parallel composition; useful for
/// clients that need to know whether race analysis is relevant at all.
pub fn has_parallelism(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Block(_) => false,
        Stmt::If(_, a, b) => has_parallelism(a) || has_parallelism(b),
        Stmt::Seq(items) => items.iter().any(has_parallelism),
        Stmt::Par(items) => !items.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn errors_of(src: &str) -> Vec<ValidationError> {
        validate(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_the_running_example() {
        let src = r#"
            fn Odd(n) {
                if (n == nil) { return 0; } else {
                    ls = Even(n.l);
                    rs = Even(n.r);
                    return ls + rs + 1;
                }
            }
            fn Even(n) {
                if (n == nil) { return 0; } else {
                    ls = Odd(n.l);
                    rs = Odd(n.r);
                    return ls + rs;
                }
            }
            fn Main(n) {
                { o = Odd(n); || e = Even(n); }
                return o, e;
            }
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn missing_main_is_reported() {
        let src = "fn F(n) { return 0; }";
        let errors = errors_of(src);
        assert!(errors.iter().any(|e| e.message.contains("Main")));
    }

    #[test]
    fn undefined_callee_is_reported() {
        let src = r#"
            fn Main(n) {
                x = Ghost(n.l);
                return x;
            }
        "#;
        let errors = errors_of(src);
        assert!(errors.iter().any(|e| e.message.contains("undefined")));
    }

    #[test]
    fn direct_same_node_self_call_is_rejected() {
        let src = r#"
            fn F(n, k) {
                if (k > 0) {
                    x = F(n, k - 1);
                    return x;
                } else {
                    return 0;
                }
            }
            fn Main(n) {
                y = F(n, 3);
                return y;
            }
        "#;
        let errors = errors_of(src);
        assert!(errors.iter().any(|e| e.message.contains("no-self-call")));
    }

    #[test]
    fn indirect_same_node_cycle_is_rejected() {
        let src = r#"
            fn A(n) {
                x = B(n);
                return x;
            }
            fn B(n) {
                y = A(n);
                return y;
            }
            fn Main(n) {
                z = A(n);
                return z;
            }
        "#;
        let errors = errors_of(src);
        assert!(
            errors
                .iter()
                .filter(|e| e.message.contains("same-node"))
                .count()
                >= 2
        );
    }

    #[test]
    fn descending_mutual_recursion_is_allowed() {
        let src = r#"
            fn A(n) {
                if (n == nil) { return 0; } else {
                    x = B(n.l);
                    return x;
                }
            }
            fn B(n) {
                if (n == nil) { return 0; } else {
                    y = A(n);
                    return y;
                }
            }
            fn Main(n) {
                z = A(n);
                return z;
            }
        "#;
        // B calls A on the same node, but A only calls B on a child, so the
        // same-node graph has no cycle.
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn arity_mismatches_are_reported() {
        let src = r#"
            fn F(n, a, b) { return a + b; }
            fn Main(n) {
                x = F(n.l, 1);
                return x;
            }
        "#;
        let errors = errors_of(src);
        assert!(errors.iter().any(|e| e.message.contains("argument")));
    }

    #[test]
    fn result_arity_mismatches_are_reported() {
        let src = r#"
            fn F(n) { return 1, 2; }
            fn Main(n) {
                x = F(n.l);
                return x;
            }
        "#;
        let errors = errors_of(src);
        assert!(errors.iter().any(|e| e.message.contains("result")));
    }

    #[test]
    fn duplicate_functions_are_reported() {
        let src = r#"
            fn Main(n) { return 0; }
            fn Main(n) { return 1; }
        "#;
        let errors = errors_of(src);
        assert!(errors.iter().any(|e| e.message.contains("defined 2 times")));
    }

    #[test]
    fn has_parallelism_detects_par() {
        let prog = parse_program(
            r#"
            fn Main(n) {
                par { x = A(n.l); y = A(n.r); }
                return x + y;
            }
            fn A(n) { return 0; }
        "#,
        )
        .unwrap();
        assert!(has_parallelism(&prog.main().unwrap().body));
        assert!(!has_parallelism(&prog.func("A").unwrap().body));
    }

    #[test]
    fn validate_or_err_round_trip() {
        let good = parse_program("fn Main(n) { return 0; }").unwrap();
        assert!(validate_or_err(&good).is_ok());
        let bad = parse_program("fn F(n) { return 0; }").unwrap();
        assert!(validate_or_err(&bad).is_err());
    }
}
