//! Read/write analysis at the block level (Appendix B of the paper).
//!
//! For every non-call block `s` the analysis computes the *read set* `Rs` and
//! the *write set* `Ws`: which local fields (of the current node or of one of
//! its children) and which local integer variables the block may read or
//! write.  These sets feed the `Write`/`ReadWrite` predicates used by the
//! dependence formula in §4.

use std::collections::BTreeSet;
use std::fmt;

use crate::ast::{Assign, BExpr, BlockKind, Ident, NodeRef};
use crate::blocks::{BlockId, BlockTable, PathElem};

/// A memory location accessed by a block, relative to the node the block runs
/// on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Access {
    /// A local field of `n`, `n.l`, or `n.r`.
    Field(NodeRef, Ident),
    /// A local integer variable of the enclosing function activation.
    Var(Ident),
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Field(node, field) => write!(f, "{node}.{field}"),
            Access::Var(var) => write!(f, "{var}"),
        }
    }
}

/// The read and write sets of a single block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSets {
    /// Locations possibly read.
    pub reads: BTreeSet<Access>,
    /// Locations possibly written.
    pub writes: BTreeSet<Access>,
}

impl RwSets {
    /// Locations read or written.
    pub fn read_writes(&self) -> BTreeSet<Access> {
        self.reads.union(&self.writes).cloned().collect()
    }

    /// The *field* accesses only (variable accesses are activation-local and
    /// cannot race across iterations).
    pub fn field_reads(&self) -> impl Iterator<Item = (&NodeRef, &Ident)> {
        self.reads.iter().filter_map(|a| match a {
            Access::Field(node, field) => Some((node, field)),
            Access::Var(_) => None,
        })
    }

    /// The field writes only.
    pub fn field_writes(&self) -> impl Iterator<Item = (&NodeRef, &Ident)> {
        self.writes.iter().filter_map(|a| match a {
            Access::Field(node, field) => Some((node, field)),
            Access::Var(_) => None,
        })
    }

    /// True when the block performs no field access at all.
    pub fn is_field_pure(&self) -> bool {
        self.field_reads().next().is_none() && self.field_writes().next().is_none()
    }
}

/// Computes the read/write sets of a block.
///
/// Call blocks get the accesses of their argument expressions only — the
/// accesses performed *inside* the callee are attributed to the callee's own
/// blocks (which run as separate iterations).
pub fn rw_sets_of_block(table: &BlockTable, id: BlockId) -> RwSets {
    let mut sets = RwSets::default();
    let info = table.info(id);
    match &info.block.kind {
        BlockKind::Call(call) => {
            for arg in &call.args {
                add_expr_reads(arg, &mut sets);
            }
            for result in &call.results {
                sets.writes.insert(Access::Var(result.clone()));
            }
        }
        BlockKind::Straight(straight) => {
            for assign in &straight.assigns {
                match assign {
                    Assign::SetField(node, field, value) => {
                        add_expr_reads(value, &mut sets);
                        sets.writes.insert(Access::Field(*node, field.clone()));
                    }
                    Assign::SetVar(var, value) => {
                        add_expr_reads(value, &mut sets);
                        sets.writes.insert(Access::Var(var.clone()));
                    }
                }
            }
            if let Some(ret) = &straight.ret {
                for value in ret {
                    add_expr_reads(value, &mut sets);
                }
            }
        }
    }
    // Branch conditions guarding the block read fields too: the paper adds all
    // fields occurring in an if-condition to the read set of the guarded
    // blocks.
    for path in table.paths_to(id) {
        for elem in &path.elems {
            if let PathElem::Assume(cond, _) = elem {
                add_cond_reads(cond, &mut sets);
            }
        }
    }
    sets
}

/// Computes the read/write sets of every block, indexed by block id.
pub fn rw_sets(table: &BlockTable) -> Vec<RwSets> {
    (0..table.len())
        .map(|i| rw_sets_of_block(table, BlockId(i as u32)))
        .collect()
}

fn add_expr_reads(expr: &crate::ast::AExpr, sets: &mut RwSets) {
    for (node, field) in expr.field_reads() {
        sets.reads.insert(Access::Field(node, field.clone()));
    }
    for var in expr.vars() {
        sets.reads.insert(Access::Var(var.clone()));
    }
}

fn add_cond_reads(cond: &BExpr, sets: &mut RwSets) {
    match cond {
        BExpr::True | BExpr::IsNil(_) => {}
        BExpr::Gt(expr) => add_expr_reads(expr, sets),
        BExpr::Not(inner) => add_cond_reads(inner, sets),
        BExpr::And(a, b) => {
            add_cond_reads(a, sets);
            add_cond_reads(b, sets);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ChildAxis;
    use crate::parser::parse_program;

    fn table(src: &str) -> BlockTable {
        BlockTable::build(&parse_program(src).unwrap())
    }

    #[test]
    fn straight_block_reads_and_writes() {
        let table = table(
            r#"
            fn F(n) {
                n.v = n.l.v + 1;
                x = n.v;
                return x;
            }
        "#,
        );
        let sets = rw_sets_of_block(&table, BlockId(0));
        assert!(sets
            .reads
            .contains(&Access::Field(NodeRef::Child(ChildAxis::LEFT), "v".into())));
        assert!(sets
            .reads
            .contains(&Access::Field(NodeRef::Cur, "v".into())));
        assert!(sets
            .writes
            .contains(&Access::Field(NodeRef::Cur, "v".into())));
        assert!(sets.writes.contains(&Access::Var("x".into())));
    }

    #[test]
    fn call_block_accounts_for_args_and_results() {
        let table = table(
            r#"
            fn G(n, k) { return k; }
            fn F(n) {
                y = G(n.l, n.v + 1);
                return y;
            }
        "#,
        );
        // Block 1 is the call inside F (block 0 is G's return).
        let call_id = table.blocks_of_func_named("F")[0];
        let sets = rw_sets_of_block(&table, call_id);
        assert!(sets
            .reads
            .contains(&Access::Field(NodeRef::Cur, "v".into())));
        assert!(sets.writes.contains(&Access::Var("y".into())));
        // The call does not directly read or write fields of the child.
        assert!(!sets
            .writes
            .iter()
            .any(|a| matches!(a, Access::Field(NodeRef::Child(_), _))));
    }

    #[test]
    fn guard_conditions_contribute_reads() {
        let table = table(
            r#"
            fn F(n) {
                if (n.weight > 3) {
                    n.value = 0;
                }
                return 0;
            }
        "#,
        );
        // Block 0 is the guarded assignment.
        let sets = rw_sets_of_block(&table, BlockId(0));
        assert!(sets
            .reads
            .contains(&Access::Field(NodeRef::Cur, "weight".into())));
        assert!(sets
            .writes
            .contains(&Access::Field(NodeRef::Cur, "value".into())));
    }

    #[test]
    fn return_only_block_is_read_only() {
        let table = table(
            r#"
            fn F(n) {
                return n.v;
            }
        "#,
        );
        let sets = rw_sets_of_block(&table, BlockId(0));
        assert!(sets.writes.is_empty());
        assert_eq!(sets.reads.len(), 1);
        assert!(!sets.is_field_pure());
    }

    #[test]
    fn rw_sets_computes_all_blocks() {
        let table = table(
            r#"
            fn F(n) {
                x = 0;
                y = F2(n.l);
                return x + y;
            }
            fn F2(n) { return 1; }
        "#,
        );
        let all = rw_sets(&table);
        assert_eq!(all.len(), table.len());
        // The pure-constant blocks are field-pure.
        assert!(all.iter().any(|s| s.is_field_pure()));
    }

    #[test]
    fn read_writes_union() {
        let table = table(
            r#"
            fn F(n) {
                n.a = n.b;
                return 0;
            }
        "#,
        );
        let sets = rw_sets_of_block(&table, BlockId(0));
        let rw = sets.read_writes();
        assert!(rw.contains(&Access::Field(NodeRef::Cur, "a".into())));
        assert!(rw.contains(&Access::Field(NodeRef::Cur, "b".into())));
    }
}
