//! AST-rewriting utilities: fresh names, alpha renaming, callee renaming,
//! block splicing, inlining, dead-function elimination, and normalization to
//! the parser's canonical shape.
//!
//! These are the building blocks source-to-source transforms (the
//! `retreet-transform` crate) use to construct well-formed [`Program`]s.
//! Every constructor here preserves two invariants the transform layer's
//! certificates depend on:
//!
//! 1. **Validity** — a rewritten program built from a valid program still
//!    passes [`validate`](crate::validate::validate()) (renaming never
//!    captures, splicing never drops a return).
//! 2. **Roundtrip identity** — [`normalize_func`]/[`normalize_program`]
//!    produce the exact AST shape the parser emits, so
//!    `parse_program(print_program(p)) == p` holds structurally for any
//!    normalized program (the property the integration suite tests across
//!    the corpus *and* every generated transform output).

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::ast::{
    AExpr, Assign, BExpr, Block, BlockKind, CallBlock, Func, Ident, NodeRef, Program, Stmt,
    StraightBlock,
};

/// Returns a name based on `base` that does not collide with anything in
/// `used`, and records it as used.  `base` itself is returned when free;
/// otherwise `base_2`, `base_3`, … are probed in order.
pub fn fresh_name(base: &str, used: &mut HashSet<String>) -> String {
    if used.insert(base.to_string()) {
        return base.to_string();
    }
    let mut i = 2usize;
    loop {
        let candidate = format!("{base}_{i}");
        if used.insert(candidate.clone()) {
            return candidate;
        }
        i += 1;
    }
}

/// Every *local integer name* a function mentions: its integer parameters,
/// call-result bindings, `SetVar` targets, and plain variable reads.  Field
/// names are excluded — fields are shared tree state, not locals.
pub fn local_names(func: &Func) -> BTreeSet<Ident> {
    let mut names: BTreeSet<Ident> = func.int_params.iter().cloned().collect();
    collect_stmt_locals(&func.body, &mut names);
    names
}

fn collect_stmt_locals(stmt: &Stmt, names: &mut BTreeSet<Ident>) {
    match stmt {
        Stmt::Block(block) => match &block.kind {
            BlockKind::Call(call) => {
                names.extend(call.results.iter().cloned());
                for arg in &call.args {
                    collect_aexpr_locals(arg, names);
                }
            }
            BlockKind::Straight(straight) => {
                for assign in &straight.assigns {
                    match assign {
                        Assign::SetVar(var, value) => {
                            names.insert(var.clone());
                            collect_aexpr_locals(value, names);
                        }
                        Assign::SetField(_, _, value) => collect_aexpr_locals(value, names),
                    }
                }
                if let Some(ret) = &straight.ret {
                    for value in ret {
                        collect_aexpr_locals(value, names);
                    }
                }
            }
        },
        Stmt::If(cond, then_branch, else_branch) => {
            collect_bexpr_locals(cond, names);
            collect_stmt_locals(then_branch, names);
            collect_stmt_locals(else_branch, names);
        }
        Stmt::Seq(items) | Stmt::Par(items) => {
            for item in items {
                collect_stmt_locals(item, names);
            }
        }
    }
}

fn collect_aexpr_locals(expr: &AExpr, names: &mut BTreeSet<Ident>) {
    for var in expr.vars() {
        names.insert(var.clone());
    }
}

fn collect_bexpr_locals(cond: &BExpr, names: &mut BTreeSet<Ident>) {
    match cond {
        BExpr::True | BExpr::IsNil(_) => {}
        BExpr::Gt(expr) => collect_aexpr_locals(expr, names),
        BExpr::Not(inner) => collect_bexpr_locals(inner, names),
        BExpr::And(a, b) => {
            collect_bexpr_locals(a, names);
            collect_bexpr_locals(b, names);
        }
    }
}

/// Alpha-renames the *locals* of a function (integer parameters, call
/// results, `SetVar` targets, variable reads) through `rename`; names mapped
/// to `None` are kept.  Field names and callee names are untouched.  The
/// `Loc` parameter is normalized to `n` — the only spelling that survives a
/// pretty-print roundtrip, since node references print as `n`/`n.l`/`n.r`.
pub fn rename_locals(func: &Func, rename: &dyn Fn(&str) -> Option<Ident>) -> Func {
    let map = |name: &Ident| rename(name).unwrap_or_else(|| name.clone());
    Func {
        name: func.name.clone(),
        loc_param: "n".to_string(),
        int_params: func.int_params.iter().map(&map).collect(),
        num_returns: func.num_returns,
        body: rename_stmt_locals(&func.body, &map),
    }
}

/// [`rename_locals`] with a uniform prefix: every local `x` becomes
/// `{prefix}{x}` — the capture-free bulk renaming traversal fusion uses to
/// keep merged function bodies disjoint.
pub fn prefix_locals(func: &Func, prefix: &str) -> Func {
    rename_locals(func, &|name| Some(format!("{prefix}{name}")))
}

fn rename_stmt_locals(stmt: &Stmt, map: &dyn Fn(&Ident) -> Ident) -> Stmt {
    match stmt {
        Stmt::Block(block) => Stmt::Block(Block {
            kind: match &block.kind {
                BlockKind::Call(call) => BlockKind::Call(CallBlock {
                    results: call.results.iter().map(map).collect(),
                    callee: call.callee.clone(),
                    target: call.target,
                    args: call.args.iter().map(|a| rename_aexpr(a, map)).collect(),
                }),
                BlockKind::Straight(straight) => BlockKind::Straight(StraightBlock {
                    assigns: straight
                        .assigns
                        .iter()
                        .map(|assign| match assign {
                            Assign::SetVar(var, value) => {
                                Assign::SetVar(map(var), rename_aexpr(value, map))
                            }
                            Assign::SetField(node, field, value) => {
                                Assign::SetField(*node, field.clone(), rename_aexpr(value, map))
                            }
                        })
                        .collect(),
                    ret: straight
                        .ret
                        .as_ref()
                        .map(|values| values.iter().map(|v| rename_aexpr(v, map)).collect()),
                }),
            },
            label: block.label.clone(),
        }),
        Stmt::If(cond, then_branch, else_branch) => Stmt::If(
            rename_bexpr(cond, map),
            Box::new(rename_stmt_locals(then_branch, map)),
            Box::new(rename_stmt_locals(else_branch, map)),
        ),
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(|s| rename_stmt_locals(s, map)).collect()),
        Stmt::Par(items) => Stmt::Par(items.iter().map(|s| rename_stmt_locals(s, map)).collect()),
    }
}

fn rename_aexpr(expr: &AExpr, map: &dyn Fn(&Ident) -> Ident) -> AExpr {
    match expr {
        AExpr::Const(c) => AExpr::Const(*c),
        AExpr::Var(v) => AExpr::Var(map(v)),
        AExpr::Field(node, field) => AExpr::Field(*node, field.clone()),
        AExpr::Add(a, b) => AExpr::add(rename_aexpr(a, map), rename_aexpr(b, map)),
        AExpr::Sub(a, b) => AExpr::sub(rename_aexpr(a, map), rename_aexpr(b, map)),
    }
}

fn rename_bexpr(cond: &BExpr, map: &dyn Fn(&Ident) -> Ident) -> BExpr {
    match cond {
        BExpr::True => BExpr::True,
        BExpr::IsNil(node) => BExpr::IsNil(*node),
        BExpr::Gt(expr) => BExpr::Gt(rename_aexpr(expr, map)),
        BExpr::Not(inner) => BExpr::not(rename_bexpr(inner, map)),
        BExpr::And(a, b) => BExpr::and(rename_bexpr(a, map), rename_bexpr(b, map)),
    }
}

/// Rewrites every call's callee name through `rename` (names mapped to
/// `None` are kept) — how transforms redirect recursive calls into their
/// fused replacements.
pub fn rename_callees(stmt: &Stmt, rename: &dyn Fn(&str) -> Option<Ident>) -> Stmt {
    match stmt {
        Stmt::Block(block) => Stmt::Block(Block {
            kind: match &block.kind {
                BlockKind::Call(call) => BlockKind::Call(CallBlock {
                    results: call.results.clone(),
                    callee: rename(&call.callee).unwrap_or_else(|| call.callee.clone()),
                    target: call.target,
                    args: call.args.clone(),
                }),
                BlockKind::Straight(straight) => BlockKind::Straight(straight.clone()),
            },
            label: block.label.clone(),
        }),
        Stmt::If(cond, then_branch, else_branch) => Stmt::If(
            cond.clone(),
            Box::new(rename_callees(then_branch, rename)),
            Box::new(rename_callees(else_branch, rename)),
        ),
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(|s| rename_callees(s, rename)).collect()),
        Stmt::Par(items) => Stmt::Par(items.iter().map(|s| rename_callees(s, rename)).collect()),
    }
}

/// Flattens a statement into the list of top-level items of its sequential
/// spine: `Seq`s are spliced recursively, everything else is one item.
pub fn flatten_seq(stmt: &Stmt) -> Vec<Stmt> {
    let mut items = Vec::new();
    splice_into(stmt, &mut items);
    items
}

fn splice_into(stmt: &Stmt, items: &mut Vec<Stmt>) {
    match stmt {
        Stmt::Seq(inner) => {
            for item in inner {
                splice_into(item, items);
            }
        }
        other => items.push(other.clone()),
    }
}

/// Composes a list of statements the way the parser does: zero items is
/// `skip`, one item is the item itself, more is a `Seq` — *the* shape rule
/// behind the roundtrip-identity guarantee.
pub fn compose(mut items: Vec<Stmt>) -> Stmt {
    if items.len() == 1 {
        items.pop().unwrap()
    } else {
        Stmt::Seq(items)
    }
}

/// Normalizes a statement to the parser's canonical shape: nested `Seq`s are
/// spliced, adjacent straight-line blocks are merged (unless the first ends
/// in a `return`, which closes its block exactly like the parser's flush),
/// empty straight blocks disappear, labels are dropped, and singleton
/// sequences collapse.
pub fn normalize_stmt(stmt: &Stmt) -> Stmt {
    compose(normalize_items(stmt))
}

fn normalize_items(stmt: &Stmt) -> Vec<Stmt> {
    let mut out: Vec<Stmt> = Vec::new();
    for item in flatten_seq(stmt) {
        let normalized = match item {
            Stmt::Block(block) => match block.kind {
                BlockKind::Straight(straight) => {
                    if straight.assigns.is_empty() && straight.ret.is_none() {
                        continue;
                    }
                    // Merge into the previous straight block when it is
                    // still open (no return yet).
                    if let Some(Stmt::Block(prev)) = out.last_mut() {
                        if let BlockKind::Straight(prev_straight) = &mut prev.kind {
                            if prev_straight.ret.is_none() {
                                prev_straight.assigns.extend(straight.assigns);
                                prev_straight.ret = straight.ret;
                                continue;
                            }
                        }
                    }
                    Stmt::Block(Block::straight(straight))
                }
                BlockKind::Call(call) => Stmt::Block(Block::call(call)),
            },
            Stmt::If(cond, then_branch, else_branch) => Stmt::If(
                cond,
                Box::new(normalize_stmt(&then_branch)),
                Box::new(normalize_stmt(&else_branch)),
            ),
            Stmt::Par(branches) => Stmt::Par(branches.iter().map(normalize_stmt).collect()),
            Stmt::Seq(_) => unreachable!("flatten_seq splices sequences"),
        };
        out.push(normalized);
    }
    out
}

/// Normalizes a function: canonical body shape plus the `n` spelling of the
/// `Loc` parameter.
pub fn normalize_func(func: &Func) -> Func {
    Func {
        name: func.name.clone(),
        loc_param: "n".to_string(),
        int_params: func.int_params.clone(),
        num_returns: func.num_returns,
        body: normalize_stmt(&func.body),
    }
}

/// Normalizes every function of a program.  A normalized program satisfies
/// `parse_program(&print_program(&p)) == Ok(p)` structurally (provided every
/// call binds at least one result, which the grammar requires anyway).
pub fn normalize_program(program: &Program) -> Program {
    program.with_funcs(program.funcs.iter().map(normalize_func).collect())
}

/// Drops every function unreachable from `Main` (call-graph reachability),
/// preserving declaration order — the cleanup pass transforms run after
/// redirecting calls away from the functions they replaced.
pub fn retain_reachable(program: &Program) -> Program {
    let mut reachable: HashSet<String> = HashSet::new();
    let mut work: Vec<String> = vec![crate::ast::MAIN.to_string()];
    while let Some(name) = work.pop() {
        if !reachable.insert(name.clone()) {
            continue;
        }
        if let Some(func) = program.func(&name) {
            for block in func.blocks() {
                if let BlockKind::Call(call) = &block.kind {
                    work.push(call.callee.clone());
                }
            }
        }
    }
    program.with_funcs(
        program
            .funcs
            .iter()
            .filter(|f| reachable.contains(&f.name))
            .cloned()
            .collect(),
    )
}

/// Why a rewrite was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteError {
    /// Human-readable description of the unsupported shape.
    pub message: String,
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for RewriteError {}

fn rewrite_err<T>(message: impl Into<String>) -> Result<T, RewriteError> {
    Err(RewriteError {
        message: message.into(),
    })
}

/// Inlines one call block: replaces `rs = g(target, args)` by `g`'s body
/// with parameters substituted by the arguments and the returns bound to
/// the result variables.
///
/// Supported callee shape (enough for the leaf/accumulator helpers that
/// show up when merging traversals): a body that is a single straight-line
/// block ending in a `return`.  When the call targets a child (`n.l`/`n.r`)
/// the callee's `n.f` reads become `n.l.f`/`n.r.f`; callee bodies that
/// reach *their* children are refused for child-targeted calls (the
/// grandchild is not expressible in the fragment).
pub fn inline_call(program: &Program, call: &CallBlock) -> Result<Vec<Stmt>, RewriteError> {
    let Some(callee) = program.func(&call.callee) else {
        return rewrite_err(format!("cannot inline call to undefined `{}`", call.callee));
    };
    let body_items = flatten_seq(&callee.body);
    let straight = match body_items.as_slice() {
        [Stmt::Block(block)] => match &block.kind {
            BlockKind::Straight(straight) if straight.ret.is_some() => straight.clone(),
            _ => {
                return rewrite_err(format!(
                    "cannot inline `{}`: body is not a single returning straight-line block",
                    call.callee
                ))
            }
        },
        _ => {
            return rewrite_err(format!(
                "cannot inline `{}`: body is not a single straight-line block",
                call.callee
            ))
        }
    };
    if call.args.len() != callee.int_params.len() {
        return rewrite_err(format!(
            "cannot inline `{}`: argument arity mismatch",
            call.callee
        ));
    }
    let ret = straight.ret.clone().unwrap_or_default();
    if call.results.len() != ret.len() {
        return rewrite_err(format!(
            "cannot inline `{}`: result arity mismatch",
            call.callee
        ));
    }
    // Substitution environment: parameters → argument expressions.  Locals
    // assigned inside the body are forwarded through the environment so the
    // common read-only case needs no fresh temporaries — but an entry whose
    // expression *reads a field* must not be forwarded lazily past a later
    // field write (the forwarded expression would re-read the field and see
    // the after-write value).  When the callee body writes any field, such
    // entries are materialized into emitted temporaries at their original
    // position, pinning the before-write value.
    let body_writes_fields = straight
        .assigns
        .iter()
        .any(|a| matches!(a, Assign::SetField(..)));
    let mut used: HashSet<Ident> = program.funcs.iter().flat_map(local_names).collect();
    let mut env: HashMap<Ident, AExpr> = HashMap::new();
    let mut assigns: Vec<Assign> = Vec::new();
    for (param, arg) in callee.int_params.iter().zip(call.args.iter()) {
        let bound = if body_writes_fields && reads_field(arg) {
            let name = fresh_name(param, &mut used);
            assigns.push(Assign::SetVar(name.clone(), arg.clone()));
            AExpr::Var(name)
        } else {
            arg.clone()
        };
        env.insert(param.clone(), bound);
    }
    for assign in &straight.assigns {
        match assign {
            Assign::SetVar(var, value) => {
                let substituted = subst_aexpr(value, &env, call.target)?;
                let bound = if body_writes_fields && reads_field(&substituted) {
                    let name = fresh_name(var, &mut used);
                    assigns.push(Assign::SetVar(name.clone(), substituted));
                    AExpr::Var(name)
                } else {
                    substituted
                };
                env.insert(var.clone(), bound);
            }
            Assign::SetField(node, field, value) => {
                let substituted = subst_aexpr(value, &env, call.target)?;
                let node = retarget(*node, call.target)?;
                assigns.push(Assign::SetField(node, field.clone(), substituted));
            }
        }
    }
    for (result, value) in call.results.iter().zip(ret.iter()) {
        let substituted = subst_aexpr(value, &env, call.target)?;
        assigns.push(Assign::SetVar(result.clone(), substituted));
    }
    Ok(vec![Stmt::Block(Block::straight(StraightBlock {
        assigns,
        ret: None,
    }))])
}

/// True when the expression reads any tree field (and is therefore
/// sensitive to being re-evaluated after a field write).
fn reads_field(expr: &AExpr) -> bool {
    match expr {
        AExpr::Const(_) | AExpr::Var(_) => false,
        AExpr::Field(_, _) => true,
        AExpr::Add(a, b) | AExpr::Sub(a, b) => reads_field(a) || reads_field(b),
    }
}

fn retarget(node: NodeRef, target: NodeRef) -> Result<NodeRef, RewriteError> {
    match (node, target) {
        (node, NodeRef::Cur) => Ok(node),
        (NodeRef::Cur, child) => Ok(child),
        (NodeRef::Child(_), NodeRef::Child(_)) => {
            rewrite_err("cannot inline a child-targeted call whose body reaches its own children")
        }
    }
}

fn subst_aexpr(
    expr: &AExpr,
    env: &HashMap<Ident, AExpr>,
    target: NodeRef,
) -> Result<AExpr, RewriteError> {
    Ok(match expr {
        AExpr::Const(c) => AExpr::Const(*c),
        AExpr::Var(v) => env.get(v).cloned().unwrap_or_else(|| AExpr::Var(v.clone())),
        AExpr::Field(node, field) => AExpr::Field(retarget(*node, target)?, field.clone()),
        AExpr::Add(a, b) => AExpr::add(subst_aexpr(a, env, target)?, subst_aexpr(b, env, target)?),
        AExpr::Sub(a, b) => AExpr::sub(subst_aexpr(a, env, target)?, subst_aexpr(b, env, target)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::parser::parse_program;
    use crate::pretty::print_program;
    use crate::validate::validate;

    #[test]
    fn fresh_names_avoid_collisions() {
        let mut used: HashSet<String> = ["x".to_string(), "x_2".to_string()].into_iter().collect();
        assert_eq!(fresh_name("x", &mut used), "x_3");
        assert_eq!(fresh_name("y", &mut used), "y");
        assert_eq!(fresh_name("y", &mut used), "y_2");
    }

    #[test]
    fn local_names_cover_params_results_and_vars() {
        let program = corpus::size_counting_sequential();
        let odd = program.func("Odd").unwrap();
        let names = local_names(odd);
        assert!(names.contains("ls") && names.contains("rs"));
        let root = corpus::cycletree_original();
        let names = local_names(root.func("RootMode").unwrap());
        assert!(names.contains("number") && names.contains("a") && names.contains("b"));
    }

    #[test]
    fn prefix_rename_preserves_validity_and_semantics_shape() {
        let program = corpus::cycletree_original();
        let renamed_funcs: Vec<Func> = program
            .funcs
            .iter()
            .map(|f| prefix_locals(f, "t0_"))
            .collect();
        let renamed = Program::new(renamed_funcs);
        // Callee names are untouched, so the program still resolves; arities
        // and structure are unchanged.
        assert!(validate(&renamed).is_empty());
        let root = renamed.func("RootMode").unwrap();
        assert_eq!(root.int_params, vec!["t0_number".to_string()]);
        assert!(local_names(root).iter().all(|n| n.starts_with("t0_")));
    }

    #[test]
    fn rename_callees_redirects_calls() {
        let program = corpus::size_counting_sequential();
        let odd = program.func("Odd").unwrap();
        let redirected = rename_callees(&odd.body, &|name| {
            (name == "Even").then(|| "Fused".to_string())
        });
        let redirected_func = Func {
            body: redirected,
            ..odd.clone()
        };
        let callees: Vec<_> = redirected_func
            .blocks()
            .into_iter()
            .filter_map(|b| b.as_call().map(|c| c.callee.clone()))
            .collect();
        assert_eq!(callees, vec!["Fused".to_string(), "Fused".to_string()]);
    }

    #[test]
    fn normalize_merges_adjacent_straight_blocks() {
        use crate::ast::{AExpr, Assign};
        let a = Stmt::Block(Block::straight(StraightBlock {
            assigns: vec![Assign::SetVar("x".into(), AExpr::Const(1))],
            ret: None,
        }));
        let b = Stmt::Block(Block::straight(StraightBlock {
            assigns: vec![Assign::SetVar("y".into(), AExpr::Const(2))],
            ret: Some(vec![AExpr::Var("y".into())]),
        }));
        let merged = normalize_stmt(&Stmt::Seq(vec![
            Stmt::Seq(vec![a]),
            Stmt::Seq(Vec::new()),
            b,
        ]));
        match merged {
            Stmt::Block(block) => {
                let straight = block.as_straight().unwrap();
                assert_eq!(straight.assigns.len(), 2);
                assert!(straight.ret.is_some());
            }
            other => panic!("expected one merged straight block, got {other:?}"),
        }
    }

    #[test]
    fn normalize_respects_return_boundaries() {
        let ret_block = Stmt::Block(Block::straight(StraightBlock::ret(vec![AExpr::Const(0)])));
        let assign_block = Stmt::Block(Block::straight(StraightBlock {
            assigns: vec![Assign::SetVar("x".into(), AExpr::Const(1))],
            ret: None,
        }));
        // A return closes its straight block; a following assignment starts
        // a new one, exactly like the parser's flush.
        let normalized = normalize_stmt(&Stmt::Seq(vec![ret_block, assign_block]));
        match normalized {
            Stmt::Seq(items) => assert_eq!(items.len(), 2),
            other => panic!("expected two blocks, got {other:?}"),
        }
    }

    #[test]
    fn normalized_corpus_programs_are_already_canonical() {
        for (name, program) in corpus::all() {
            assert_eq!(
                normalize_program(&program),
                program,
                "{name} is parser-canonical"
            );
        }
    }

    #[test]
    fn normalized_programs_roundtrip_through_the_printer() {
        for (name, program) in corpus::all() {
            let normalized = normalize_program(&program);
            let printed = print_program(&normalized);
            let reparsed = parse_program(&printed).expect("printed program parses");
            assert_eq!(reparsed, normalized, "{name} roundtrips");
        }
    }

    #[test]
    fn retain_reachable_drops_dead_functions() {
        let program = parse_program(
            r#"
            fn Dead(n) { return 0; }
            fn Live(n) {
                if (n == nil) { return 0; } else {
                    a = Live(n.l);
                    return a;
                }
            }
            fn Main(n) {
                x = Live(n);
                return x;
            }
        "#,
        )
        .unwrap();
        let kept = retain_reachable(&program);
        assert!(kept.func("Dead").is_none());
        assert!(kept.func("Live").is_some() && kept.main().is_some());
    }

    #[test]
    fn inline_leaf_call_substitutes_args_and_results() {
        let program = parse_program(
            r#"
            fn AddOne(n, k) {
                t = k + 1;
                return t;
            }
            fn Main(n) {
                x = AddOne(n, 4);
                return x;
            }
        "#,
        )
        .unwrap();
        let main = program.main().unwrap();
        let call = main.blocks()[0].as_call().unwrap().clone();
        let inlined = inline_call(&program, &call).expect("inlinable");
        match &inlined[..] {
            [Stmt::Block(block)] => {
                let straight = block.as_straight().unwrap();
                // x = (4 + 1), with the temporary forwarded away.
                assert_eq!(straight.assigns.len(), 1);
                assert_eq!(
                    straight.assigns[0],
                    Assign::SetVar("x".into(), AExpr::add(AExpr::Const(4), AExpr::Const(1)))
                );
            }
            other => panic!("expected one straight block, got {other:?}"),
        }
    }

    #[test]
    fn inline_child_call_retargets_fields() {
        let program = parse_program(
            r#"
            fn ReadV(n) {
                return n.v;
            }
            fn Main(n) {
                x = ReadV(n.l);
                return x;
            }
        "#,
        )
        .unwrap();
        let call = program.main().unwrap().blocks()[0]
            .as_call()
            .unwrap()
            .clone();
        let inlined = inline_call(&program, &call).expect("inlinable");
        let Stmt::Block(block) = &inlined[0] else {
            panic!("expected block");
        };
        let straight = block.as_straight().unwrap();
        assert_eq!(
            straight.assigns[0],
            Assign::SetVar(
                "x".into(),
                AExpr::Field(NodeRef::Child(crate::ast::ChildAxis::LEFT), "v".into())
            )
        );
    }

    #[test]
    fn inline_refuses_recursive_and_grandchild_shapes() {
        let program = corpus::size_counting_sequential();
        let main = program.main().unwrap();
        let call = main.blocks()[0].as_call().unwrap().clone();
        // Odd's body is an if with recursive calls — not inlinable.
        assert!(inline_call(&program, &call).is_err());

        let grandchild = parse_program(
            r#"
            fn ReadChild(n) {
                return n.l.v;
            }
            fn Main(n) {
                x = ReadChild(n.r);
                return x;
            }
        "#,
        )
        .unwrap();
        let call = grandchild.main().unwrap().blocks()[0]
            .as_call()
            .unwrap()
            .clone();
        assert!(inline_call(&grandchild, &call).is_err());
    }

    #[test]
    fn inline_materializes_field_reads_before_later_writes() {
        // The callee reads `n.v` *before* overwriting it; the inlined block
        // must pin the before-write value in a temporary instead of lazily
        // forwarding the field read past the write.
        let program = parse_program(
            r#"
            fn Bump(n) {
                t = n.v;
                n.v = 5;
                return t;
            }
            fn Main(n) {
                x = Bump(n);
                return x;
            }
        "#,
        )
        .unwrap();
        let call = program.main().unwrap().blocks()[0]
            .as_call()
            .unwrap()
            .clone();
        let inlined = inline_call(&program, &call).expect("inlinable");
        let Stmt::Block(block) = &inlined[0] else {
            panic!("expected block");
        };
        let straight = block.as_straight().unwrap();
        // Temporary read, field write, result bound to the temporary.
        assert_eq!(straight.assigns.len(), 3);
        let Assign::SetVar(tmp, AExpr::Field(NodeRef::Cur, field)) = &straight.assigns[0] else {
            panic!("expected a materialized field read, got {straight:?}");
        };
        assert_eq!(field, "v");
        assert_ne!(
            tmp, "x",
            "the temporary must not collide with caller locals"
        );
        assert_eq!(
            straight.assigns[1],
            Assign::SetField(NodeRef::Cur, "v".into(), AExpr::Const(5))
        );
        assert_eq!(
            straight.assigns[2],
            Assign::SetVar("x".into(), AExpr::Var(tmp.clone()))
        );
    }

    #[test]
    fn inline_materializes_field_reading_arguments_past_writes() {
        // The argument `n.v` is evaluated caller-side before the call; a
        // callee that writes `n.v` must still see the original argument.
        let program = parse_program(
            r#"
            fn Stash(n, k) {
                n.v = 0;
                return k;
            }
            fn Main(n) {
                x = Stash(n, n.v);
                return x;
            }
        "#,
        )
        .unwrap();
        let call = program.main().unwrap().blocks()[0]
            .as_call()
            .unwrap()
            .clone();
        let inlined = inline_call(&program, &call).expect("inlinable");
        let Stmt::Block(block) = &inlined[0] else {
            panic!("expected block");
        };
        let straight = block.as_straight().unwrap();
        assert_eq!(straight.assigns.len(), 3);
        let Assign::SetVar(tmp, AExpr::Field(NodeRef::Cur, field)) = &straight.assigns[0] else {
            panic!("expected a materialized argument read, got {straight:?}");
        };
        assert_eq!(field, "v");
        assert_eq!(
            straight.assigns[1],
            Assign::SetField(NodeRef::Cur, "v".into(), AExpr::Const(0))
        );
        assert_eq!(
            straight.assigns[2],
            Assign::SetVar("x".into(), AExpr::Var(tmp.clone()))
        );
    }
}
