//! Abstract syntax of the Retreet language (Fig. 2 of the paper).
//!
//! A Retreet program is a set of functions, each taking exactly one location
//! (`Loc`) parameter — the current tree node — plus a vector of integer
//! parameters.  Function bodies are built from *blocks* (function calls or
//! straight-line assignment sequences) combined with conditionals, sequential
//! composition, and parallel composition.
//!
//! Per the simplifying assumptions in §2.1 of the paper, functions only call
//! themselves or others on the current node or one of its direct children,
//! and boolean conditions are built from nil-checks and integer comparisons
//! against zero.  Trees are k-ary: every program declares a child arity
//! (defaulting to the paper's binary trees), and the first two axes keep the
//! paper's `l`/`r` surface spellings.

use std::fmt;

/// Identifiers (function names, parameter names, field names).
pub type Ident = String;

/// Largest child arity a program may declare (`arity K;` headers above this
/// are rejected by the parser, and constructed programs should respect it so
/// downstream structure-of-arrays layouts stay compact).
pub const MAX_ARITY: u8 = 8;

/// A child axis of a k-ary tree node.
///
/// Axes 0 and 1 are the paper's binary `l`/`r` pointers and keep those
/// surface spellings; higher axes are spelled `c2`, `c3`, … (and `c0`/`c1`
/// are accepted as aliases for `l`/`r`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChildAxis(pub u8);

impl ChildAxis {
    /// Axis 0, the binary left child (`n.l`).
    pub const LEFT: ChildAxis = ChildAxis(0);
    /// Axis 1, the binary right child (`n.r`).
    pub const RIGHT: ChildAxis = ChildAxis(1);

    /// The axis as a `usize` index into child arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The canonical surface spelling: `l`, `r`, or `c{k}`.
    pub fn field_name(self) -> String {
        match self.0 {
            0 => "l".to_string(),
            1 => "r".to_string(),
            k => format!("c{k}"),
        }
    }

    /// The indexed surface spelling `c{k}`, valid for every axis.
    pub fn indexed_name(self) -> String {
        format!("c{}", self.0)
    }

    /// All axes below the given arity, in order.
    pub fn up_to(arity: u8) -> impl Iterator<Item = ChildAxis> {
        (0..arity).map(ChildAxis)
    }
}

impl fmt::Display for ChildAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.field_name())
    }
}

/// A location expression relative to the current `Loc` parameter.
///
/// The paper's standing assumptions (§2.1) restrict location expressions to
/// the current node and its direct children, which is exactly what this enum
/// captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// The current node `n`.
    Cur,
    /// A direct child `n.l`, `n.r`, or `n.c{k}`.
    Child(ChildAxis),
}

impl NodeRef {
    /// The current node and both binary children, in a deterministic order
    /// (the arity-2 special case of [`NodeRef::up_to`]).
    pub fn all() -> [NodeRef; 3] {
        [
            NodeRef::Cur,
            NodeRef::Child(ChildAxis::LEFT),
            NodeRef::Child(ChildAxis::RIGHT),
        ]
    }

    /// The current node and every child axis below the given arity.
    pub fn up_to(arity: u8) -> Vec<NodeRef> {
        std::iter::once(NodeRef::Cur)
            .chain(ChildAxis::up_to(arity).map(NodeRef::Child))
            .collect()
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Cur => write!(f, "n"),
            NodeRef::Child(d) => write!(f, "n.{d}"),
        }
    }
}

/// Integer (arithmetic) expressions: `AExpr` in Fig. 2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AExpr {
    /// An integer literal (the grammar only has 0 and 1; we allow any
    /// constant, which is definable as a sum anyway).
    Const(i64),
    /// An integer parameter or local integer variable.
    Var(Ident),
    /// A local field read `n.f`, `n.l.f`, or `n.r.f`.
    Field(NodeRef, Ident),
    /// Addition.
    Add(Box<AExpr>, Box<AExpr>),
    /// Subtraction.
    Sub(Box<AExpr>, Box<AExpr>),
}

impl AExpr {
    /// Convenience constructor for addition.
    #[allow(clippy::should_implement_trait)] // an associated constructor, not `a + b`
    pub fn add(lhs: AExpr, rhs: AExpr) -> AExpr {
        AExpr::Add(Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: AExpr, rhs: AExpr) -> AExpr {
        AExpr::Sub(Box::new(lhs), Box::new(rhs))
    }

    /// Variables read by the expression.
    pub fn vars(&self) -> Vec<&Ident> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a Ident>) {
        match self {
            AExpr::Const(_) => {}
            AExpr::Var(v) => out.push(v),
            AExpr::Field(_, _) => {}
            AExpr::Add(a, b) | AExpr::Sub(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Field reads `(node, field)` performed by the expression.
    pub fn field_reads(&self) -> Vec<(NodeRef, &Ident)> {
        let mut out = Vec::new();
        self.collect_fields(&mut out);
        out
    }

    fn collect_fields<'a>(&'a self, out: &mut Vec<(NodeRef, &'a Ident)>) {
        match self {
            AExpr::Const(_) | AExpr::Var(_) => {}
            AExpr::Field(node, field) => out.push((*node, field)),
            AExpr::Add(a, b) | AExpr::Sub(a, b) => {
                a.collect_fields(out);
                b.collect_fields(out);
            }
        }
    }

    /// Evaluates the expression with the given lookups for variables and
    /// fields.  Returns `None` when a lookup fails (e.g. reading a field of a
    /// nil child).
    pub fn eval<V, F>(&self, var: &V, field: &F) -> Option<i64>
    where
        V: Fn(&Ident) -> Option<i64>,
        F: Fn(NodeRef, &Ident) -> Option<i64>,
    {
        match self {
            AExpr::Const(c) => Some(*c),
            AExpr::Var(v) => var(v),
            AExpr::Field(node, name) => field(*node, name),
            AExpr::Add(a, b) => Some(a.eval(var, field)?.wrapping_add(b.eval(var, field)?)),
            AExpr::Sub(a, b) => Some(a.eval(var, field)?.wrapping_sub(b.eval(var, field)?)),
        }
    }
}

impl fmt::Display for AExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AExpr::Const(c) => write!(f, "{c}"),
            AExpr::Var(v) => write!(f, "{v}"),
            AExpr::Field(node, name) => write!(f, "{node}.{name}"),
            AExpr::Add(a, b) => write!(f, "({a} + {b})"),
            AExpr::Sub(a, b) => write!(f, "({a} - {b})"),
        }
    }
}

/// Boolean expressions: `BExpr` in Fig. 2 (atomic conditions are nil-checks
/// and `AExpr > 0`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BExpr {
    /// Constant true.
    True,
    /// `node == nil`.
    IsNil(NodeRef),
    /// `expr > 0`.
    Gt(AExpr),
    /// Negation.
    Not(Box<BExpr>),
    /// Conjunction.
    And(Box<BExpr>, Box<BExpr>),
}

impl BExpr {
    /// Convenience constructor for negation.
    #[allow(clippy::should_implement_trait)] // an associated constructor, not `!b`
    pub fn not(inner: BExpr) -> BExpr {
        BExpr::Not(Box::new(inner))
    }

    /// Convenience constructor for conjunction.
    pub fn and(lhs: BExpr, rhs: BExpr) -> BExpr {
        BExpr::And(Box::new(lhs), Box::new(rhs))
    }

    /// `lhs > rhs` desugars to `Gt(lhs - rhs)`; the common `lhs > 0` case
    /// stays `Gt(lhs)` (no redundant `- 0`), which keeps parsed conditions
    /// structurally identical across a pretty-print/re-parse roundtrip.
    pub fn gt(lhs: AExpr, rhs: AExpr) -> BExpr {
        if rhs == AExpr::Const(0) {
            BExpr::Gt(lhs)
        } else {
            BExpr::Gt(AExpr::sub(lhs, rhs))
        }
    }

    /// `lhs >= rhs` desugars to `Gt(lhs - rhs + 1)`.
    pub fn ge(lhs: AExpr, rhs: AExpr) -> BExpr {
        BExpr::Gt(AExpr::add(AExpr::sub(lhs, rhs), AExpr::Const(1)))
    }

    /// `lhs < rhs` desugars to `Gt(rhs - lhs)` (with the same zero-operand
    /// simplification as [`BExpr::gt`]).
    pub fn lt(lhs: AExpr, rhs: AExpr) -> BExpr {
        BExpr::gt(rhs, lhs)
    }

    /// `lhs <= rhs` desugars to `Gt(rhs - lhs + 1)`.
    pub fn le(lhs: AExpr, rhs: AExpr) -> BExpr {
        BExpr::Gt(AExpr::add(AExpr::sub(rhs, lhs), AExpr::Const(1)))
    }

    /// `lhs == rhs` over integers desugars to `!(lhs > rhs) && !(rhs > lhs)`.
    pub fn eq_int(lhs: AExpr, rhs: AExpr) -> BExpr {
        BExpr::and(
            BExpr::not(BExpr::gt(lhs.clone(), rhs.clone())),
            BExpr::not(BExpr::gt(rhs, lhs)),
        )
    }

    /// The atomic conditions (nil-checks and comparisons) appearing in the
    /// expression, in syntactic order.
    pub fn atoms(&self) -> Vec<&BExpr> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a BExpr>) {
        match self {
            BExpr::True => {}
            BExpr::IsNil(_) | BExpr::Gt(_) => out.push(self),
            BExpr::Not(inner) => inner.collect_atoms(out),
            BExpr::And(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// Evaluates the condition.
    ///
    /// * `is_nil(node)` answers whether the referenced node is nil,
    /// * `var`/`field` resolve integer reads as in [`AExpr::eval`].
    pub fn eval<N, V, F>(&self, is_nil: &N, var: &V, field: &F) -> Option<bool>
    where
        N: Fn(NodeRef) -> Option<bool>,
        V: Fn(&Ident) -> Option<i64>,
        F: Fn(NodeRef, &Ident) -> Option<i64>,
    {
        match self {
            BExpr::True => Some(true),
            BExpr::IsNil(node) => is_nil(*node),
            BExpr::Gt(expr) => Some(expr.eval(var, field)? > 0),
            BExpr::Not(inner) => inner.eval(is_nil, var, field).map(|b| !b),
            BExpr::And(a, b) => Some(a.eval(is_nil, var, field)? && b.eval(is_nil, var, field)?),
        }
    }
}

impl fmt::Display for BExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BExpr::True => write!(f, "true"),
            BExpr::IsNil(node) => write!(f, "{node} == nil"),
            BExpr::Gt(expr) => write!(f, "{expr} > 0"),
            BExpr::Not(inner) => write!(f, "!({inner})"),
            BExpr::And(a, b) => write!(f, "({a} && {b})"),
        }
    }
}

/// A single non-call assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Assign {
    /// `node.field = expr`.
    SetField(NodeRef, Ident, AExpr),
    /// `var = expr`.
    SetVar(Ident, AExpr),
}

impl fmt::Display for Assign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assign::SetField(node, field, expr) => write!(f, "{node}.{field} = {expr}"),
            Assign::SetVar(var, expr) => write!(f, "{var} = {expr}"),
        }
    }
}

/// A function-call block: `v̄ = g(le, ē)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CallBlock {
    /// Result variables bound to the call's return values (may be empty).
    pub results: Vec<Ident>,
    /// Name of the callee function.
    pub callee: Ident,
    /// The location argument (`n`, `n.l`, or `n.r`).
    pub target: NodeRef,
    /// Integer arguments.
    pub args: Vec<AExpr>,
}

/// A straight-line block: one or more assignments, optionally ending in a
/// `return`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StraightBlock {
    /// The assignments, in order.
    pub assigns: Vec<Assign>,
    /// Return values, when the block ends the function.
    pub ret: Option<Vec<AExpr>>,
}

impl StraightBlock {
    /// A block consisting of a single `return` statement.
    pub fn ret(values: Vec<AExpr>) -> Self {
        StraightBlock {
            assigns: Vec::new(),
            ret: Some(values),
        }
    }
}

/// The payload of a block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// A function call.
    Call(CallBlock),
    /// A straight-line assignment sequence.
    Straight(StraightBlock),
}

/// A code block — the atomic unit of Retreet programs (§3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Block {
    /// The call or straight-line payload.
    pub kind: BlockKind,
    /// Optional user-facing label (`s0`, `s1`, … in the paper's figures).
    pub label: Option<String>,
}

impl Block {
    /// Wraps a call block.
    pub fn call(call: CallBlock) -> Self {
        Block {
            kind: BlockKind::Call(call),
            label: None,
        }
    }

    /// Wraps a straight-line block.
    pub fn straight(straight: StraightBlock) -> Self {
        Block {
            kind: BlockKind::Straight(straight),
            label: None,
        }
    }

    /// Attaches a label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// True when the block is a call.
    pub fn is_call(&self) -> bool {
        matches!(self.kind, BlockKind::Call(_))
    }

    /// The call payload, when the block is a call.
    pub fn as_call(&self) -> Option<&CallBlock> {
        match &self.kind {
            BlockKind::Call(c) => Some(c),
            BlockKind::Straight(_) => None,
        }
    }

    /// The straight-line payload, when the block is not a call.
    pub fn as_straight(&self) -> Option<&StraightBlock> {
        match &self.kind {
            BlockKind::Straight(s) => Some(s),
            BlockKind::Call(_) => None,
        }
    }
}

/// Statements: blocks combined by conditionals, sequencing, and parallel
/// composition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// A leaf block.
    Block(Block),
    /// `if (cond) then_branch else else_branch`.
    If(BExpr, Box<Stmt>, Box<Stmt>),
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// Parallel composition (`{ s ‖ t }` in the paper).
    Par(Vec<Stmt>),
}

impl Stmt {
    /// An empty statement (sequence of nothing).
    pub fn skip() -> Stmt {
        Stmt::Seq(Vec::new())
    }

    /// Convenience constructor for conditionals.
    pub fn if_else(cond: BExpr, then_branch: Stmt, else_branch: Stmt) -> Stmt {
        Stmt::If(cond, Box::new(then_branch), Box::new(else_branch))
    }

    /// Collects references to every block in the statement, in syntactic
    /// order.
    pub fn blocks(&self) -> Vec<&Block> {
        let mut out = Vec::new();
        self.collect_blocks(&mut out);
        out
    }

    fn collect_blocks<'a>(&'a self, out: &mut Vec<&'a Block>) {
        match self {
            Stmt::Block(b) => out.push(b),
            Stmt::If(_, t, e) => {
                t.collect_blocks(out);
                e.collect_blocks(out);
            }
            Stmt::Seq(stmts) | Stmt::Par(stmts) => {
                for s in stmts {
                    s.collect_blocks(out);
                }
            }
        }
    }
}

/// A Retreet function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Func {
    /// Function name.
    pub name: Ident,
    /// The single `Loc` parameter.
    pub loc_param: Ident,
    /// Integer parameters.
    pub int_params: Vec<Ident>,
    /// Number of integer return values.
    pub num_returns: usize,
    /// The function body.
    pub body: Stmt,
}

impl Func {
    /// References to every block in the function body, in syntactic order.
    pub fn blocks(&self) -> Vec<&Block> {
        self.body.blocks()
    }
}

/// A Retreet program: a set of functions with `Main` as the entry point.
///
/// Every program carries a child *arity* — how many child axes its tree
/// nodes have.  Arity is semantic and participates in equality and hashing;
/// the spelling flag below records only how the source wrote child
/// references and is deliberately excluded from both, so `n.l` and `n.c0`
/// programs compare equal.
#[derive(Debug, Clone, Eq)]
pub struct Program {
    /// The functions, in declaration order.
    pub funcs: Vec<Func>,
    /// Number of child axes per tree node (2 for the paper's binary trees).
    pub arity: u8,
    /// True when the source spelled child references as `c0`/`c1`/… rather
    /// than `l`/`r`; the printer reproduces the source's spelling.  Not part
    /// of program identity.
    pub indexed_spelling: bool,
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.funcs == other.funcs && self.arity == other.arity
    }
}

impl std::hash::Hash for Program {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.funcs.hash(state);
        self.arity.hash(state);
    }
}

impl Default for Program {
    fn default() -> Self {
        Program::new(Vec::new())
    }
}

/// Name of the entry-point function.
pub const MAIN: &str = "Main";

impl Program {
    /// Builds a binary-tree (arity 2) program from a list of functions.
    pub fn new(funcs: Vec<Func>) -> Self {
        Program::with_arity(funcs, 2)
    }

    /// Builds a program with an explicit child arity.
    pub fn with_arity(funcs: Vec<Func>, arity: u8) -> Self {
        Program {
            funcs,
            arity,
            indexed_spelling: false,
        }
    }

    /// A copy of this program with the given functions, keeping the arity
    /// and spelling.  Transformation passes use this so rebuilt programs
    /// don't silently revert to binary trees.
    pub fn with_funcs(&self, funcs: Vec<Func>) -> Self {
        Program {
            funcs,
            arity: self.arity,
            indexed_spelling: self.indexed_spelling,
        }
    }

    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Index of a function by name.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// The entry-point function.
    pub fn main(&self) -> Option<&Func> {
        self.func(MAIN)
    }

    /// Total number of blocks across all functions.
    pub fn num_blocks(&self) -> usize {
        self.funcs.iter().map(|f| f.blocks().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_helpers() {
        assert_eq!(ChildAxis::LEFT.field_name(), "l");
        assert_eq!(ChildAxis::RIGHT.field_name(), "r");
        assert_eq!(ChildAxis(2).field_name(), "c2");
        assert_eq!(ChildAxis::LEFT.indexed_name(), "c0");
        assert_eq!(format!("{}", NodeRef::Child(ChildAxis::RIGHT)), "n.r");
        assert_eq!(format!("{}", NodeRef::Child(ChildAxis(3))), "n.c3");
        assert_eq!(NodeRef::up_to(3).len(), 4);
        assert_eq!(NodeRef::up_to(2), NodeRef::all().to_vec());
    }

    #[test]
    fn program_equality_ignores_spelling_but_not_arity() {
        let funcs = vec![Func {
            name: "Main".into(),
            loc_param: "n".into(),
            int_params: vec![],
            num_returns: 0,
            body: Stmt::skip(),
        }];
        let plain = Program::new(funcs.clone());
        let mut indexed = Program::new(funcs.clone());
        indexed.indexed_spelling = true;
        assert_eq!(plain, indexed);
        let ternary = Program::with_arity(funcs, 3);
        assert_ne!(plain, ternary);

        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |p: &Program| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&plain), hash(&indexed));
    }

    #[test]
    fn aexpr_eval_and_vars() {
        let e = AExpr::add(
            AExpr::Var("ls".into()),
            AExpr::sub(AExpr::Field(NodeRef::Cur, "v".into()), AExpr::Const(2)),
        );
        assert_eq!(e.vars(), vec![&"ls".to_string()]);
        assert_eq!(e.field_reads().len(), 1);
        let value = e.eval(
            &|v: &Ident| if v == "ls" { Some(10) } else { None },
            &|node, f: &Ident| {
                if node == NodeRef::Cur && f == "v" {
                    Some(7)
                } else {
                    None
                }
            },
        );
        assert_eq!(value, Some(10 + 7 - 2));
    }

    #[test]
    fn aexpr_eval_fails_on_missing_lookup() {
        let e = AExpr::Var("missing".into());
        assert_eq!(e.eval(&|_| None, &|_, _| None), None);
    }

    #[test]
    fn bexpr_sugar_and_eval() {
        // 3 >= 3 is true, 3 > 3 is false, 3 == 3 is true.
        let no_nil = |_: NodeRef| Some(false);
        let novar = |_: &Ident| None;
        let nofield = |_: NodeRef, _: &Ident| None;
        assert_eq!(
            BExpr::ge(AExpr::Const(3), AExpr::Const(3)).eval(&no_nil, &novar, &nofield),
            Some(true)
        );
        assert_eq!(
            BExpr::gt(AExpr::Const(3), AExpr::Const(3)).eval(&no_nil, &novar, &nofield),
            Some(false)
        );
        assert_eq!(
            BExpr::eq_int(AExpr::Const(3), AExpr::Const(3)).eval(&no_nil, &novar, &nofield),
            Some(true)
        );
        assert_eq!(
            BExpr::lt(AExpr::Const(1), AExpr::Const(2)).eval(&no_nil, &novar, &nofield),
            Some(true)
        );
        assert_eq!(
            BExpr::le(AExpr::Const(3), AExpr::Const(2)).eval(&no_nil, &novar, &nofield),
            Some(false)
        );
    }

    #[test]
    fn bexpr_nil_check() {
        let cond = BExpr::IsNil(NodeRef::Cur);
        assert_eq!(
            cond.eval(&|_| Some(true), &|_| None, &|_, _| None),
            Some(true)
        );
        let neg = BExpr::not(cond);
        assert_eq!(
            neg.eval(&|_| Some(true), &|_| None, &|_, _| None),
            Some(false)
        );
    }

    #[test]
    fn bexpr_atoms_are_collected_in_order() {
        let cond = BExpr::and(
            BExpr::IsNil(NodeRef::Cur),
            BExpr::not(BExpr::Gt(AExpr::Var("x".into()))),
        );
        let atoms = cond.atoms();
        assert_eq!(atoms.len(), 2);
        assert!(matches!(atoms[0], BExpr::IsNil(_)));
        assert!(matches!(atoms[1], BExpr::Gt(_)));
    }

    #[test]
    fn block_accessors() {
        let call = Block::call(CallBlock {
            results: vec!["x".into()],
            callee: "F".into(),
            target: NodeRef::Child(ChildAxis::LEFT),
            args: vec![],
        })
        .with_label("s1");
        assert!(call.is_call());
        assert!(call.as_call().is_some());
        assert!(call.as_straight().is_none());
        assert_eq!(call.label.as_deref(), Some("s1"));

        let straight = Block::straight(StraightBlock::ret(vec![AExpr::Const(0)]));
        assert!(!straight.is_call());
        assert!(straight.as_straight().unwrap().ret.is_some());
    }

    #[test]
    fn stmt_blocks_in_syntactic_order() {
        let s = Stmt::Seq(vec![
            Stmt::Block(Block::straight(StraightBlock::default()).with_label("a")),
            Stmt::if_else(
                BExpr::True,
                Stmt::Block(Block::straight(StraightBlock::default()).with_label("b")),
                Stmt::Block(Block::straight(StraightBlock::default()).with_label("c")),
            ),
        ]);
        let labels: Vec<_> = s
            .blocks()
            .iter()
            .map(|b| b.label.clone().unwrap())
            .collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
    }

    #[test]
    fn program_lookup() {
        let prog = Program::new(vec![Func {
            name: "Main".into(),
            loc_param: "n".into(),
            int_params: vec![],
            num_returns: 0,
            body: Stmt::skip(),
        }]);
        assert!(prog.main().is_some());
        assert_eq!(prog.func_index("Main"), Some(0));
        assert!(prog.func("Missing").is_none());
        assert_eq!(prog.num_blocks(), 0);
    }
}
