//! Symbolic path conditions and weakest preconditions (§3.1 and Appendix C).
//!
//! For a call block `s` (a call to function `g`) and a block `t` inside `g`,
//! the paper defines the path condition `PathCond_{s,t}(u, v, M, N)` as the
//! conjunction of the weakest preconditions of the branch conditions along
//! the intra-procedural path from the entry of `g` to `t`, pulled back
//! through the straight-line code on that path, with the call's speculative
//! environment `M` substituted in.
//!
//! This module computes the same object *symbolically*: walking a
//! [`crate::blocks::BlockPath`] forward while maintaining a symbolic
//! environment (a map from integer variables and local fields to
//! [`LinExpr`]s over parameter symbols, initial field symbols, and ghost
//! call-return symbols), and turning every `assume` on the way into linear
//! constraints.  The result is a [`PathCondition`] in disjunctive normal form
//! over conjunctive [`CondCase`]s, ready to be discharged by
//! `retreet-logic` (for `ConsistentCondSet` computation) or instantiated with
//! concrete values by `retreet-analysis`.

use std::collections::HashMap;

use retreet_logic::{Atom, LinExpr, Sym, SymTab, System};

use crate::ast::{AExpr, Assign, BExpr, BlockKind, Ident, NodeRef};
use crate::blocks::{BlockId, BlockPath, BlockTable, PathElem};

/// Naming helpers for the symbols used by the symbolic execution.
pub mod syms {
    use super::*;

    /// Symbol for an integer parameter or local variable `name` of the
    /// function activation being analysed.
    pub fn param(table: &mut SymTab, name: &str) -> Sym {
        table.intern(&format!("param:{name}"))
    }

    /// Symbol for the *initial* value of a local field at the activation's
    /// node (`n.f`) or one of its children (`n.l.f`, `n.r.f`).
    pub fn field(table: &mut SymTab, node: NodeRef, name: &str) -> Sym {
        table.intern(&format!("field:{node}.{name}"))
    }

    /// Symbol for the `j`-th speculative return value of call block `block`
    /// (the ghost variables of Definition 1).
    pub fn ghost(table: &mut SymTab, block: BlockId, j: usize) -> Sym {
        table.intern(&format!("ghost:{block}:{j}"))
    }
}

/// One conjunctive case of a path condition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CondCase {
    /// Shape constraints: the referenced node must (or must not) be nil.
    pub nil_atoms: Vec<(NodeRef, bool)>,
    /// Arithmetic constraints over parameter/field/ghost symbols.
    pub arith: System,
}

impl CondCase {
    /// Conjoins another case into this one.
    pub fn conjoin(&self, other: &CondCase) -> CondCase {
        let mut out = self.clone();
        out.nil_atoms.extend(other.nil_atoms.iter().cloned());
        out.arith.extend_from(&other.arith);
        out
    }

    /// True when the nil atoms are self-contradictory (the same node required
    /// to be both nil and non-nil).
    pub fn nil_contradiction(&self) -> bool {
        for (i, (node_a, val_a)) in self.nil_atoms.iter().enumerate() {
            for (node_b, val_b) in self.nil_atoms.iter().skip(i + 1) {
                if node_a == node_b && val_a != val_b {
                    return true;
                }
            }
        }
        false
    }
}

/// A path condition in disjunctive normal form: the disjunction of its
/// [`CondCase`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathCondition {
    /// The disjuncts; an empty list means *false*, a single empty case means
    /// *true*.
    pub cases: Vec<CondCase>,
}

impl PathCondition {
    /// The trivially true condition.
    pub fn truth() -> Self {
        PathCondition {
            cases: vec![CondCase::default()],
        }
    }

    /// The trivially false condition.
    pub fn falsity() -> Self {
        PathCondition { cases: Vec::new() }
    }

    /// Conjunction of two path conditions (cartesian product of cases).
    pub fn conjoin(&self, other: &PathCondition) -> PathCondition {
        let mut cases = Vec::with_capacity(self.cases.len() * other.cases.len());
        for a in &self.cases {
            for b in &other.cases {
                let combined = a.conjoin(b);
                if !combined.nil_contradiction() {
                    cases.push(combined);
                }
            }
        }
        PathCondition { cases }
    }

    /// True when no case remains.
    pub fn is_false(&self) -> bool {
        self.cases.is_empty()
    }
}

/// The symbolic environment after executing a path prefix: the symbolic value
/// of every integer variable and every local field touched so far.
#[derive(Debug, Clone, Default)]
pub struct SymbolicEnv {
    vars: HashMap<Ident, LinExpr>,
    fields: HashMap<(NodeRef, Ident), LinExpr>,
}

impl SymbolicEnv {
    /// Creates an environment where every parameter of the activation maps to
    /// its own symbol.
    pub fn for_params(params: &[Ident], table: &mut SymTab) -> Self {
        let mut env = SymbolicEnv::default();
        for p in params {
            let sym = syms::param(table, p);
            env.vars.insert(p.clone(), LinExpr::var(sym));
        }
        env
    }

    /// The symbolic value of a variable (a fresh parameter-style symbol when
    /// the variable has not been assigned yet).
    pub fn var(&mut self, name: &Ident, table: &mut SymTab) -> LinExpr {
        if let Some(value) = self.vars.get(name) {
            return value.clone();
        }
        let sym = syms::param(table, name);
        let value = LinExpr::var(sym);
        self.vars.insert(name.clone(), value.clone());
        value
    }

    /// The symbolic value of a field (the initial field symbol when the field
    /// has not been written on this path).
    pub fn field(&mut self, node: NodeRef, name: &Ident, table: &mut SymTab) -> LinExpr {
        if let Some(value) = self.fields.get(&(node, name.clone())) {
            return value.clone();
        }
        let sym = syms::field(table, node, name);
        let value = LinExpr::var(sym);
        self.fields.insert((node, name.clone()), value.clone());
        value
    }

    /// Symbolically evaluates an integer expression.
    pub fn eval(&mut self, expr: &AExpr, table: &mut SymTab) -> LinExpr {
        match expr {
            AExpr::Const(c) => LinExpr::constant(*c),
            AExpr::Var(v) => self.var(v, table),
            AExpr::Field(node, f) => self.field(*node, f, table),
            AExpr::Add(a, b) => self.eval(a, table) + self.eval(b, table),
            AExpr::Sub(a, b) => self.eval(a, table) - self.eval(b, table),
        }
    }

    /// Applies a non-call assignment.
    pub fn assign(&mut self, assign: &Assign, table: &mut SymTab) {
        match assign {
            Assign::SetVar(v, expr) => {
                let value = self.eval(expr, table);
                self.vars.insert(v.clone(), value);
            }
            Assign::SetField(node, f, expr) => {
                let value = self.eval(expr, table);
                self.fields.insert((*node, f.clone()), value);
            }
        }
    }

    /// Binds the result variables of a call block to its ghost symbols
    /// (Definition 1: speculative outputs `O(c)`).
    pub fn bind_call_results(&mut self, block: BlockId, results: &[Ident], table: &mut SymTab) {
        for (j, result) in results.iter().enumerate() {
            let sym = syms::ghost(table, block, j);
            self.vars.insert(result.clone(), LinExpr::var(sym));
        }
    }
}

/// Converts a boolean condition under a symbolic environment into DNF cases.
pub fn cond_cases(
    cond: &BExpr,
    polarity: bool,
    env: &mut SymbolicEnv,
    table: &mut SymTab,
) -> PathCondition {
    match cond {
        BExpr::True => {
            if polarity {
                PathCondition::truth()
            } else {
                PathCondition::falsity()
            }
        }
        BExpr::IsNil(node) => PathCondition {
            cases: vec![CondCase {
                nil_atoms: vec![(*node, polarity)],
                arith: System::new(),
            }],
        },
        BExpr::Gt(expr) => {
            let value = env.eval(expr, table);
            let atom = if polarity {
                Atom::gt(value, LinExpr::constant(0))
            } else {
                Atom::le(value, LinExpr::constant(0))
            };
            PathCondition {
                cases: vec![CondCase {
                    nil_atoms: Vec::new(),
                    arith: System::from_atoms(vec![atom]),
                }],
            }
        }
        BExpr::Not(inner) => cond_cases(inner, !polarity, env, table),
        BExpr::And(a, b) => {
            if polarity {
                let left = cond_cases(a, true, env, table);
                let right = cond_cases(b, true, env, table);
                left.conjoin(&right)
            } else {
                // ¬(a ∧ b) = ¬a ∨ ¬b.
                let mut cases = cond_cases(a, false, env, table).cases;
                cases.extend(cond_cases(b, false, env, table).cases);
                PathCondition { cases }
            }
        }
    }
}

/// The symbolic summary of walking a whole path: the accumulated path
/// condition and the symbolic environment at the target block.
#[derive(Debug, Clone)]
pub struct PathSummary {
    /// The path condition (weakest preconditions of every branch on the path,
    /// in DNF).
    pub condition: PathCondition,
    /// The symbolic environment when the target block is reached.
    pub env: SymbolicEnv,
}

/// Walks `path` forward from the entry of its function, producing the path
/// condition and the symbolic environment at the target block.
///
/// `params` are the integer parameters of the function the path lives in.
pub fn summarize_path(
    table: &BlockTable,
    path: &BlockPath,
    params: &[Ident],
    symtab: &mut SymTab,
) -> PathSummary {
    let mut env = SymbolicEnv::for_params(params, symtab);
    let mut condition = PathCondition::truth();
    for elem in &path.elems {
        match elem {
            PathElem::Assume(cond, polarity) => {
                let cases = cond_cases(cond, *polarity, &mut env, symtab);
                condition = condition.conjoin(&cases);
            }
            PathElem::Exec(block) => {
                let info = table.info(*block);
                match &info.block.kind {
                    BlockKind::Call(call) => {
                        env.bind_call_results(*block, &call.results, symtab);
                    }
                    BlockKind::Straight(straight) => {
                        for assign in &straight.assigns {
                            env.assign(assign, symtab);
                        }
                    }
                }
            }
        }
    }
    PathSummary { condition, env }
}

/// Computes the symbolic values of a call block's integer arguments under the
/// environment reached at that block (the `Match` constraint of Appendix C:
/// the callee's initial parameters must equal these values).
pub fn symbolic_call_args(
    table: &BlockTable,
    call_block: BlockId,
    env: &mut SymbolicEnv,
    symtab: &mut SymTab,
) -> Vec<LinExpr> {
    let info = table.info(call_block);
    let Some(call) = info.block.as_call() else {
        return Vec::new();
    };
    call.args.iter().map(|arg| env.eval(arg, symtab)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use retreet_logic::Solver;

    #[test]
    fn path_condition_of_the_paper_example() {
        // §3.1: func(n, p, r0) { n.f = p + 1; r1 = r0; if (n.f < r1) {...} else { t } }
        // The path to the else-branch call t has condition  n.f >= r1, i.e.
        // after substitution  p + 1 >= r0.
        let src = r#"
            fn Callee(n, p, r0) {
                n.f = p + 1;
                r1 = r0;
                if (n.f < r1) {
                    return 0;
                } else {
                    t = Callee(n.l, p, r0);
                    return t;
                }
            }
            fn Main(n) {
                x = Callee(n, 0, 0);
                return x;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let table = BlockTable::build(&prog);
        // Find the recursive call block inside Callee.
        let callee_blocks = table.blocks_of_func_named("Callee");
        let call = callee_blocks
            .iter()
            .copied()
            .find(|&b| table.info(b).is_call())
            .unwrap();
        let paths = table.paths_to(call);
        assert_eq!(paths.len(), 1);
        let mut symtab = SymTab::new();
        let summary = summarize_path(
            &table,
            &paths[0],
            &["p".to_string(), "r0".to_string()],
            &mut symtab,
        );
        assert_eq!(summary.condition.cases.len(), 1);
        let case = &summary.condition.cases[0];
        // No nil atoms on this path; one arithmetic constraint p + 1 >= r0
        // (encoded as r0 - (p+1) <= 0).
        assert!(case.nil_atoms.is_empty());
        assert_eq!(case.arith.len(), 1);
        let solver = Solver::new();
        // p = 0, r0 = 0 satisfies the path condition (0+1 >= 0)…
        let p = symtab.lookup("param:p").unwrap();
        let r0 = symtab.lookup("param:r0").unwrap();
        let mut with_values = case.arith.clone();
        with_values.push(Atom::eq(LinExpr::var(p), LinExpr::constant(0)));
        with_values.push(Atom::eq(LinExpr::var(r0), LinExpr::constant(0)));
        assert!(solver.check(&with_values).is_sat());
        // … but p = 0, r0 = 5 does not (1 >= 5 fails).
        let mut bad = case.arith.clone();
        bad.push(Atom::eq(LinExpr::var(p), LinExpr::constant(0)));
        bad.push(Atom::eq(LinExpr::var(r0), LinExpr::constant(5)));
        assert!(solver.check(&bad).is_unsat());
    }

    #[test]
    fn nil_checks_become_shape_atoms() {
        let src = r#"
            fn F(n) {
                if (n == nil) {
                    return 0;
                } else {
                    x = F(n.l);
                    return x;
                }
            }
            fn Main(n) {
                y = F(n);
                return y;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let table = BlockTable::build(&prog);
        let call = table
            .blocks_of_func_named("F")
            .iter()
            .copied()
            .find(|&b| table.info(b).is_call())
            .unwrap();
        let mut symtab = SymTab::new();
        let summary = summarize_path(&table, &table.paths_to(call)[0], &[], &mut symtab);
        let case = &summary.condition.cases[0];
        assert_eq!(case.nil_atoms, vec![(NodeRef::Cur, false)]);
    }

    #[test]
    fn ghost_symbols_for_call_results() {
        let src = r#"
            fn F(n) {
                if (n == nil) {
                    return 0;
                } else {
                    a = F(n.l);
                    b = F(n.r);
                    return a + b;
                }
            }
            fn Main(n) {
                y = F(n);
                return y;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let table = BlockTable::build(&prog);
        // The return block a + b is the last block of F.
        let ret = *table.blocks_of_func_named("F").last().unwrap();
        let mut symtab = SymTab::new();
        let mut summary = summarize_path(&table, &table.paths_to(ret)[0], &[], &mut symtab);
        // After the path, `a` and `b` are bound to ghost symbols of the two
        // call blocks.
        let a_value = summary.env.var(&"a".to_string(), &mut symtab);
        let b_value = summary.env.var(&"b".to_string(), &mut symtab);
        assert_ne!(a_value, b_value);
        assert_eq!(a_value.num_vars(), 1);
        let ghost_names: Vec<String> = symtab
            .iter()
            .filter(|(_, name)| name.starts_with("ghost:"))
            .map(|(_, name)| name.to_string())
            .collect();
        assert_eq!(ghost_names.len(), 2);
    }

    #[test]
    fn negated_conjunction_produces_disjunction() {
        let mut symtab = SymTab::new();
        let mut env = SymbolicEnv::default();
        let cond = BExpr::and(
            BExpr::Gt(AExpr::Var("x".into())),
            BExpr::Gt(AExpr::Var("y".into())),
        );
        let negated = cond_cases(&cond, false, &mut env, &mut symtab);
        assert_eq!(negated.cases.len(), 2);
        let positive = cond_cases(&cond, true, &mut env, &mut symtab);
        assert_eq!(positive.cases.len(), 1);
        assert_eq!(positive.cases[0].arith.len(), 2);
    }

    #[test]
    fn contradictory_nil_atoms_are_pruned() {
        let a = PathCondition {
            cases: vec![CondCase {
                nil_atoms: vec![(NodeRef::Cur, true)],
                arith: System::new(),
            }],
        };
        let b = PathCondition {
            cases: vec![CondCase {
                nil_atoms: vec![(NodeRef::Cur, false)],
                arith: System::new(),
            }],
        };
        assert!(a.conjoin(&b).is_false());
    }

    #[test]
    fn symbolic_call_args_follow_assignments() {
        let src = r#"
            fn F(n, k) {
                k = k + 1;
                x = F(n.l, k + 2);
                return x;
            }
            fn Main(n) {
                y = F(n, 0);
                return y;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let table = BlockTable::build(&prog);
        let call = table
            .blocks_of_func_named("F")
            .iter()
            .copied()
            .find(|&b| table.info(b).is_call())
            .unwrap();
        let mut symtab = SymTab::new();
        let mut summary = summarize_path(
            &table,
            &table.paths_to(call)[0],
            &["k".to_string()],
            &mut symtab,
        );
        let args = symbolic_call_args(&table, call, &mut summary.env, &mut symtab);
        assert_eq!(args.len(), 1);
        // k + 1 + 2 = param:k + 3.
        let k = symtab.lookup("param:k").unwrap();
        assert_eq!(args[0].coeff(k), 1);
        assert_eq!(args[0].constant_term(), 3);
    }
}
