//! The corpus of Retreet programs used throughout the paper and its
//! evaluation (§5).
//!
//! Every case study of the evaluation is available here both as embedded
//! `.retreet` source text (so the parser is exercised end-to-end) and as a
//! parsed, validated [`Program`].  The programs are:
//!
//! * **Size counting** (Fig. 3): the mutually recursive `Odd`/`Even`
//!   traversals, their sequential composition, the valid fusion (Fig. 6a) and
//!   the invalid fusion (Fig. 6b).
//! * **Tree mutation** (Fig. 7): `Swap`; `IncrmLeft` and their fusion, in the
//!   flag-simulated and simplified form described in §5.
//! * **CSS minification** (Fig. 8): `ConvertValues`; `MinifyFont`;
//!   `ReduceInit` over left-child/right-sibling binarized ASTs, and their
//!   fusion.
//! * **Cycletree** (Fig. 9): the four mutually recursive numbering modes
//!   (`RootMode`, `PreMode`, `InMode`, `PostMode`), `ComputeRouting`, their
//!   fusion, and the (racy) parallel composition.

use crate::ast::Program;
use crate::parser::parse_program;
use crate::validate::validate;

/// Parses and validates an embedded corpus program, panicking on any error —
/// the corpus is a compile-time-known artifact, so failures indicate a bug in
/// the crate itself rather than user error.
fn must_parse(name: &str, source: &str) -> Program {
    let program = parse_program(source)
        .unwrap_or_else(|err| panic!("corpus program `{name}` does not parse: {err}"));
    let errors = validate(&program);
    assert!(
        errors.is_empty(),
        "corpus program `{name}` fails validation: {errors:?}"
    );
    program
}

// ---------------------------------------------------------------------------
// Size counting (Fig. 3 / Fig. 6)
// ---------------------------------------------------------------------------

/// Fig. 3: `Odd`/`Even` size counting with the two traversals composed in
/// parallel inside `Main`.
pub const SIZE_COUNTING_PARALLEL_SRC: &str = r#"
fn Odd(n) {
    if (n == nil) {
        return 0;
    } else {
        ls = Even(n.l);
        rs = Even(n.r);
        return ls + rs + 1;
    }
}
fn Even(n) {
    if (n == nil) {
        return 0;
    } else {
        ls = Odd(n.l);
        rs = Odd(n.r);
        return ls + rs;
    }
}
fn Main(n) {
    {
        o = Odd(n);
        ||
        e = Even(n);
    }
    return o, e;
}
"#;

/// The same traversals composed sequentially (the form fused in Fig. 6).
pub const SIZE_COUNTING_SEQUENTIAL_SRC: &str = r#"
fn Odd(n) {
    if (n == nil) {
        return 0;
    } else {
        ls = Even(n.l);
        rs = Even(n.r);
        return ls + rs + 1;
    }
}
fn Even(n) {
    if (n == nil) {
        return 0;
    } else {
        ls = Odd(n.l);
        rs = Odd(n.r);
        return ls + rs;
    }
}
fn Main(n) {
    o = Odd(n);
    e = Even(n);
    return o, e;
}
"#;

/// Fig. 6a: the valid fusion of `Odd` and `Even` into a single traversal that
/// returns both counts.
pub const SIZE_COUNTING_FUSED_SRC: &str = r#"
fn Fused(n) {
    if (n == nil) {
        return 0, 0;
    } else {
        lo, le = Fused(n.l);
        ro, re = Fused(n.r);
        return le + re + 1, lo + ro;
    }
}
fn Main(n) {
    o, e = Fused(n);
    return o, e;
}
"#;

/// Fig. 6b: the *invalid* fusion — the return values are computed before the
/// recursive calls, breaking the read-after-write dependence between a child
/// and its parent.
pub const SIZE_COUNTING_FUSED_INVALID_SRC: &str = r#"
fn Fused(n) {
    if (n == nil) {
        return 0, 0;
    } else {
        ret1 = le + re + 1;
        ret2 = lo + ro;
        lo, le = Fused(n.l);
        ro, re = Fused(n.r);
        return ret1, ret2;
    }
}
fn Main(n) {
    o, e = Fused(n);
    return o, e;
}
"#;

/// Parsed [`SIZE_COUNTING_PARALLEL_SRC`].
pub fn size_counting_parallel() -> Program {
    must_parse("size_counting_parallel", SIZE_COUNTING_PARALLEL_SRC)
}

/// Parsed [`SIZE_COUNTING_SEQUENTIAL_SRC`].
pub fn size_counting_sequential() -> Program {
    must_parse("size_counting_sequential", SIZE_COUNTING_SEQUENTIAL_SRC)
}

/// Parsed [`SIZE_COUNTING_FUSED_SRC`].
pub fn size_counting_fused() -> Program {
    must_parse("size_counting_fused", SIZE_COUNTING_FUSED_SRC)
}

/// Parsed [`SIZE_COUNTING_FUSED_INVALID_SRC`].
pub fn size_counting_fused_invalid() -> Program {
    must_parse(
        "size_counting_fused_invalid",
        SIZE_COUNTING_FUSED_INVALID_SRC,
    )
}

// ---------------------------------------------------------------------------
// Tree mutation (Fig. 7)
// ---------------------------------------------------------------------------

/// Fig. 7a after the mutation-to-flag conversion and branch simplification of
/// §5: `Swap` records the sibling swap in the flag field `swapped`; the
/// redirected `IncrmLeft` then traverses and reads through the *original
/// right* child (which is the post-swap left child).
pub const TREE_MUTATION_ORIGINAL_SRC: &str = r#"
fn Swap(n) {
    if (n == nil) {
        return 0;
    } else {
        a = Swap(n.l);
        b = Swap(n.r);
        n.swapped = 1;
        return 0;
    }
}
fn IncrmLeft(n) {
    if (n == nil) {
        return 0;
    } else {
        a = IncrmLeft(n.r);
        b = IncrmLeft(n.l);
        if (n.r == nil) {
            n.v = 1;
        } else {
            n.v = n.r.v + 1;
        }
        return 0;
    }
}
fn Main(n) {
    x = Swap(n);
    y = IncrmLeft(n);
    return 0;
}
"#;

/// Fig. 7b after the same conversion: the fused traversal swaps and updates
/// `v` in a single pass.
pub const TREE_MUTATION_FUSED_SRC: &str = r#"
fn Fused(n) {
    if (n == nil) {
        return 0;
    } else {
        a = Fused(n.l);
        b = Fused(n.r);
        n.swapped = 1;
        if (n.r == nil) {
            n.v = 1;
        } else {
            n.v = n.r.v + 1;
        }
        return 0;
    }
}
fn Main(n) {
    x = Fused(n);
    return 0;
}
"#;

/// Parsed [`TREE_MUTATION_ORIGINAL_SRC`].
pub fn tree_mutation_original() -> Program {
    must_parse("tree_mutation_original", TREE_MUTATION_ORIGINAL_SRC)
}

/// Parsed [`TREE_MUTATION_FUSED_SRC`].
pub fn tree_mutation_fused() -> Program {
    must_parse("tree_mutation_fused", TREE_MUTATION_FUSED_SRC)
}

// ---------------------------------------------------------------------------
// CSS minification (Fig. 8)
// ---------------------------------------------------------------------------

/// Fig. 8 after binarization (left-child/right-sibling) and the replacement
/// of string conditions by arithmetic conditions described in §5:
///
/// * `ConvertValues` rewrites unit-bearing values (`kind > 0`) to a smaller
///   representation,
/// * `MinifyFont` canonicalizes font weights (`prop > 0`),
/// * `ReduceInit` replaces `initial` keywords that are longer than the value
///   they stand for (`initial > value length`).
pub const CSS_MINIFY_ORIGINAL_SRC: &str = r#"
fn ConvertValues(n) {
    if (n == nil) {
        return 0;
    } else {
        a = ConvertValues(n.l);
        b = ConvertValues(n.r);
        if (n.kind > 0) {
            n.value = n.value - 1;
        }
        return 0;
    }
}
fn MinifyFont(n) {
    if (n == nil) {
        return 0;
    } else {
        a = MinifyFont(n.l);
        b = MinifyFont(n.r);
        if (n.prop > 0) {
            n.value = 400;
        }
        return 0;
    }
}
fn ReduceInit(n) {
    if (n == nil) {
        return 0;
    } else {
        a = ReduceInit(n.l);
        b = ReduceInit(n.r);
        if (n.initial > n.value) {
            n.value = 0;
        }
        return 0;
    }
}
fn Main(n) {
    x = ConvertValues(n);
    y = MinifyFont(n);
    z = ReduceInit(n);
    return 0;
}
"#;

/// The fused single-pass minifier: the three per-node rewrites are applied in
/// the original order at each node of one traversal.
pub const CSS_MINIFY_FUSED_SRC: &str = r#"
fn FusedMinify(n) {
    if (n == nil) {
        return 0;
    } else {
        a = FusedMinify(n.l);
        b = FusedMinify(n.r);
        if (n.kind > 0) {
            n.value = n.value - 1;
        }
        if (n.prop > 0) {
            n.value = 400;
        }
        if (n.initial > n.value) {
            n.value = 0;
        }
        return 0;
    }
}
fn Main(n) {
    x = FusedMinify(n);
    return 0;
}
"#;

/// Parsed [`CSS_MINIFY_ORIGINAL_SRC`].
pub fn css_minify_original() -> Program {
    must_parse("css_minify_original", CSS_MINIFY_ORIGINAL_SRC)
}

/// Parsed [`CSS_MINIFY_FUSED_SRC`].
pub fn css_minify_fused() -> Program {
    must_parse("css_minify_fused", CSS_MINIFY_FUSED_SRC)
}

// ---------------------------------------------------------------------------
// Cycletree construction and routing (Fig. 9)
// ---------------------------------------------------------------------------

/// Fig. 9: the mutually recursive cyclic-numbering traversal (four modes) and
/// the post-order router-data computation, composed sequentially in `Main`.
pub const CYCLETREE_ORIGINAL_SRC: &str = r#"
fn RootMode(n, number) {
    if (n == nil) {
        return 0;
    } else {
        n.num = number;
        a = PreMode(n.l, number + 1);
        b = PostMode(n.r, number + 1);
        return 0;
    }
}
fn PreMode(n, number) {
    if (n == nil) {
        return 0;
    } else {
        n.num = number;
        a = PreMode(n.l, number + 1);
        b = InMode(n.r, number + 1);
        return 0;
    }
}
fn InMode(n, number) {
    if (n == nil) {
        return 0;
    } else {
        a = PostMode(n.l, number);
        n.num = number;
        b = PreMode(n.r, number + 1);
        return 0;
    }
}
fn PostMode(n, number) {
    if (n == nil) {
        return 0;
    } else {
        a = InMode(n.l, number);
        b = PostMode(n.r, number);
        n.num = number;
        return 0;
    }
}
fn ComputeRouting(n) {
    if (n == nil) {
        return 0;
    } else {
        a = ComputeRouting(n.l);
        b = ComputeRouting(n.r);
        n.min = n.num;
        n.max = n.num;
        if (n.l != nil) {
            n.lmin = n.l.min;
            n.lmax = n.l.max;
            if (n.lmax > n.max) {
                n.max = n.lmax;
            }
            if (n.min > n.lmin) {
                n.min = n.lmin;
            }
        }
        if (n.r != nil) {
            n.rmin = n.r.min;
            n.rmax = n.r.max;
            if (n.rmax > n.max) {
                n.max = n.rmax;
            }
            if (n.min > n.rmin) {
                n.min = n.rmin;
            }
        }
        return 0;
    }
}
fn Main(n) {
    x = RootMode(n, 0);
    y = ComputeRouting(n);
    return 0;
}
"#;

/// The fused cycletree traversal: each numbering mode carries the routing
/// computation with it, so one pass both numbers the tree and computes the
/// router data.
pub const CYCLETREE_FUSED_SRC: &str = r#"
fn FRoot(n, number) {
    if (n == nil) {
        return 0;
    } else {
        n.num = number;
        a = FPre(n.l, number + 1);
        b = FPost(n.r, number + 1);
        n.min = n.num;
        n.max = n.num;
        if (n.l != nil) {
            n.lmin = n.l.min;
            n.lmax = n.l.max;
            if (n.lmax > n.max) {
                n.max = n.lmax;
            }
            if (n.min > n.lmin) {
                n.min = n.lmin;
            }
        }
        if (n.r != nil) {
            n.rmin = n.r.min;
            n.rmax = n.r.max;
            if (n.rmax > n.max) {
                n.max = n.rmax;
            }
            if (n.min > n.rmin) {
                n.min = n.rmin;
            }
        }
        return 0;
    }
}
fn FPre(n, number) {
    if (n == nil) {
        return 0;
    } else {
        n.num = number;
        a = FPre(n.l, number + 1);
        b = FIn(n.r, number + 1);
        n.min = n.num;
        n.max = n.num;
        if (n.l != nil) {
            n.lmin = n.l.min;
            n.lmax = n.l.max;
            if (n.lmax > n.max) {
                n.max = n.lmax;
            }
            if (n.min > n.lmin) {
                n.min = n.lmin;
            }
        }
        if (n.r != nil) {
            n.rmin = n.r.min;
            n.rmax = n.r.max;
            if (n.rmax > n.max) {
                n.max = n.rmax;
            }
            if (n.min > n.rmin) {
                n.min = n.rmin;
            }
        }
        return 0;
    }
}
fn FIn(n, number) {
    if (n == nil) {
        return 0;
    } else {
        a = FPost(n.l, number);
        n.num = number;
        b = FPre(n.r, number + 1);
        n.min = n.num;
        n.max = n.num;
        if (n.l != nil) {
            n.lmin = n.l.min;
            n.lmax = n.l.max;
            if (n.lmax > n.max) {
                n.max = n.lmax;
            }
            if (n.min > n.lmin) {
                n.min = n.lmin;
            }
        }
        if (n.r != nil) {
            n.rmin = n.r.min;
            n.rmax = n.r.max;
            if (n.rmax > n.max) {
                n.max = n.rmax;
            }
            if (n.min > n.rmin) {
                n.min = n.rmin;
            }
        }
        return 0;
    }
}
fn FPost(n, number) {
    if (n == nil) {
        return 0;
    } else {
        a = FIn(n.l, number);
        b = FPost(n.r, number);
        n.num = number;
        n.min = n.num;
        n.max = n.num;
        if (n.l != nil) {
            n.lmin = n.l.min;
            n.lmax = n.l.max;
            if (n.lmax > n.max) {
                n.max = n.lmax;
            }
            if (n.min > n.lmin) {
                n.min = n.lmin;
            }
        }
        if (n.r != nil) {
            n.rmin = n.r.min;
            n.rmax = n.r.max;
            if (n.rmax > n.max) {
                n.max = n.rmax;
            }
            if (n.min > n.rmin) {
                n.min = n.rmin;
            }
        }
        return 0;
    }
}
fn Main(n) {
    x = FRoot(n, 0);
    return 0;
}
"#;

/// The (incorrect) parallelization checked in §5: numbering and routing run
/// concurrently, racing on `num`.
pub const CYCLETREE_PARALLEL_SRC: &str = r#"
fn RootMode(n, number) {
    if (n == nil) {
        return 0;
    } else {
        n.num = number;
        a = PreMode(n.l, number + 1);
        b = PostMode(n.r, number + 1);
        return 0;
    }
}
fn PreMode(n, number) {
    if (n == nil) {
        return 0;
    } else {
        n.num = number;
        a = PreMode(n.l, number + 1);
        b = InMode(n.r, number + 1);
        return 0;
    }
}
fn InMode(n, number) {
    if (n == nil) {
        return 0;
    } else {
        a = PostMode(n.l, number);
        n.num = number;
        b = PreMode(n.r, number + 1);
        return 0;
    }
}
fn PostMode(n, number) {
    if (n == nil) {
        return 0;
    } else {
        a = InMode(n.l, number);
        b = PostMode(n.r, number);
        n.num = number;
        return 0;
    }
}
fn ComputeRouting(n) {
    if (n == nil) {
        return 0;
    } else {
        a = ComputeRouting(n.l);
        b = ComputeRouting(n.r);
        n.min = n.num;
        n.max = n.num;
        if (n.l != nil) {
            n.lmin = n.l.min;
            n.lmax = n.l.max;
            if (n.lmax > n.max) {
                n.max = n.lmax;
            }
            if (n.min > n.lmin) {
                n.min = n.lmin;
            }
        }
        if (n.r != nil) {
            n.rmin = n.r.min;
            n.rmax = n.r.max;
            if (n.rmax > n.max) {
                n.max = n.rmax;
            }
            if (n.min > n.rmin) {
                n.min = n.rmin;
            }
        }
        return 0;
    }
}
fn Main(n) {
    {
        x = RootMode(n, 0);
        ||
        y = ComputeRouting(n);
    }
    return 0;
}
"#;

/// Parsed [`CYCLETREE_ORIGINAL_SRC`].
pub fn cycletree_original() -> Program {
    must_parse("cycletree_original", CYCLETREE_ORIGINAL_SRC)
}

/// Parsed [`CYCLETREE_FUSED_SRC`].
pub fn cycletree_fused() -> Program {
    must_parse("cycletree_fused", CYCLETREE_FUSED_SRC)
}

/// Parsed [`CYCLETREE_PARALLEL_SRC`].
pub fn cycletree_parallel() -> Program {
    must_parse("cycletree_parallel", CYCLETREE_PARALLEL_SRC)
}

/// A small extra program: a parallel traversal of *disjoint subtrees*, which
/// is race-free and used by tests and examples to exercise the positive side
/// of the race checker.
pub const DISJOINT_PARALLEL_SRC: &str = r#"
fn Sum(n) {
    if (n == nil) {
        return 0;
    } else {
        a = Sum(n.l);
        b = Sum(n.r);
        n.total = a + b + n.v;
        return a + b + n.v;
    }
}
fn Main(n) {
    if (n == nil) {
        return 0;
    } else {
        {
            a = Sum(n.l);
            ||
            b = Sum(n.r);
        }
        return a + b;
    }
}
"#;

/// A variant of [`DISJOINT_PARALLEL_SRC`] where both parallel branches
/// traverse the *same* subtree and write to it — a textbook data race.
pub const OVERLAPPING_PARALLEL_SRC: &str = r#"
fn Sum(n) {
    if (n == nil) {
        return 0;
    } else {
        a = Sum(n.l);
        b = Sum(n.r);
        n.total = a + b + n.v;
        return a + b + n.v;
    }
}
fn Main(n) {
    {
        a = Sum(n);
        ||
        b = Sum(n);
    }
    return a + b;
}
"#;

/// A find-closest-point query over a left-balanced k-d tree (the classic
/// spatial workload): every node stores a 2-d point (`x`, `y`).  Two
/// passes — `ComputeDist` writes each node's Manhattan distance to the
/// query point (conditional abs), `FoldMin` folds the subtree minimum into
/// `best` — and `Main` runs them back to back, so the pair is a fusion and
/// lowering candidate exactly like the §5 two-pass workloads.  The k-d row
/// of the benchmark suite.
pub const KDTREE_CLOSEST_SRC: &str = r#"
fn ComputeDist(n, qx, qy) {
    if (n == nil) {
        return 0;
    } else {
        dx = n.x - qx;
        if (0 - dx > 0) {
            dx = 0 - dx;
        }
        dy = n.y - qy;
        if (0 - dy > 0) {
            dy = 0 - dy;
        }
        n.dist = dx + dy;
        a = ComputeDist(n.l, qx, qy);
        b = ComputeDist(n.r, qx, qy);
        return 0;
    }
}
fn FoldMin(n) {
    if (n == nil) {
        return 0;
    } else {
        a = FoldMin(n.l);
        b = FoldMin(n.r);
        n.best = n.dist;
        if (n.l != nil) {
            if (n.best - n.l.best > 0) {
                n.best = n.l.best;
            }
        }
        if (n.r != nil) {
            if (n.best - n.r.best > 0) {
                n.best = n.r.best;
            }
        }
        return 0;
    }
}
fn Main(n) {
    u = ComputeDist(n, 3, 5);
    v = FoldMin(n);
    if (n != nil) {
        return n.best;
    }
    return 0;
}
"#;

/// A ternary subtree sum, sequential form: the first corpus family outside
/// the binary fragment.  `Main` folds the three child subtrees one after
/// another.
pub const TERNARY_SUM_SEQUENTIAL_SRC: &str = r#"
arity 3;
fn Sum(n) {
    if (n == nil) {
        return 0;
    } else {
        a = Sum(n.c0);
        b = Sum(n.c1);
        c = Sum(n.c2);
        n.total = a + b + c + n.v;
        return a + b + c + n.v;
    }
}
fn Main(n) {
    if (n == nil) {
        return 0;
    } else {
        a = Sum(n.c0);
        b = Sum(n.c1);
        c = Sum(n.c2);
        return a + b + c;
    }
}
"#;

/// The parallel form of [`TERNARY_SUM_SEQUENTIAL_SRC`]: the three child
/// folds run in a `Par`.  The branches traverse pairwise disjoint subtrees
/// (distinct child axes), so the program is race-free and observationally
/// equivalent to the sequential form.
pub const TERNARY_SUM_PARALLEL_SRC: &str = r#"
arity 3;
fn Sum(n) {
    if (n == nil) {
        return 0;
    } else {
        a = Sum(n.c0);
        b = Sum(n.c1);
        c = Sum(n.c2);
        n.total = a + b + c + n.v;
        return a + b + c + n.v;
    }
}
fn Main(n) {
    if (n == nil) {
        return 0;
    } else {
        {
            a = Sum(n.c0);
            ||
            b = Sum(n.c1);
            ||
            c = Sum(n.c2);
        }
        return a + b + c;
    }
}
"#;

/// A racy ternary variant: two parallel branches fold the *same* middle
/// subtree, a write-write race on every `total` field under `n.c1`.
pub const TERNARY_SUM_RACY_SRC: &str = r#"
arity 3;
fn Sum(n) {
    if (n == nil) {
        return 0;
    } else {
        a = Sum(n.c0);
        b = Sum(n.c1);
        c = Sum(n.c2);
        n.total = a + b + c + n.v;
        return a + b + c + n.v;
    }
}
fn Main(n) {
    if (n == nil) {
        return 0;
    } else {
        {
            a = Sum(n.c1);
            ||
            b = Sum(n.c1);
        }
        return a + b;
    }
}
"#;

/// Parsed [`KDTREE_CLOSEST_SRC`].
pub fn kdtree_closest() -> Program {
    must_parse("kdtree_closest", KDTREE_CLOSEST_SRC)
}

/// Parsed [`TERNARY_SUM_SEQUENTIAL_SRC`].
pub fn ternary_sum_sequential() -> Program {
    must_parse("ternary_sum_sequential", TERNARY_SUM_SEQUENTIAL_SRC)
}

/// Parsed [`TERNARY_SUM_PARALLEL_SRC`].
pub fn ternary_sum_parallel() -> Program {
    must_parse("ternary_sum_parallel", TERNARY_SUM_PARALLEL_SRC)
}

/// Parsed [`TERNARY_SUM_RACY_SRC`].
pub fn ternary_sum_racy() -> Program {
    must_parse("ternary_sum_racy", TERNARY_SUM_RACY_SRC)
}

/// Parsed [`DISJOINT_PARALLEL_SRC`].
pub fn disjoint_parallel() -> Program {
    must_parse("disjoint_parallel", DISJOINT_PARALLEL_SRC)
}

/// Parsed [`OVERLAPPING_PARALLEL_SRC`].
pub fn overlapping_parallel() -> Program {
    must_parse("overlapping_parallel", OVERLAPPING_PARALLEL_SRC)
}

/// Every named corpus entry, for exhaustive tests and benchmarks.
pub fn all() -> Vec<(&'static str, Program)> {
    vec![
        ("size_counting_parallel", size_counting_parallel()),
        ("size_counting_sequential", size_counting_sequential()),
        ("size_counting_fused", size_counting_fused()),
        ("size_counting_fused_invalid", size_counting_fused_invalid()),
        ("tree_mutation_original", tree_mutation_original()),
        ("tree_mutation_fused", tree_mutation_fused()),
        ("css_minify_original", css_minify_original()),
        ("css_minify_fused", css_minify_fused()),
        ("cycletree_original", cycletree_original()),
        ("cycletree_fused", cycletree_fused()),
        ("cycletree_parallel", cycletree_parallel()),
        ("disjoint_parallel", disjoint_parallel()),
        ("overlapping_parallel", overlapping_parallel()),
        ("kdtree_closest", kdtree_closest()),
        ("ternary_sum_sequential", ternary_sum_sequential()),
        ("ternary_sum_parallel", ternary_sum_parallel()),
        ("ternary_sum_racy", ternary_sum_racy()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockTable;

    #[test]
    fn every_corpus_program_parses_and_validates() {
        let entries = all();
        assert_eq!(entries.len(), 17);
        for (name, program) in entries {
            assert!(program.main().is_some(), "{name} has a Main");
            assert!(program.num_blocks() > 0, "{name} has blocks");
        }
    }

    #[test]
    fn running_example_has_the_expected_block_count() {
        let table = BlockTable::build(&size_counting_parallel());
        assert_eq!(table.len(), 11);
    }

    #[test]
    fn cycletree_is_the_largest_case_study() {
        let cycletree = BlockTable::build(&cycletree_original()).len();
        let css = BlockTable::build(&css_minify_original()).len();
        let size = BlockTable::build(&size_counting_sequential()).len();
        assert!(cycletree > css && css > size);
    }

    #[test]
    fn fused_programs_have_a_single_traversal_entry() {
        for program in [
            size_counting_fused(),
            css_minify_fused(),
            tree_mutation_fused(),
        ] {
            let main = program.main().unwrap();
            let calls: Vec<_> = main.blocks().into_iter().filter(|b| b.is_call()).collect();
            assert_eq!(calls.len(), 1, "fused Main performs a single call");
        }
    }

    #[test]
    fn parallel_corpus_entries_have_parallel_main() {
        use crate::validate::has_parallelism;
        for program in [
            size_counting_parallel(),
            cycletree_parallel(),
            disjoint_parallel(),
            overlapping_parallel(),
        ] {
            assert!(has_parallelism(&program.main().unwrap().body));
        }
        for program in [size_counting_sequential(), cycletree_original()] {
            assert!(!has_parallelism(&program.main().unwrap().body));
        }
    }

    #[test]
    fn ternary_corpus_entries_declare_arity_three() {
        for program in [
            ternary_sum_sequential(),
            ternary_sum_parallel(),
            ternary_sum_racy(),
        ] {
            assert_eq!(program.arity, 3);
        }
        // The k-d query is a binary workload: no arity header, arity 2.
        assert_eq!(kdtree_closest().arity, 2);
    }

    #[test]
    fn mutation_corpus_uses_flag_fields_not_pointer_writes() {
        // The conversion of §5 keeps the programs inside the Retreet fragment:
        // they must parse (no pointer-field assignment survives).
        let original = tree_mutation_original();
        let fused = tree_mutation_fused();
        assert!(original.func("Swap").is_some());
        assert!(fused.func("Fused").is_some());
    }
}
