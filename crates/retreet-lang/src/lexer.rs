//! Tokenizer for the `.retreet` surface syntax.
//!
//! The surface syntax is a lightly sugared rendering of Fig. 2 of the paper:
//!
//! ```text
//! fn Odd(n) {
//!     if (n == nil) {
//!         return 0;                    // s0
//!     } else {
//!         ls = Even(n.l);              // s1
//!         rs = Even(n.r);              // s2
//!         return ls + rs + 1;          // s3
//!     }
//! }
//! ```
//!
//! Line comments start with `//` and run to the end of the line.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword candidate.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `fn`
    KwFn,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `return`
    KwReturn,
    /// `par`
    KwPar,
    /// `nil`
    KwNil,
    /// `true`
    KwTrue,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||` — parallel separator inside `{ a || b }` blocks (alternative to
    /// the `par { ... }` form).
    ParSep,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::KwFn => write!(f, "fn"),
            Token::KwIf => write!(f, "if"),
            Token::KwElse => write!(f, "else"),
            Token::KwReturn => write!(f, "return"),
            Token::KwPar => write!(f, "par"),
            Token::KwNil => write!(f, "nil"),
            Token::KwTrue => write!(f, "true"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Bang => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::ParSep => write!(f, "||"),
        }
    }
}

/// A token together with its 1-based source line (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line where the error occurred.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes an entire source string.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    line,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Spanned {
                    token: Token::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Spanned {
                    token: Token::RBrace,
                    line,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Spanned {
                    token: Token::Semi,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    line,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Spanned {
                    token: Token::Dot,
                    line,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Spanned {
                    token: Token::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Spanned {
                    token: Token::Minus,
                    line,
                });
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Spanned {
                        token: Token::EqEq,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Assign,
                        line,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Spanned {
                        token: Token::NotEq,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Bang,
                        line,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Spanned {
                        token: Token::Le,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        line,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        line,
                    });
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&'&') {
                    tokens.push(Spanned {
                        token: Token::AndAnd,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `&&`".into(),
                        line,
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&'|') {
                    tokens.push(Spanned {
                        token: Token::ParSep,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `||`".into(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let value = text.parse::<i64>().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    line,
                })?;
                tokens.push(Spanned {
                    token: Token::Int(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let token = match text.as_str() {
                    "fn" => Token::KwFn,
                    "if" => Token::KwIf,
                    "else" => Token::KwElse,
                    "return" => Token::KwReturn,
                    "par" => Token::KwPar,
                    "nil" => Token::KwNil,
                    "true" => Token::KwTrue,
                    _ => Token::Ident(text),
                };
                tokens.push(Spanned { token, line });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_simple_function_header() {
        let toks = kinds("fn Odd(n) {");
        assert_eq!(
            toks,
            vec![
                Token::KwFn,
                Token::Ident("Odd".into()),
                Token::LParen,
                Token::Ident("n".into()),
                Token::RParen,
                Token::LBrace,
            ]
        );
    }

    #[test]
    fn lexes_operators_and_comparisons() {
        let toks = kinds("a == nil != < <= > >= + - ! && ||");
        assert!(toks.contains(&Token::EqEq));
        assert!(toks.contains(&Token::NotEq));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::AndAnd));
        assert!(toks.contains(&Token::ParSep));
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("x = 1; // comment\ny = 2;").unwrap();
        assert_eq!(toks[0].line, 1);
        let y = toks
            .iter()
            .find(|t| t.token == Token::Ident("y".into()))
            .unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(lex("x # y").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42"), vec![Token::Int(42)]);
        assert_eq!(kinds("0"), vec![Token::Int(0)]);
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(kinds("return"), vec![Token::KwReturn]);
        assert_eq!(kinds("returns"), vec![Token::Ident("returns".into())]);
    }
}
