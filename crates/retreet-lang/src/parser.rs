//! Recursive-descent parser for the `.retreet` surface syntax.
//!
//! The surface syntax mirrors Fig. 2 of the paper with a little sugar:
//!
//! * `if (cond) { ... } else { ... }` — conditionals (the `else` branch is
//!   optional and defaults to `skip`),
//! * `par { a; b; }` or `{ a || b }` — parallel composition,
//! * comparisons `<`, `<=`, `>`, `>=`, `==`, `!=` on integers desugar to the
//!   paper's `AExpr > 0` atoms,
//! * consecutive non-call assignments and a trailing `return` are grouped
//!   into a single straight-line block, exactly like `Assgn+` in the grammar.
//!
//! Blocks are *not* labeled by the parser; `crate::blocks::BlockTable`
//! assigns the canonical `s0, s1, …` numbering in syntactic order, matching
//! the running example of the paper.

use std::fmt;

use crate::ast::{
    AExpr, Assign, BExpr, Block, CallBlock, ChildAxis, Func, Ident, NodeRef, Program, Stmt,
    StraightBlock, MAX_ARITY,
};
use crate::lexer::{lex, LexError, Spanned, Token};

/// Parse errors with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line (0 when at end of input).
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> Self {
        ParseError {
            message: err.message,
            line: err.line,
        }
    }
}

/// Parses a complete program from source text.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        loc_param: String::new(),
        arity: 2,
        saw_indexed: false,
    };
    parser.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// The `Loc` parameter of the function currently being parsed; needed to
    /// distinguish node references from integer variables.
    loc_param: Ident,
    /// Child arity declared by the optional `arity K;` header (2 when
    /// absent).  Child references are range-checked against it.
    arity: u8,
    /// True once any child reference used the indexed `c{k}` spelling.
    saw_indexed: bool,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|t| &t.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.pos).map(|t| t.token.clone());
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, expected: Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(tok) if *tok == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(tok) => {
                let found = tok.clone();
                self.error(format!("expected `{expected}`, found `{found}`"))
            }
            None => self.error(format!("expected `{expected}`, found end of input")),
        }
    }

    fn expect_ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().cloned() {
            Some(Token::Ident(name)) => {
                self.pos += 1;
                Ok(name)
            }
            Some(tok) => self.error(format!("expected identifier, found `{tok}`")),
            None => self.error("expected identifier, found end of input"),
        }
    }

    fn eat(&mut self, expected: &Token) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // ---- program / function -------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        // Optional `arity K;` header declaring the child arity of every tree
        // node in the program.  Absent means the paper's binary trees.
        if matches!(self.peek(), Some(Token::Ident(name)) if name == "arity") {
            self.pos += 1;
            let value = match self.bump() {
                Some(Token::Int(v)) => v,
                other => {
                    let found = other
                        .map(|t| t.to_string())
                        .unwrap_or("end of input".into());
                    return self.error(format!("expected an arity after `arity`, found `{found}`"));
                }
            };
            if !(2..=MAX_ARITY as i64).contains(&value) {
                return self.error(format!(
                    "arity must be between 2 and {MAX_ARITY}, found {value}"
                ));
            }
            self.expect(Token::Semi)?;
            self.arity = value as u8;
        }
        let mut funcs = Vec::new();
        while self.peek().is_some() {
            funcs.push(self.function()?);
        }
        let mut program = Program::with_arity(funcs, self.arity);
        program.indexed_spelling = self.saw_indexed;
        Ok(program)
    }

    /// Classifies an identifier that followed `n.` as a child-axis spelling
    /// (`l`, `r`, or `c{k}`) or a field name (`None`).  Child axes are
    /// range-checked against the declared arity.
    fn child_axis(&mut self, name: &str) -> Result<Option<ChildAxis>, ParseError> {
        let axis = match name {
            "l" => Some(ChildAxis::LEFT),
            "r" => Some(ChildAxis::RIGHT),
            _ => match name.strip_prefix('c') {
                Some(digits)
                    if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) =>
                {
                    self.saw_indexed = true;
                    let index = digits.parse::<u64>().unwrap_or(u64::MAX).min(255);
                    Some(ChildAxis(index as u8))
                }
                _ => None,
            },
        };
        if let Some(axis) = axis {
            if axis.0 >= self.arity {
                return self.error(format!(
                    "child axis `{name}` is out of range for arity {}",
                    self.arity
                ));
            }
        }
        Ok(axis)
    }

    fn function(&mut self) -> Result<Func, ParseError> {
        self.expect(Token::KwFn)?;
        let name = self.expect_ident()?;
        self.expect(Token::LParen)?;
        let loc_param = self.expect_ident()?;
        let mut int_params = Vec::new();
        while self.eat(&Token::Comma) {
            int_params.push(self.expect_ident()?);
        }
        self.expect(Token::RParen)?;
        self.loc_param = loc_param.clone();
        self.expect(Token::LBrace)?;
        let (body, num_returns) = self.stmt_list_until_rbrace()?;
        Ok(Func {
            name,
            loc_param,
            int_params,
            num_returns,
            body,
        })
    }

    // ---- statements ---------------------------------------------------------

    /// Parses statements until the matching `}` and returns the composed
    /// statement together with the maximum return arity seen.
    fn stmt_list_until_rbrace(&mut self) -> Result<(Stmt, usize), ParseError> {
        let mut groups: Vec<Vec<Stmt>> = vec![Vec::new()];
        let mut pending: Vec<Stmt> = Vec::new();
        let mut straight = StraightBlock::default();
        let mut num_returns = 0usize;
        let mut parallel = false;

        macro_rules! flush_straight {
            () => {
                if !straight.assigns.is_empty() || straight.ret.is_some() {
                    pending.push(Stmt::Block(Block::straight(std::mem::take(&mut straight))));
                }
            };
        }

        loop {
            match self.peek() {
                None => return self.error("unexpected end of input inside `{ ... }`"),
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::ParSep) => {
                    // `||` separates parallel branches inside this brace group.
                    self.pos += 1;
                    flush_straight!();
                    groups.last_mut().unwrap().append(&mut pending);
                    groups.push(Vec::new());
                    parallel = true;
                }
                Some(Token::KwIf) => {
                    flush_straight!();
                    let (stmt, returns) = self.if_stmt()?;
                    num_returns = num_returns.max(returns);
                    pending.push(stmt);
                }
                Some(Token::KwPar) => {
                    flush_straight!();
                    self.pos += 1;
                    self.expect(Token::LBrace)?;
                    let (inner, returns) = self.stmt_list_until_rbrace()?;
                    num_returns = num_returns.max(returns);
                    let branches = match inner {
                        Stmt::Seq(items) => items,
                        other => vec![other],
                    };
                    pending.push(Stmt::Par(branches));
                }
                Some(Token::LBrace) => {
                    flush_straight!();
                    self.pos += 1;
                    let (inner, returns) = self.stmt_list_until_rbrace()?;
                    num_returns = num_returns.max(returns);
                    pending.push(inner);
                }
                Some(Token::KwReturn) => {
                    self.pos += 1;
                    let mut values = Vec::new();
                    if self.peek() != Some(&Token::Semi) {
                        values.push(self.aexpr()?);
                        while self.eat(&Token::Comma) {
                            values.push(self.aexpr()?);
                        }
                    }
                    self.expect(Token::Semi)?;
                    num_returns = num_returns.max(values.len());
                    straight.ret = Some(values);
                    flush_straight!();
                }
                Some(Token::Ident(_)) => {
                    // Either a call block (its own block) or a plain
                    // assignment that joins the current straight-line block.
                    let item = self.assignment_or_call()?;
                    match item {
                        AssignOrCall::Call(call) => {
                            flush_straight!();
                            pending.push(Stmt::Block(Block::call(call)));
                        }
                        AssignOrCall::Assign(assign) => {
                            straight.assigns.push(assign);
                        }
                    }
                }
                Some(other) => {
                    let found = other.clone();
                    return self.error(format!("unexpected token `{found}` in statement position"));
                }
            }
        }
        flush_straight!();
        groups.last_mut().unwrap().append(&mut pending);

        let compose = |mut items: Vec<Stmt>| -> Stmt {
            if items.len() == 1 {
                items.pop().unwrap()
            } else {
                Stmt::Seq(items)
            }
        };

        let stmt = if parallel {
            Stmt::Par(groups.into_iter().map(compose).collect())
        } else {
            compose(groups.pop().unwrap())
        };
        Ok((stmt, num_returns))
    }

    fn if_stmt(&mut self) -> Result<(Stmt, usize), ParseError> {
        self.expect(Token::KwIf)?;
        self.expect(Token::LParen)?;
        let cond = self.cond()?;
        self.expect(Token::RParen)?;
        self.expect(Token::LBrace)?;
        let (then_branch, then_returns) = self.stmt_list_until_rbrace()?;
        let (else_branch, else_returns) = if self.eat(&Token::KwElse) {
            if self.peek() == Some(&Token::KwIf) {
                self.if_stmt()?
            } else {
                self.expect(Token::LBrace)?;
                self.stmt_list_until_rbrace()?
            }
        } else {
            (Stmt::skip(), 0)
        };
        Ok((
            Stmt::if_else(cond, then_branch, else_branch),
            then_returns.max(else_returns),
        ))
    }

    // ---- assignments and calls ----------------------------------------------

    fn assignment_or_call(&mut self) -> Result<AssignOrCall, ParseError> {
        // Gather the assignment targets: `x`, `x, y`, or `n.f` / `n.l.f`.
        let first = self.expect_ident()?;
        if first == self.loc_param {
            // Field assignment `n.f = e` or `n.l.f = e`; pointer assignments
            // `n.l = ...` are rejected (no tree mutation in Retreet).
            self.expect(Token::Dot)?;
            let second = self.expect_ident()?;
            let (node, field) = match self.child_axis(&second)? {
                Some(axis) if self.peek() == Some(&Token::Dot) => {
                    self.pos += 1;
                    let field = self.expect_ident()?;
                    (NodeRef::Child(axis), field)
                }
                Some(_) => {
                    return self.error(
                        "assignment to a pointer field (tree mutation) is not allowed in Retreet; \
                     simulate it with local flag fields as in §5 of the paper",
                    );
                }
                None => (NodeRef::Cur, second),
            };
            self.expect(Token::Assign)?;
            let value = self.aexpr()?;
            self.expect(Token::Semi)?;
            return Ok(AssignOrCall::Assign(Assign::SetField(node, field, value)));
        }

        let mut results = vec![first];
        while self.eat(&Token::Comma) {
            results.push(self.expect_ident()?);
        }
        self.expect(Token::Assign)?;
        // A call iff the right-hand side is `Ident (` where the identifier is
        // not the Loc parameter (which cannot be called).
        let is_call = matches!(
            (self.peek(), self.peek_at(1)),
            (Some(Token::Ident(name)), Some(Token::LParen)) if *name != self.loc_param
        );
        if is_call {
            let callee = self.expect_ident()?;
            self.expect(Token::LParen)?;
            let target = self.node_ref()?;
            let mut args = Vec::new();
            while self.eat(&Token::Comma) {
                args.push(self.aexpr()?);
            }
            self.expect(Token::RParen)?;
            self.expect(Token::Semi)?;
            Ok(AssignOrCall::Call(CallBlock {
                results,
                callee,
                target,
                args,
            }))
        } else {
            if results.len() != 1 {
                return self.error("multiple assignment targets are only allowed for calls");
            }
            let value = self.aexpr()?;
            self.expect(Token::Semi)?;
            Ok(AssignOrCall::Assign(Assign::SetVar(
                results.pop().unwrap(),
                value,
            )))
        }
    }

    /// Parses `n`, `n.l`, `n.r`, or `n.c{k}`.
    fn node_ref(&mut self) -> Result<NodeRef, ParseError> {
        let name = self.expect_ident()?;
        if name != self.loc_param {
            return self.error(format!(
                "expected the Loc parameter `{}`, found `{name}`",
                self.loc_param
            ));
        }
        if self.eat(&Token::Dot) {
            let child = self.expect_ident()?;
            match self.child_axis(&child)? {
                Some(axis) => Ok(NodeRef::Child(axis)),
                None => self.error(format!(
                    "expected a child (`l`, `r`, or `c0`..`c{}`), found `{child}`",
                    self.arity - 1
                )),
            }
        } else {
            Ok(NodeRef::Cur)
        }
    }

    // ---- expressions --------------------------------------------------------

    fn aexpr(&mut self) -> Result<AExpr, ParseError> {
        let mut lhs = self.aexpr_primary()?;
        loop {
            if self.eat(&Token::Plus) {
                let rhs = self.aexpr_primary()?;
                lhs = AExpr::add(lhs, rhs);
            } else if self.eat(&Token::Minus) {
                let rhs = self.aexpr_primary()?;
                lhs = AExpr::sub(lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn aexpr_primary(&mut self) -> Result<AExpr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(value)) => {
                self.pos += 1;
                Ok(AExpr::Const(value))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.aexpr_primary()?;
                Ok(AExpr::sub(AExpr::Const(0), inner))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.aexpr()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                if name == self.loc_param {
                    self.expect(Token::Dot)?;
                    let second = self.expect_ident()?;
                    match self.child_axis(&second)? {
                        Some(axis) if self.eat(&Token::Dot) => {
                            let field = self.expect_ident()?;
                            Ok(AExpr::Field(NodeRef::Child(axis), field))
                        }
                        Some(_) => self.error("a pointer value cannot be used in arithmetic"),
                        None => Ok(AExpr::Field(NodeRef::Cur, second)),
                    }
                } else {
                    Ok(AExpr::Var(name))
                }
            }
            Some(other) => self.error(format!("expected an integer expression, found `{other}`")),
            None => self.error("expected an integer expression, found end of input"),
        }
    }

    fn cond(&mut self) -> Result<BExpr, ParseError> {
        let mut lhs = self.cond_atom()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.cond_atom()?;
            lhs = BExpr::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn cond_atom(&mut self) -> Result<BExpr, ParseError> {
        if self.eat(&Token::KwTrue) {
            return Ok(BExpr::True);
        }
        if self.eat(&Token::Bang) {
            let inner = self.cond_atom()?;
            return Ok(BExpr::not(inner));
        }
        // Try a nil-check first: `n == nil`, `n.l != nil`, …
        let save = self.pos;
        if let Ok(node) = self.node_ref() {
            match self.peek() {
                Some(Token::EqEq) if self.peek_at(1) == Some(&Token::KwNil) => {
                    self.pos += 2;
                    return Ok(BExpr::IsNil(node));
                }
                Some(Token::NotEq) if self.peek_at(1) == Some(&Token::KwNil) => {
                    self.pos += 2;
                    return Ok(BExpr::not(BExpr::IsNil(node)));
                }
                _ => {}
            }
        }
        self.pos = save;
        // Parenthesized condition: only when the content is not an arithmetic
        // comparison; try it with backtracking.
        if self.peek() == Some(&Token::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.cond() {
                if self.eat(&Token::RParen) {
                    let next_is_cmp = matches!(
                        self.peek(),
                        Some(
                            Token::Lt
                                | Token::Le
                                | Token::Gt
                                | Token::Ge
                                | Token::EqEq
                                | Token::NotEq
                                | Token::Plus
                                | Token::Minus
                        )
                    );
                    if !next_is_cmp {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        // Comparison between two integer expressions.
        let lhs = self.aexpr()?;
        let op = match self.bump() {
            Some(
                tok @ (Token::Lt | Token::Le | Token::Gt | Token::Ge | Token::EqEq | Token::NotEq),
            ) => tok,
            Some(other) => {
                return self.error(format!("expected a comparison operator, found `{other}`"))
            }
            None => return self.error("expected a comparison operator, found end of input"),
        };
        let rhs = self.aexpr()?;
        Ok(match op {
            Token::Lt => BExpr::lt(lhs, rhs),
            Token::Le => BExpr::le(lhs, rhs),
            Token::Gt => BExpr::gt(lhs, rhs),
            Token::Ge => BExpr::ge(lhs, rhs),
            Token::EqEq => BExpr::eq_int(lhs, rhs),
            Token::NotEq => BExpr::not(BExpr::eq_int(lhs, rhs)),
            _ => unreachable!(),
        })
    }
}

enum AssignOrCall {
    Assign(Assign),
    Call(CallBlock),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BlockKind;

    const ODD_EVEN: &str = r#"
        fn Odd(n) {
            if (n == nil) {
                return 0;
            } else {
                ls = Even(n.l);
                rs = Even(n.r);
                return ls + rs + 1;
            }
        }
        fn Even(n) {
            if (n == nil) {
                return 0;
            } else {
                ls = Odd(n.l);
                rs = Odd(n.r);
                return ls + rs;
            }
        }
        fn Main(n) {
            {
                o = Odd(n);
                ||
                e = Even(n);
            }
            return o, e;
        }
    "#;

    #[test]
    fn parses_the_running_example() {
        let prog = parse_program(ODD_EVEN).expect("parse");
        assert_eq!(prog.funcs.len(), 3);
        let odd = prog.func("Odd").unwrap();
        assert_eq!(odd.loc_param, "n");
        assert_eq!(odd.num_returns, 1);
        // Fig. 3: Odd has 4 blocks (s0..s3).
        assert_eq!(odd.blocks().len(), 4);
        let main = prog.main().unwrap();
        assert_eq!(main.num_returns, 2);
        // Main has 3 blocks (s8, s9, s10).
        assert_eq!(main.blocks().len(), 3);
    }

    #[test]
    fn parallel_composition_is_recognized() {
        let prog = parse_program(ODD_EVEN).unwrap();
        let main = prog.main().unwrap();
        match &main.body {
            Stmt::Seq(items) => {
                assert!(matches!(items[0], Stmt::Par(_)));
            }
            other => panic!("expected a sequence, got {other:?}"),
        }
    }

    #[test]
    fn par_keyword_form_is_equivalent() {
        let src = r#"
            fn A(n) { return 0; }
            fn Main(n) {
                par {
                    x = A(n.l);
                    y = A(n.r);
                }
                return x + y;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let main = prog.main().unwrap();
        match &main.body {
            Stmt::Seq(items) => match &items[0] {
                Stmt::Par(branches) => assert_eq!(branches.len(), 2),
                other => panic!("expected Par, got {other:?}"),
            },
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn straight_line_assignments_group_into_one_block() {
        let src = r#"
            fn F(n) {
                n.a = 1;
                n.b = n.a + 2;
                x = n.b;
                return x;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let f = prog.func("F").unwrap();
        let blocks = f.blocks();
        assert_eq!(blocks.len(), 1);
        match &blocks[0].kind {
            BlockKind::Straight(s) => {
                assert_eq!(s.assigns.len(), 3);
                assert!(s.ret.is_some());
            }
            BlockKind::Call(_) => panic!("expected a straight block"),
        }
    }

    #[test]
    fn calls_split_straight_blocks() {
        let src = r#"
            fn G(n) { return 0; }
            fn F(n) {
                x = 1;
                y = G(n.l);
                z = x + y;
                return z;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let f = prog.func("F").unwrap();
        let blocks = f.blocks();
        // x=1 | call | z=..; return
        assert_eq!(blocks.len(), 3);
        assert!(!blocks[0].is_call());
        assert!(blocks[1].is_call());
        assert!(!blocks[2].is_call());
    }

    #[test]
    fn field_reads_and_children() {
        let src = r#"
            fn F(n) {
                if (n.l != nil && n.v > 0) {
                    n.v = n.l.v + 1;
                }
                return n.v;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let f = prog.func("F").unwrap();
        assert_eq!(f.blocks().len(), 2);
    }

    #[test]
    fn comparison_sugar() {
        let src = r#"
            fn F(n, k) {
                if (k <= 3) {
                    return 1;
                } else {
                    return 0;
                }
            }
        "#;
        let prog = parse_program(src).unwrap();
        let f = prog.func("F").unwrap();
        match &f.body {
            Stmt::If(cond, _, _) => assert!(matches!(cond, BExpr::Gt(_))),
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn rejects_tree_mutation() {
        let src = r#"
            fn Swap(n) {
                n.l = n.r;
                return 0;
            }
        "#;
        let err = parse_program(src).unwrap_err();
        assert!(err.message.contains("mutation"));
    }

    #[test]
    fn rejects_pointer_arithmetic() {
        let src = r#"
            fn F(n) {
                x = n.l + 1;
                return x;
            }
        "#;
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let src = "fn F(n) {\n  x = ;\n}";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn multi_result_calls() {
        let src = r#"
            fn Pair(n) { return 1, 2; }
            fn Main(n) {
                a, b = Pair(n.l);
                return a + b;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let main = prog.main().unwrap();
        let blocks = main.blocks();
        let call = blocks[0].as_call().unwrap();
        assert_eq!(call.results, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(prog.func("Pair").unwrap().num_returns, 2);
    }

    #[test]
    fn call_with_int_args() {
        let src = r#"
            fn F(n, k) { return k; }
            fn Main(n) {
                x = F(n.l, 3 + 4);
                return x;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let call = prog.main().unwrap().blocks()[0].as_call().unwrap().clone();
        assert_eq!(call.callee, "F");
        assert_eq!(call.target, NodeRef::Child(ChildAxis::LEFT));
        assert_eq!(call.args.len(), 1);
    }

    #[test]
    fn indexed_spellings_alias_l_and_r() {
        let plain = parse_program(
            r#"
            fn F(n) {
                if (n == nil) { return 0; }
                a = F(n.l);
                b = F(n.r);
                n.s = n.l.s + n.r.s;
                return a + b;
            }
        "#,
        )
        .unwrap();
        let indexed = parse_program(
            r#"
            fn F(n) {
                if (n == nil) { return 0; }
                a = F(n.c0);
                b = F(n.c1);
                n.s = n.c0.s + n.c1.s;
                return a + b;
            }
        "#,
        )
        .unwrap();
        // Same AST (spelling is excluded from equality)…
        assert_eq!(plain, indexed);
        // …but the spelling flag remembers which form the source used.
        assert!(!plain.indexed_spelling);
        assert!(indexed.indexed_spelling);
    }

    #[test]
    fn arity_header_opens_higher_axes() {
        let src = r#"
            arity 3;
            fn F(n) {
                if (n == nil) { return 0; }
                a = F(n.c0);
                b = F(n.c1);
                c = F(n.c2);
                return a + b + c + n.v;
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.arity, 3);
        let targets: Vec<_> = prog
            .func("F")
            .unwrap()
            .blocks()
            .into_iter()
            .filter_map(|b| b.as_call().map(|c| c.target))
            .collect();
        assert_eq!(
            targets,
            vec![
                NodeRef::Child(ChildAxis(0)),
                NodeRef::Child(ChildAxis(1)),
                NodeRef::Child(ChildAxis(2)),
            ]
        );
    }

    #[test]
    fn out_of_range_axis_is_rejected() {
        let err = parse_program("fn F(n) { x = F(n.c2); return x; }").unwrap_err();
        assert!(err.message.contains("out of range"), "{}", err.message);
        let err = parse_program("arity 9;\nfn F(n) { return 0; }").unwrap_err();
        assert!(err.message.contains("arity"), "{}", err.message);
        let err = parse_program("arity 1;\nfn F(n) { return 0; }").unwrap_err();
        assert!(err.message.contains("arity"), "{}", err.message);
    }
}
