//! Pretty-printer producing valid `.retreet` surface syntax.
//!
//! The printer is the inverse of [`crate::parser`]: printing a program and
//! re-parsing it yields a structurally equal program (round-trip property,
//! tested here and property-tested in the integration suite).

use std::fmt::Write as _;

use crate::ast::{AExpr, Assign, BExpr, Block, BlockKind, Func, NodeRef, Program, Stmt};

/// Renders a whole program.
///
/// Programs with a non-binary arity get an `arity K;` header, and child
/// references are printed in the spelling the source used (`n.l`/`n.r` or
/// the indexed `n.c0`/`n.c1`), so parse–print roundtrips are stable for
/// both forms.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    if program.arity != 2 {
        let _ = writeln!(out, "arity {};\n", program.arity);
    }
    let indexed = program.indexed_spelling;
    for (i, func) in program.funcs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_func_spelled(func, indexed, &mut out);
    }
    out
}

/// Renders a single function in the canonical `l`/`r` spelling.
pub fn print_func(func: &Func, out: &mut String) {
    print_func_spelled(func, false, out);
}

fn print_func_spelled(func: &Func, indexed: bool, out: &mut String) {
    let params = if func.int_params.is_empty() {
        func.loc_param.clone()
    } else {
        format!("{}, {}", func.loc_param, func.int_params.join(", "))
    };
    let _ = writeln!(out, "fn {}({}) {{", func.name, params);
    print_stmt(&func.body, 1, indexed, out);
    out.push_str("}\n");
}

fn node_str(node: &NodeRef, indexed: bool) -> String {
    match node {
        NodeRef::Cur => "n".to_string(),
        NodeRef::Child(axis) if indexed => format!("n.{}", axis.indexed_name()),
        NodeRef::Child(axis) => format!("n.{}", axis.field_name()),
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(stmt: &Stmt, level: usize, indexed: bool, out: &mut String) {
    match stmt {
        Stmt::Block(block) => print_block(block, level, indexed, out),
        Stmt::If(cond, then_branch, else_branch) => {
            indent(level, out);
            let _ = writeln!(out, "if ({}) {{", print_cond(cond, indexed));
            print_stmt(then_branch, level + 1, indexed, out);
            if matches!(else_branch.as_ref(), Stmt::Seq(items) if items.is_empty()) {
                indent(level, out);
                out.push_str("}\n");
            } else {
                indent(level, out);
                out.push_str("} else {\n");
                print_stmt(else_branch, level + 1, indexed, out);
                indent(level, out);
                out.push_str("}\n");
            }
        }
        Stmt::Seq(items) => {
            for item in items {
                print_stmt(item, level, indexed, out);
            }
        }
        Stmt::Par(items) => {
            indent(level, out);
            out.push_str("{\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    indent(level, out);
                    out.push_str("||\n");
                }
                print_stmt(item, level + 1, indexed, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
    }
}

fn print_block(block: &Block, level: usize, indexed: bool, out: &mut String) {
    match &block.kind {
        BlockKind::Call(call) => {
            indent(level, out);
            let results = call.results.join(", ");
            let mut args = node_str(&call.target, indexed);
            for arg in &call.args {
                let _ = write!(args, ", {}", print_aexpr(arg, indexed));
            }
            if results.is_empty() {
                // The grammar requires at least one result variable; use a
                // throw-away name for result-less calls.
                let _ = writeln!(out, "_ignored = {}({});", call.callee, args);
            } else {
                let _ = writeln!(out, "{} = {}({});", results, call.callee, args);
            }
        }
        BlockKind::Straight(straight) => {
            for assign in &straight.assigns {
                indent(level, out);
                match assign {
                    Assign::SetField(node, field, value) => {
                        let _ = writeln!(
                            out,
                            "{}.{field} = {};",
                            node_str(node, indexed),
                            print_aexpr(value, indexed)
                        );
                    }
                    Assign::SetVar(var, value) => {
                        let _ = writeln!(out, "{var} = {};", print_aexpr(value, indexed));
                    }
                }
            }
            if let Some(ret) = &straight.ret {
                indent(level, out);
                if ret.is_empty() {
                    out.push_str("return;\n");
                } else {
                    let values: Vec<String> = ret.iter().map(|v| print_aexpr(v, indexed)).collect();
                    let _ = writeln!(out, "return {};", values.join(", "));
                }
            }
        }
    }
}

fn print_aexpr(expr: &AExpr, indexed: bool) -> String {
    match expr {
        AExpr::Const(c) => format!("{c}"),
        AExpr::Var(v) => v.clone(),
        AExpr::Field(node, field) => format!("{}.{field}", node_str(node, indexed)),
        AExpr::Add(a, b) => format!(
            "({} + {})",
            print_aexpr(a, indexed),
            print_aexpr(b, indexed)
        ),
        AExpr::Sub(a, b) => format!(
            "({} - {})",
            print_aexpr(a, indexed),
            print_aexpr(b, indexed)
        ),
    }
}

fn print_cond(cond: &BExpr, indexed: bool) -> String {
    match cond {
        BExpr::True => "true".to_string(),
        BExpr::IsNil(node) => format!("{} == nil", node_str(node, indexed)),
        BExpr::Gt(expr) => format!("{} > 0", print_aexpr(expr, indexed)),
        BExpr::Not(inner) => format!("!({})", print_cond(inner, indexed)),
        BExpr::And(a, b) => format!(
            "({}) && ({})",
            print_cond(a, indexed),
            print_cond(b, indexed)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const ODD_EVEN: &str = r#"
        fn Odd(n) {
            if (n == nil) { return 0; } else {
                ls = Even(n.l);
                rs = Even(n.r);
                return ls + rs + 1;
            }
        }
        fn Even(n) {
            if (n == nil) { return 0; } else {
                ls = Odd(n.l);
                rs = Odd(n.r);
                return ls + rs;
            }
        }
        fn Main(n) {
            { o = Odd(n); || e = Even(n); }
            return o, e;
        }
    "#;

    #[test]
    fn round_trip_preserves_structure() {
        let prog = parse_program(ODD_EVEN).unwrap();
        let printed = print_program(&prog);
        let reparsed = parse_program(&printed).expect("printed program parses");
        assert_eq!(prog.funcs.len(), reparsed.funcs.len());
        for (a, b) in prog.funcs.iter().zip(reparsed.funcs.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.blocks().len(), b.blocks().len());
        }
    }

    #[test]
    fn printed_text_contains_parallel_separator() {
        let prog = parse_program(ODD_EVEN).unwrap();
        let printed = print_program(&prog);
        assert!(printed.contains("||"));
        assert!(printed.contains("fn Main(n)"));
    }

    #[test]
    fn prints_conditions_and_fields() {
        let src = r#"
            fn F(n, k) {
                if (n.v > k && n.l != nil) {
                    n.v = n.l.v - 1;
                }
                return n.v;
            }
            fn Main(n) {
                x = F(n, 3);
                return x;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let printed = print_program(&prog);
        let reparsed = parse_program(&printed).expect("reparse");
        assert_eq!(
            prog.func("F").unwrap().blocks().len(),
            reparsed.func("F").unwrap().blocks().len()
        );
        assert!(printed.contains("n.l.v"));
    }

    #[test]
    fn round_trip_is_a_fixpoint() {
        let prog = parse_program(ODD_EVEN).unwrap();
        let once = print_program(&prog);
        let twice = print_program(&parse_program(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn indexed_spelling_prints_back_as_written() {
        let src = r#"
            fn F(n) {
                if (n == nil) { return 0; }
                a = F(n.c0);
                b = F(n.c1);
                n.s = n.c0.s + n.c1.s;
                return a + b;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let printed = print_program(&prog);
        assert!(printed.contains("n.c0"), "{printed}");
        assert!(printed.contains("n.c1"), "{printed}");
        assert!(!printed.contains("n.l"), "{printed}");
        // Roundtrip is a fixpoint in the indexed spelling too.
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
        assert_eq!(printed, print_program(&reparsed));
    }

    #[test]
    fn arity_header_roundtrips() {
        let src = r#"
            arity 3;
            fn Sum(n) {
                if (n == nil) { return 0; }
                a = Sum(n.c0);
                b = Sum(n.c1);
                c = Sum(n.c2);
                return a + b + c + n.v;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let printed = print_program(&prog);
        assert!(printed.starts_with("arity 3;"), "{printed}");
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
        assert_eq!(reparsed.arity, 3);
        assert_eq!(printed, print_program(&reparsed));
    }
}
