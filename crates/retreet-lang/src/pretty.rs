//! Pretty-printer producing valid `.retreet` surface syntax.
//!
//! The printer is the inverse of [`crate::parser`]: printing a program and
//! re-parsing it yields a structurally equal program (round-trip property,
//! tested here and property-tested in the integration suite).

use std::fmt::Write as _;

use crate::ast::{AExpr, Assign, BExpr, Block, BlockKind, Func, Program, Stmt};

/// Renders a whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, func) in program.funcs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_func(func, &mut out);
    }
    out
}

/// Renders a single function.
pub fn print_func(func: &Func, out: &mut String) {
    let params = if func.int_params.is_empty() {
        func.loc_param.clone()
    } else {
        format!("{}, {}", func.loc_param, func.int_params.join(", "))
    };
    let _ = writeln!(out, "fn {}({}) {{", func.name, params);
    print_stmt(&func.body, 1, out);
    out.push_str("}\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    match stmt {
        Stmt::Block(block) => print_block(block, level, out),
        Stmt::If(cond, then_branch, else_branch) => {
            indent(level, out);
            let _ = writeln!(out, "if ({}) {{", print_cond(cond));
            print_stmt(then_branch, level + 1, out);
            if matches!(else_branch.as_ref(), Stmt::Seq(items) if items.is_empty()) {
                indent(level, out);
                out.push_str("}\n");
            } else {
                indent(level, out);
                out.push_str("} else {\n");
                print_stmt(else_branch, level + 1, out);
                indent(level, out);
                out.push_str("}\n");
            }
        }
        Stmt::Seq(items) => {
            for item in items {
                print_stmt(item, level, out);
            }
        }
        Stmt::Par(items) => {
            indent(level, out);
            out.push_str("{\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    indent(level, out);
                    out.push_str("||\n");
                }
                print_stmt(item, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
    }
}

fn print_block(block: &Block, level: usize, out: &mut String) {
    match &block.kind {
        BlockKind::Call(call) => {
            indent(level, out);
            let results = call.results.join(", ");
            let mut args = format!("{}", call.target);
            for arg in &call.args {
                let _ = write!(args, ", {}", print_aexpr(arg));
            }
            if results.is_empty() {
                // The grammar requires at least one result variable; use a
                // throw-away name for result-less calls.
                let _ = writeln!(out, "_ignored = {}({});", call.callee, args);
            } else {
                let _ = writeln!(out, "{} = {}({});", results, call.callee, args);
            }
        }
        BlockKind::Straight(straight) => {
            for assign in &straight.assigns {
                indent(level, out);
                match assign {
                    Assign::SetField(node, field, value) => {
                        let _ = writeln!(out, "{node}.{field} = {};", print_aexpr(value));
                    }
                    Assign::SetVar(var, value) => {
                        let _ = writeln!(out, "{var} = {};", print_aexpr(value));
                    }
                }
            }
            if let Some(ret) = &straight.ret {
                indent(level, out);
                if ret.is_empty() {
                    out.push_str("return;\n");
                } else {
                    let values: Vec<String> = ret.iter().map(print_aexpr).collect();
                    let _ = writeln!(out, "return {};", values.join(", "));
                }
            }
        }
    }
}

fn print_aexpr(expr: &AExpr) -> String {
    match expr {
        AExpr::Const(c) => format!("{c}"),
        AExpr::Var(v) => v.clone(),
        AExpr::Field(node, field) => format!("{node}.{field}"),
        AExpr::Add(a, b) => format!("({} + {})", print_aexpr(a), print_aexpr(b)),
        AExpr::Sub(a, b) => format!("({} - {})", print_aexpr(a), print_aexpr(b)),
    }
}

fn print_cond(cond: &BExpr) -> String {
    match cond {
        BExpr::True => "true".to_string(),
        BExpr::IsNil(node) => format!("{node} == nil"),
        BExpr::Gt(expr) => format!("{} > 0", print_aexpr(expr)),
        BExpr::Not(inner) => format!("!({})", print_cond(inner)),
        BExpr::And(a, b) => format!("({}) && ({})", print_cond(a), print_cond(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const ODD_EVEN: &str = r#"
        fn Odd(n) {
            if (n == nil) { return 0; } else {
                ls = Even(n.l);
                rs = Even(n.r);
                return ls + rs + 1;
            }
        }
        fn Even(n) {
            if (n == nil) { return 0; } else {
                ls = Odd(n.l);
                rs = Odd(n.r);
                return ls + rs;
            }
        }
        fn Main(n) {
            { o = Odd(n); || e = Even(n); }
            return o, e;
        }
    "#;

    #[test]
    fn round_trip_preserves_structure() {
        let prog = parse_program(ODD_EVEN).unwrap();
        let printed = print_program(&prog);
        let reparsed = parse_program(&printed).expect("printed program parses");
        assert_eq!(prog.funcs.len(), reparsed.funcs.len());
        for (a, b) in prog.funcs.iter().zip(reparsed.funcs.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.blocks().len(), b.blocks().len());
        }
    }

    #[test]
    fn printed_text_contains_parallel_separator() {
        let prog = parse_program(ODD_EVEN).unwrap();
        let printed = print_program(&prog);
        assert!(printed.contains("||"));
        assert!(printed.contains("fn Main(n)"));
    }

    #[test]
    fn prints_conditions_and_fields() {
        let src = r#"
            fn F(n, k) {
                if (n.v > k && n.l != nil) {
                    n.v = n.l.v - 1;
                }
                return n.v;
            }
            fn Main(n) {
                x = F(n, 3);
                return x;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let printed = print_program(&prog);
        let reparsed = parse_program(&printed).expect("reparse");
        assert_eq!(
            prog.func("F").unwrap().blocks().len(),
            reparsed.func("F").unwrap().blocks().len()
        );
        assert!(printed.contains("n.l.v"));
    }

    #[test]
    fn round_trip_is_a_fixpoint() {
        let prog = parse_program(ODD_EVEN).unwrap();
        let once = print_program(&prog);
        let twice = print_program(&parse_program(&once).unwrap());
        assert_eq!(once, twice);
    }
}
