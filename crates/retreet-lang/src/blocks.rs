//! Block extraction, canonical numbering, and the syntactic relations between
//! blocks (Appendix B of the paper).
//!
//! Code blocks are the atomic units of Retreet programs.  The [`BlockTable`]
//! assigns every block a [`BlockId`] in syntactic order (which reproduces the
//! `s0 … s10` numbering of the running example), records which function each
//! block belongs to, and answers the relations of Fig. 11:
//!
//! * `s ◁ t` — `s` is a call to the function `t` belongs to ([`BlockTable::calls_into`]),
//! * `s ∼ t` — same function,
//! * `s ≺ t` — the least common ancestor is a sequential composition,
//! * `s ↑ t` — the LCA is a conditional (the blocks are in different branches),
//! * `s ‖ t` — the LCA is a parallel composition.
//!
//! The table also enumerates, for every block `t`, the straight-line *paths*
//! from the entry of its function to `t` (`Path(t)` in the paper), which feed
//! the weakest-precondition computation of [`crate::wp`].

use std::collections::HashMap;
use std::fmt;

use crate::ast::{BExpr, Block, Func, Program, Stmt};

/// A globally unique block identifier, assigned in syntactic order across the
/// whole program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The raw index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The syntactic relation between two blocks of the same function (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// The two ids denote the same block.
    Same,
    /// The LCA is a sequential composition and the first block comes first
    /// (`s ≺ t`).
    SeqBefore,
    /// The LCA is a sequential composition and the first block comes second
    /// (`t ≺ s`).
    SeqAfter,
    /// The LCA is a conditional; the blocks are in different branches
    /// (`s ↑ t`), so they never both execute in the same call.
    Branch,
    /// The LCA is a parallel composition (`s ‖ t`).
    Parallel,
    /// The blocks belong to different functions (no `∼` relation).
    DifferentFunc,
}

/// A single step on the syntactic path from a function body root to a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PathStep {
    /// Child `index` of a sequential composition.
    Seq(usize),
    /// Child `index` of a parallel composition.
    Par(usize),
    /// `then` (0) or `else` (1) branch of a conditional.
    IfBranch(usize),
}

/// One element of a resolved straight-line path to a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathElem {
    /// The branch condition of an enclosing or preceding conditional,
    /// together with the polarity with which it must hold (`true` = the
    /// `then` branch was taken).
    Assume(BExpr, bool),
    /// A block executed earlier on the path (call blocks contribute ghost
    /// return values; straight blocks contribute their assignments).
    Exec(BlockId),
}

/// A resolved straight-line path from the entry of a function to a target
/// block: `l1; assume(c1); …; ln; t` in the notation of Appendix C.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPath {
    /// The elements executed/assumed before the target, in order.
    pub elems: Vec<PathElem>,
    /// The target block.
    pub target: BlockId,
}

impl BlockPath {
    /// The branch conditions (with polarity) along the path — `Path(t)` in
    /// the paper.
    pub fn conditions(&self) -> Vec<(&BExpr, bool)> {
        self.elems
            .iter()
            .filter_map(|e| match e {
                PathElem::Assume(cond, polarity) => Some((cond, *polarity)),
                PathElem::Exec(_) => None,
            })
            .collect()
    }
}

/// Metadata for a single block.
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// The block id.
    pub id: BlockId,
    /// Index of the owning function in the program.
    pub func: usize,
    /// Canonical label (`s0`, `s1`, … or the user-provided label).
    pub label: String,
    /// The block payload.
    pub block: Block,
    /// Syntactic path from the function body root to this block.
    steps: Vec<PathStep>,
}

impl BlockInfo {
    /// True when the block is a function call.
    pub fn is_call(&self) -> bool {
        self.block.is_call()
    }
}

/// The block table of a program.
#[derive(Debug, Clone)]
pub struct BlockTable {
    program: Program,
    blocks: Vec<BlockInfo>,
    func_blocks: Vec<Vec<BlockId>>,
    label_index: HashMap<String, BlockId>,
    /// Map from (function index, syntactic position) to block id; positions
    /// are unique even when two blocks have identical payloads.
    pos_index: HashMap<(usize, Vec<PathStep>), BlockId>,
}

impl BlockTable {
    /// Builds the table, numbering blocks in syntactic order.
    pub fn build(program: &Program) -> Self {
        let mut blocks = Vec::new();
        let mut func_blocks = vec![Vec::new(); program.funcs.len()];
        for (fidx, func) in program.funcs.iter().enumerate() {
            let mut steps = Vec::new();
            collect_blocks(
                &func.body,
                fidx,
                &mut steps,
                &mut blocks,
                &mut func_blocks[fidx],
            );
        }
        let mut label_index = HashMap::new();
        let mut pos_index = HashMap::new();
        for info in &blocks {
            label_index.insert(info.label.clone(), info.id);
            pos_index.insert((info.func, info.steps.clone()), info.id);
        }
        BlockTable {
            program: program.clone(),
            blocks,
            func_blocks,
            label_index,
            pos_index,
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// All blocks, in id order.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Metadata for a block.
    pub fn info(&self, id: BlockId) -> &BlockInfo {
        &self.blocks[id.as_usize()]
    }

    /// The function a block belongs to.
    pub fn func_of(&self, id: BlockId) -> &Func {
        &self.program.funcs[self.info(id).func]
    }

    /// Blocks of a function, by function index.
    pub fn blocks_of_func(&self, func_index: usize) -> &[BlockId] {
        &self.func_blocks[func_index]
    }

    /// Blocks of a function, by name.
    pub fn blocks_of_func_named(&self, name: &str) -> &[BlockId] {
        match self.program.func_index(name) {
            Some(idx) => &self.func_blocks[idx],
            None => &[],
        }
    }

    /// Resolves a label (`"s3"` or a user label) to a block id.
    pub fn by_label(&self, label: &str) -> Option<BlockId> {
        self.label_index.get(label).copied()
    }

    /// All call blocks (`AllCalls`).
    pub fn calls(&self) -> impl Iterator<Item = &BlockInfo> {
        self.blocks.iter().filter(|b| b.is_call())
    }

    /// All non-call blocks (`AllNonCalls`).
    pub fn non_calls(&self) -> impl Iterator<Item = &BlockInfo> {
        self.blocks.iter().filter(|b| !b.is_call())
    }

    /// `s ◁ t`: true when `s` is a call to the function that `t` belongs to.
    pub fn calls_into(&self, s: BlockId, t: BlockId) -> bool {
        let s_info = self.info(s);
        let Some(call) = s_info.block.as_call() else {
            return false;
        };
        match self.program.func_index(&call.callee) {
            Some(callee_idx) => self.info(t).func == callee_idx,
            None => false,
        }
    }

    /// All call blocks whose callee is `func_name`.
    pub fn calls_to(&self, func_name: &str) -> Vec<BlockId> {
        self.calls()
            .filter(|b| b.block.as_call().map(|c| c.callee.as_str()) == Some(func_name))
            .map(|b| b.id)
            .collect()
    }

    /// The syntactic relation between two blocks (Fig. 11 / Lemma 2).
    pub fn relation(&self, s: BlockId, t: BlockId) -> Relation {
        if s == t {
            return Relation::Same;
        }
        let a = self.info(s);
        let b = self.info(t);
        if a.func != b.func {
            return Relation::DifferentFunc;
        }
        // Find the first step where the paths diverge; the container at that
        // depth is the LCA.
        for (sa, sb) in a.steps.iter().zip(b.steps.iter()) {
            if sa == sb {
                continue;
            }
            return match (sa, sb) {
                (PathStep::Seq(i), PathStep::Seq(j)) => {
                    if i < j {
                        Relation::SeqBefore
                    } else {
                        Relation::SeqAfter
                    }
                }
                (PathStep::Par(_), PathStep::Par(_)) => Relation::Parallel,
                (PathStep::IfBranch(_), PathStep::IfBranch(_)) => Relation::Branch,
                // Diverging steps always have the same container kind because
                // the paths agreed up to this point.
                _ => unreachable!("diverging steps with different container kinds"),
            };
        }
        unreachable!("distinct leaf blocks cannot have prefix-related paths")
    }

    /// Enumerates the straight-line paths from the entry of `t`'s function to
    /// `t` (`Path(t)` in the paper, resolved through every conditional on the
    /// way).  Parallel siblings to the left of the path are *not* included:
    /// their interleaving is handled at the configuration level, not at the
    /// intra-procedural path level.
    pub fn paths_to(&self, t: BlockId) -> Vec<BlockPath> {
        let info = self.info(t);
        let func = &self.program.funcs[info.func];
        let mut out = Vec::new();
        let mut pos = Vec::new();
        let prefixes = self.prefixes_to(&func.body, info.func, &info.steps, 0, &mut pos);
        for elems in prefixes {
            out.push(BlockPath { elems, target: t });
        }
        out
    }

    /// Recursive helper for [`Self::paths_to`]: returns every resolved prefix
    /// of path elements executed before reaching the target designated by
    /// `steps[depth..]` inside `stmt`.  `pos` tracks the absolute syntactic
    /// position of `stmt` within the function body.
    fn prefixes_to(
        &self,
        stmt: &Stmt,
        func: usize,
        steps: &[PathStep],
        depth: usize,
        pos: &mut Vec<PathStep>,
    ) -> Vec<Vec<PathElem>> {
        match stmt {
            Stmt::Block(_) => vec![Vec::new()],
            Stmt::If(cond, then_branch, else_branch) => {
                let Some(PathStep::IfBranch(which)) = steps.get(depth) else {
                    return vec![Vec::new()];
                };
                let (branch, polarity) = if *which == 0 {
                    (then_branch.as_ref(), true)
                } else {
                    (else_branch.as_ref(), false)
                };
                pos.push(PathStep::IfBranch(*which));
                let tails = self.prefixes_to(branch, func, steps, depth + 1, pos);
                pos.pop();
                tails
                    .into_iter()
                    .map(|mut rest| {
                        let mut elems = vec![PathElem::Assume(cond.clone(), polarity)];
                        elems.append(&mut rest);
                        elems
                    })
                    .collect()
            }
            Stmt::Seq(items) => {
                let Some(PathStep::Seq(target_child)) = steps.get(depth) else {
                    return vec![Vec::new()];
                };
                // Effects of every left sibling, then the prefix inside the
                // target child.
                let mut alternatives: Vec<Vec<PathElem>> = vec![Vec::new()];
                for (i, item) in items.iter().enumerate().take(*target_child) {
                    pos.push(PathStep::Seq(i));
                    let effects = self.effects_of(item, func, pos);
                    pos.pop();
                    alternatives = cross_product(alternatives, effects);
                }
                pos.push(PathStep::Seq(*target_child));
                let tails = self.prefixes_to(&items[*target_child], func, steps, depth + 1, pos);
                pos.pop();
                cross_product(alternatives, tails)
            }
            Stmt::Par(items) => {
                let Some(PathStep::Par(target_child)) = steps.get(depth) else {
                    return vec![Vec::new()];
                };
                // Parallel siblings are skipped (their effects are not on the
                // intra-procedural path).
                pos.push(PathStep::Par(*target_child));
                let tails = self.prefixes_to(&items[*target_child], func, steps, depth + 1, pos);
                pos.pop();
                tails
            }
        }
    }

    /// All complete effect sequences of a statement (one alternative per
    /// resolution of the conditionals inside).  `pos` is the absolute
    /// syntactic position of `stmt`.
    fn effects_of(&self, stmt: &Stmt, func: usize, pos: &mut Vec<PathStep>) -> Vec<Vec<PathElem>> {
        match stmt {
            Stmt::Block(_) => {
                let id = self.pos_index[&(func, pos.clone())];
                vec![vec![PathElem::Exec(id)]]
            }
            Stmt::If(cond, then_branch, else_branch) => {
                let mut out = Vec::new();
                pos.push(PathStep::IfBranch(0));
                for effects in self.effects_of(then_branch, func, pos) {
                    let mut elems = vec![PathElem::Assume(cond.clone(), true)];
                    elems.extend(effects);
                    out.push(elems);
                }
                pos.pop();
                pos.push(PathStep::IfBranch(1));
                for effects in self.effects_of(else_branch, func, pos) {
                    let mut elems = vec![PathElem::Assume(cond.clone(), false)];
                    elems.extend(effects);
                    out.push(elems);
                }
                pos.pop();
                out
            }
            Stmt::Seq(items) => {
                let mut alternatives: Vec<Vec<PathElem>> = vec![Vec::new()];
                for (i, item) in items.iter().enumerate() {
                    pos.push(PathStep::Seq(i));
                    alternatives = cross_product(alternatives, self.effects_of(item, func, pos));
                    pos.pop();
                }
                alternatives
            }
            Stmt::Par(items) => {
                // Parallel children are serialized in syntactic order for the
                // purpose of intra-procedural effects.
                let mut alternatives: Vec<Vec<PathElem>> = vec![Vec::new()];
                for (i, item) in items.iter().enumerate() {
                    pos.push(PathStep::Par(i));
                    alternatives = cross_product(alternatives, self.effects_of(item, func, pos));
                    pos.pop();
                }
                alternatives
            }
        }
    }
}

fn cross_product(prefixes: Vec<Vec<PathElem>>, suffixes: Vec<Vec<PathElem>>) -> Vec<Vec<PathElem>> {
    let mut out = Vec::with_capacity(prefixes.len() * suffixes.len());
    for prefix in &prefixes {
        for suffix in &suffixes {
            let mut combined = prefix.clone();
            combined.extend(suffix.iter().cloned());
            out.push(combined);
        }
    }
    out
}

fn collect_blocks(
    stmt: &Stmt,
    func: usize,
    steps: &mut Vec<PathStep>,
    blocks: &mut Vec<BlockInfo>,
    func_blocks: &mut Vec<BlockId>,
) {
    match stmt {
        Stmt::Block(block) => {
            let id = BlockId(blocks.len() as u32);
            let label = block.label.clone().unwrap_or_else(|| format!("s{}", id.0));
            blocks.push(BlockInfo {
                id,
                func,
                label,
                block: block.clone(),
                steps: steps.clone(),
            });
            func_blocks.push(id);
        }
        Stmt::If(_, then_branch, else_branch) => {
            steps.push(PathStep::IfBranch(0));
            collect_blocks(then_branch, func, steps, blocks, func_blocks);
            steps.pop();
            steps.push(PathStep::IfBranch(1));
            collect_blocks(else_branch, func, steps, blocks, func_blocks);
            steps.pop();
        }
        Stmt::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                steps.push(PathStep::Seq(i));
                collect_blocks(item, func, steps, blocks, func_blocks);
                steps.pop();
            }
        }
        Stmt::Par(items) => {
            for (i, item) in items.iter().enumerate() {
                steps.push(PathStep::Par(i));
                collect_blocks(item, func, steps, blocks, func_blocks);
                steps.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const ODD_EVEN: &str = r#"
        fn Odd(n) {
            if (n == nil) {
                return 0;
            } else {
                ls = Even(n.l);
                rs = Even(n.r);
                return ls + rs + 1;
            }
        }
        fn Even(n) {
            if (n == nil) {
                return 0;
            } else {
                ls = Odd(n.l);
                rs = Odd(n.r);
                return ls + rs;
            }
        }
        fn Main(n) {
            {
                o = Odd(n);
                ||
                e = Even(n);
            }
            return o, e;
        }
    "#;

    fn table() -> BlockTable {
        BlockTable::build(&parse_program(ODD_EVEN).unwrap())
    }

    #[test]
    fn numbering_matches_the_paper() {
        let table = table();
        // Fig. 3: 11 blocks s0..s10.
        assert_eq!(table.len(), 11);
        // AllCalls = {s1, s2, s5, s6, s8, s9}; AllNonCalls = {s0, s3, s4, s7, s10}.
        let calls: Vec<u32> = table.calls().map(|b| b.id.0).collect();
        assert_eq!(calls, vec![1, 2, 5, 6, 8, 9]);
        let non_calls: Vec<u32> = table.non_calls().map(|b| b.id.0).collect();
        assert_eq!(non_calls, vec![0, 3, 4, 7, 10]);
    }

    #[test]
    fn relations_match_example_1() {
        let table = table();
        let b = |i: u32| BlockId(i);
        // s2 ◁ s7: s2 calls Even and s7 ∈ Blocks(Even).
        assert!(table.calls_into(b(2), b(7)));
        assert!(!table.calls_into(b(2), b(3)));
        // s5 ≺ s7.
        assert_eq!(table.relation(b(5), b(7)), Relation::SeqBefore);
        assert_eq!(table.relation(b(7), b(5)), Relation::SeqAfter);
        // s0 ↑ s1.
        assert_eq!(table.relation(b(0), b(1)), Relation::Branch);
        // s8 ‖ s9.
        assert_eq!(table.relation(b(8), b(9)), Relation::Parallel);
        // Different functions.
        assert_eq!(table.relation(b(0), b(4)), Relation::DifferentFunc);
        assert_eq!(table.relation(b(3), b(3)), Relation::Same);
    }

    #[test]
    fn calls_to_by_name() {
        let table = table();
        let to_even: Vec<u32> = table.calls_to("Even").iter().map(|b| b.0).collect();
        assert_eq!(to_even, vec![1, 2, 9]);
    }

    #[test]
    fn path_to_s6_goes_through_the_else_branch_and_s5() {
        let table = table();
        let paths = table.paths_to(BlockId(6));
        assert_eq!(paths.len(), 1);
        let path = &paths[0];
        // Path(s6): ¬c1 then s5 then s6 (Example 1 in Appendix B).
        let conds = path.conditions();
        assert_eq!(conds.len(), 1);
        assert!(
            !conds[0].1,
            "the else branch must be taken (condition is false)"
        );
        let execs: Vec<BlockId> = path
            .elems
            .iter()
            .filter_map(|e| match e {
                PathElem::Exec(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(execs, vec![BlockId(5)]);
    }

    #[test]
    fn path_to_then_branch_has_positive_condition() {
        let table = table();
        let paths = table.paths_to(BlockId(0));
        assert_eq!(paths.len(), 1);
        assert!(paths[0].conditions()[0].1);
        assert!(paths[0].elems.len() == 1);
    }

    #[test]
    fn parallel_siblings_are_not_on_the_path() {
        let table = table();
        // s10 (return in Main) is preceded by the parallel region; both call
        // blocks appear as Execs of the sequential composition, because the
        // Par node is a left sibling of the return inside the Seq.
        let paths = table.paths_to(BlockId(10));
        assert_eq!(paths.len(), 1);
        let execs: Vec<BlockId> = paths[0]
            .elems
            .iter()
            .filter_map(|e| match e {
                PathElem::Exec(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(execs, vec![BlockId(8), BlockId(9)]);
        // But the path to s9 itself does not include s8 (they are parallel).
        let paths9 = table.paths_to(BlockId(9));
        assert!(paths9[0].elems.is_empty());
    }

    #[test]
    fn by_label_resolves_canonical_names() {
        let table = table();
        assert_eq!(table.by_label("s7"), Some(BlockId(7)));
        assert_eq!(table.by_label("nope"), None);
    }

    #[test]
    fn blocks_of_func_partitions_ids() {
        let table = table();
        assert_eq!(table.blocks_of_func_named("Odd").len(), 4);
        assert_eq!(table.blocks_of_func_named("Even").len(), 4);
        assert_eq!(table.blocks_of_func_named("Main").len(), 3);
        assert_eq!(table.blocks_of_func_named("Missing").len(), 0);
        let total: usize = (0..3).map(|i| table.blocks_of_func(i).len()).sum();
        assert_eq!(total, table.len());
    }

    #[test]
    fn nested_conditionals_enumerate_multiple_paths() {
        let src = r#"
            fn F(n) {
                if (n.a > 0) {
                    n.x = 1;
                } else {
                    n.x = 2;
                }
                return n.x;
            }
        "#;
        let table = BlockTable::build(&parse_program(src).unwrap());
        // Blocks: then-assign, else-assign, return.
        assert_eq!(table.len(), 3);
        let ret = table
            .blocks()
            .iter()
            .find(|b| !b.is_call() && b.block.as_straight().unwrap().ret.is_some())
            .unwrap()
            .id;
        let paths = table.paths_to(ret);
        // The return is reachable through either branch of the conditional.
        assert_eq!(paths.len(), 2);
    }
}
