//! # retreet-lang — the Retreet tree-traversal language
//!
//! This crate implements the front half of the Retreet framework from
//! *"Reasoning About Recursive Tree Traversals"* (Wang, Liu, Zhang, Qiu):
//!
//! * [`ast`] — the abstract syntax of the language (Fig. 2): functions with a
//!   single `Loc` parameter, integer parameters, blocks, conditionals,
//!   sequential and parallel composition.
//! * [`lexer`] / [`parser`] — a hand-written tokenizer and recursive-descent
//!   parser for the `.retreet` surface syntax, and [`pretty`] — the inverse
//!   pretty-printer.
//! * [`mod@validate`] — the well-formedness restrictions of §2.1 (entry
//!   point, no-self-call, single-node traversal, no tree mutation, arity
//!   checks).
//! * [`rewrite`] — AST-rewriting utilities (fresh names, alpha renaming,
//!   callee renaming, block splicing, inlining, parser-shape normalization)
//!   used by the `retreet-transform` source-to-source layer.
//! * [`blocks`] — block extraction, the canonical `s0 … sN` numbering, the
//!   syntactic relations of Fig. 11 (`◁`, `∼`, `≺`, `↑`, `‖`), and resolved
//!   intra-procedural paths `Path(t)`.
//! * [`rw`] — the block-level read/write analysis of Appendix B.
//! * [`wp`] — symbolic weakest preconditions and path conditions
//!   (`PathCond`, `Match`) of §3.1/Appendix C, expressed over
//!   `retreet-logic` linear expressions.
//! * [`corpus`] — every program used in the paper's evaluation (§5), both as
//!   embedded `.retreet` sources and as parsed programs.
//!
//! The iteration-level reasoning (configurations, dependences, data-race and
//! equivalence checking) lives in the `retreet-analysis` crate; the execution
//! runtime (trees, interpreter, fused/parallel schedules) lives in
//! `retreet-runtime`.
//!
//! # Example
//!
//! ```
//! use retreet_lang::parser::parse_program;
//! use retreet_lang::blocks::BlockTable;
//! use retreet_lang::validate::validate;
//!
//! let program = parse_program(retreet_lang::corpus::SIZE_COUNTING_PARALLEL_SRC).unwrap();
//! assert!(validate(&program).is_empty());
//!
//! let table = BlockTable::build(&program);
//! // Fig. 3 of the paper: 11 blocks, s0 through s10.
//! assert_eq!(table.len(), 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod blocks;
pub mod corpus;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod rewrite;
pub mod rw;
pub mod validate;
pub mod wp;

pub use ast::{
    AExpr, Assign, BExpr, Block, BlockKind, CallBlock, ChildAxis, Func, NodeRef, Program, Stmt,
    StraightBlock, MAX_ARITY,
};
pub use blocks::{BlockId, BlockPath, BlockTable, PathElem, Relation};
pub use parser::{parse_program, ParseError};
pub use rw::{rw_sets, rw_sets_of_block, Access, RwSets};
pub use validate::{validate, validate_or_err, ValidationError};
