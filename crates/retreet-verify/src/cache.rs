//! The verdict cache: program-hash-keyed memoization of verdicts.
//!
//! In the ROADMAP's serving scenario the same legality questions are asked
//! over and over (every user fusing the same two library traversals asks
//! the same `Conflict⟦P, P′⟧` query).  Queries are keyed by a fixed-size
//! structural hash of their subjects plus the option set ([`CacheKey`],
//! computed once per query — no per-lookup re-canonicalization of program
//! text), so a repeated query is O(hashing the AST) instead of O(model
//! enumeration) — and the cached verdict carries the *same witness* the
//! original run produced.
//!
//! # Sharding
//!
//! The store is *lock-striped*: entries are spread over up to
//! [`SHARD_COUNT`] independent shards (selected by the key's own hash
//! bits), each behind its own mutex with its own FIFO eviction queue.
//! Concurrent serving threads with different queries therefore contend on
//! different locks instead of one global one; the hit/miss/collision
//! counters are lock-free atomics aggregated across shards by
//! [`VerdictCache::stats`].

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use crate::persist::VerdictStore;
use crate::query::{OwnedQuery, Query, QueryKind};
use crate::verdict::Verdict;

/// Upper bound on the number of lock stripes; small capacities use fewer
/// shards so that every shard can hold at least one entry.
const SHARD_COUNT: usize = 16;

/// A verdict-cache key: the query kind plus a 128-bit structural hash of
/// the query subjects and the verifier's option set (see
/// [`crate::Query::cache_key`]).  Fixed-size and `Copy`, so lookups hash a
/// few machine words instead of the canonical program text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) kind: QueryKind,
    pub(crate) h1: u64,
    pub(crate) h2: u64,
}

/// Cache hit/miss counters (monotonic over the verifier's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run the portfolio.
    pub misses: u64,
    /// Key collisions detected: an insert found a resident entry under the
    /// same 128-bit key whose subjects differ.  The resident entry is kept
    /// and the colliding verdict is simply not cached, so two colliding
    /// queries never evict each other.  Every lookup counts as exactly one
    /// hit or miss (`hits + misses == lookups` always); `collisions` is a
    /// separate diagnostic counter on top, astronomically unlikely to be
    /// non-zero and worth alerting on when it is.
    pub collisions: u64,
    /// Entries currently stored (aggregated across shards).
    pub entries: usize,
}

/// A bounded, lock-striped FIFO-evicting verdict store, safe to share
/// across threads.
pub(crate) struct VerdictCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
    /// Disk write-through layer, when persistence is enabled.  Attached
    /// *after* warm-loading the persisted entries, so the load itself does
    /// not re-append every verdict to the log it just came from.
    store: Option<Arc<VerdictStore>>,
}

struct Shard {
    capacity: usize,
    state: Mutex<CacheState>,
}

#[derive(Default)]
struct CacheState {
    map: HashMap<CacheKey, (Arc<OwnedQuery>, Verdict)>,
    insertion_order: VecDeque<CacheKey>,
}

impl VerdictCache {
    /// Creates a cache holding at most `capacity` verdicts (0 disables
    /// caching entirely).  The store is striped over up to [`SHARD_COUNT`]
    /// shards, but only when every shard can hold at least a few entries:
    /// a small cache sliced into one-entry shards would let two hot keys
    /// that stripe together evict each other forever (where a single FIFO
    /// map keeps both resident), so capacities below `4 × SHARD_COUNT`
    /// use proportionally fewer shards — down to one global-FIFO shard.
    pub(crate) fn new(capacity: usize) -> Self {
        let shard_count = if capacity == 0 {
            0
        } else {
            (capacity / 4).clamp(1, SHARD_COUNT)
        };
        let shards = (0..shard_count)
            .map(|i| Shard {
                // Distribute the capacity as evenly as possible; the first
                // `capacity % shard_count` shards hold one extra entry.
                capacity: capacity / shard_count + usize::from(i < capacity % shard_count),
                state: Mutex::new(CacheState::default()),
            })
            .collect();
        VerdictCache {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            store: None,
        }
    }

    /// Attaches the persistent write-through layer (called once at build,
    /// after the warm-load).
    pub(crate) fn set_store(&mut self, store: Arc<VerdictStore>) {
        self.store = Some(store);
    }

    /// True when the cache can store anything at all; a disabled cache lets
    /// the verifier skip key construction entirely.
    pub(crate) fn enabled(&self) -> bool {
        !self.shards.is_empty()
    }

    fn shard(&self, key: &CacheKey) -> &Shard {
        // h2 carries an independently seeded hash of the subjects, so the
        // stripe index is uncorrelated with the HashMap's use of the key.
        &self.shards[(key.h2 as usize) % self.shards.len()]
    }

    /// Looks up a verdict; counts exactly one hit or miss.  A key hit is
    /// only trusted after the stored subjects compare equal to `query` (the
    /// 128-bit hash key makes collisions astronomically unlikely, but a
    /// verifier must not return another query's verdict even then); a
    /// mismatch counts as a plain miss and the resident entry is left in
    /// place — the collision is counted once, at the blocked [`Self::insert`]
    /// that follows.  The returned clone is marked `cached` but keeps the
    /// original engine, soundness, witness and timing.
    pub(crate) fn get(&self, key: &CacheKey, query: &Query<'_>) -> Option<Verdict> {
        if !self.enabled() {
            return None;
        }
        let state = self
            .shard(key)
            .state
            .lock()
            .expect("verdict cache poisoned");
        match state.map.get(key) {
            Some((subjects, verdict)) if subjects.matches(query) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut verdict = verdict.clone();
                verdict.cached = true;
                Some(verdict)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`Self::get`] but without touching the hit/miss/collision
    /// counters — the single-flight leader's double-check after winning
    /// leadership, which must not distort the per-query accounting.
    pub(crate) fn peek(&self, key: &CacheKey, query: &Query<'_>) -> Option<Verdict> {
        if !self.enabled() {
            return None;
        }
        let state = self
            .shard(key)
            .state
            .lock()
            .expect("verdict cache poisoned");
        match state.map.get(key) {
            Some((subjects, verdict)) if subjects.matches(query) => {
                let mut verdict = verdict.clone();
                verdict.cached = true;
                Some(verdict)
            }
            _ => None,
        }
    }

    /// Stores a verdict with its owning subjects, evicting the shard's
    /// oldest entry when the shard is full.
    ///
    /// A resident entry under the same key is only replaced when its
    /// subjects equal the new entry's (a refresh) *and* the incoming
    /// verdict's soundness [`covers`](crate::verdict::Soundness::covers) the
    /// resident one's: an unbounded answer upgrades a bounded entry in
    /// place, but a bounded re-run never downgrades a resident unbounded
    /// (or wider-bounded) verdict.  When the subjects *differ* — a 128-bit
    /// key collision — the resident entry is kept and the event is counted
    /// in [`CacheStats::collisions`]: replacing it would make the two
    /// colliding queries evict each other forever and silently re-run their
    /// engines on every call.
    /// When persistence is enabled, an accepted insert is also written
    /// through to the disk store (outside the shard lock, so a slow disk
    /// never serializes the shard); collision- and downgrade-blocked
    /// inserts are not persisted, mirroring the in-memory decision.
    pub(crate) fn insert(&self, key: CacheKey, subjects: Arc<OwnedQuery>, verdict: Verdict) {
        if !self.enabled() {
            return;
        }
        let shard = self.shard(&key);
        {
            let mut state = shard.state.lock().expect("verdict cache poisoned");
            match state.map.get(&key) {
                Some((resident, _)) if !resident.matches(&subjects.as_query()) => {
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Some((_, resident)) if !verdict.soundness.covers(&resident.soundness) => {
                    // The resident verdict is strictly stronger; keep it.
                    return;
                }
                Some(_) => {}
                None => {
                    if state.map.len() >= shard.capacity {
                        if let Some(oldest) = state.insertion_order.pop_front() {
                            state.map.remove(&oldest);
                        }
                    }
                    state.insertion_order.push_back(key);
                }
            }
            state
                .map
                .insert(key, (Arc::clone(&subjects), verdict.clone()));
        }
        if let Some(store) = &self.store {
            store.write_through(&key, &subjects, &verdict);
        }
    }

    /// Current hit/miss/collision/entry counters, aggregated over shards.
    pub(crate) fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|shard| {
                shard
                    .state
                    .lock()
                    .expect("verdict cache poisoned")
                    .map
                    .len()
            })
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every stored verdict (counters are preserved).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            let mut state = shard.state.lock().expect("verdict cache poisoned");
            state.map.clear();
            state.insertion_order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::verdict::{Outcome, Soundness};
    use retreet_mso::formula::Formula;
    use std::time::Duration;

    fn verdict(n: usize) -> Verdict {
        Verdict {
            outcome: Outcome::Valid { trees_checked: n },
            engine: Engine::Automata,
            soundness: Soundness::Unbounded,
            elapsed: Duration::from_millis(1),
            cached: false,
            coalesced: false,
            degraded: false,
        }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            kind: QueryKind::Validity,
            h1: n,
            h2: n,
        }
    }

    fn subjects() -> Arc<OwnedQuery> {
        Arc::new(OwnedQuery::Validity(Formula::True))
    }

    const QUERY_FORMULA: Formula = Formula::True;

    fn query() -> Query<'static> {
        Query::Validity(&QUERY_FORMULA)
    }

    #[test]
    fn hit_returns_clone_marked_cached() {
        let cache = VerdictCache::new(8);
        cache.insert(key(0), subjects(), verdict(7));
        let got = cache.get(&key(0), &query()).expect("hit");
        assert!(got.cached);
        assert_eq!(got.trees_checked(), 7);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 0, 1));
    }

    #[test]
    fn eviction_is_fifo_and_capacity_bounded() {
        // A capacity this small uses one global-FIFO shard (striping it
        // into one-entry shards would let two hot keys evict each other).
        let cache = VerdictCache::new(2);
        cache.insert(key(1), subjects(), verdict(1));
        cache.insert(key(2), subjects(), verdict(2));
        cache.insert(key(3), subjects(), verdict(3));
        assert!(
            cache.get(&key(1), &query()).is_none(),
            "oldest entry evicted"
        );
        assert!(cache.get(&key(2), &query()).is_some());
        assert!(cache.get(&key(3), &query()).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn small_capacities_hold_their_full_hot_set_without_thrashing() {
        // Regression: with per-shard FIFO over one-entry shards, two hot
        // keys striping to the same shard would evict each other on every
        // insert and miss forever.  A small cache must behave like the
        // single global FIFO it replaces.
        let cache = VerdictCache::new(2);
        for round in 0..10 {
            cache.insert(key(0), subjects(), verdict(0));
            cache.insert(key(2), subjects(), verdict(2));
            assert!(
                cache.get(&key(0), &query()).is_some() && cache.get(&key(2), &query()).is_some(),
                "round {round}: both hot entries must stay resident"
            );
        }
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = VerdictCache::new(0);
        cache.insert(key(0), subjects(), verdict(1));
        assert!(!cache.enabled());
        assert!(cache.get(&key(0), &query()).is_none());
    }

    #[test]
    fn reinserting_an_existing_key_updates_in_place() {
        let cache = VerdictCache::new(2);
        cache.insert(key(1), subjects(), verdict(1));
        cache.insert(key(1), subjects(), verdict(9));
        assert_eq!(cache.get(&key(1), &query()).unwrap().trees_checked(), 9);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().collisions, 0);
    }

    fn bounded_verdict(n: usize, max_nodes: usize) -> Verdict {
        Verdict {
            soundness: Soundness::BoundedUpTo { max_nodes },
            ..verdict(n)
        }
    }

    #[test]
    fn bounded_entry_is_upgraded_to_unbounded_in_place() {
        let cache = VerdictCache::new(8);
        cache.insert(key(1), subjects(), bounded_verdict(5, 4));
        cache.insert(key(1), subjects(), verdict(0));
        let got = cache.get(&key(1), &query()).expect("hit");
        assert_eq!(got.soundness, Soundness::Unbounded, "entry upgraded");
        assert_eq!(got.trees_checked(), 0, "upgraded verdict replaces payload");
        assert_eq!(cache.stats().entries, 1, "upgrade is in place, not a copy");
        assert_eq!(cache.stats().collisions, 0);
    }

    #[test]
    fn unbounded_entry_is_never_downgraded() {
        let cache = VerdictCache::new(8);
        cache.insert(key(1), subjects(), verdict(0));
        cache.insert(key(1), subjects(), bounded_verdict(9, 4));
        let got = cache.get(&key(1), &query()).expect("hit");
        assert_eq!(got.soundness, Soundness::Unbounded, "resident kept");
        assert_eq!(got.trees_checked(), 0, "bounded payload not stored");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn narrower_bounded_verdicts_do_not_replace_wider_ones() {
        let cache = VerdictCache::new(8);
        cache.insert(key(1), subjects(), bounded_verdict(9, 6));
        cache.insert(key(1), subjects(), bounded_verdict(3, 4));
        let got = cache.get(&key(1), &query()).expect("hit");
        assert_eq!(got.soundness, Soundness::BoundedUpTo { max_nodes: 6 });
        assert_eq!(got.trees_checked(), 9);
        // An equal-or-wider bound is a refresh and does replace.
        cache.insert(key(1), subjects(), bounded_verdict(11, 6));
        assert_eq!(cache.get(&key(1), &query()).unwrap().trees_checked(), 11);
    }

    #[test]
    fn hits_plus_misses_equals_lookups_under_concurrent_upgrade() {
        // Many threads race gets against bounded inserts and unbounded
        // upgrades of the same keys.  The accounting invariant must hold
        // exactly: every lookup is one hit or one miss, never both or
        // neither, even while entries are being upgraded under it.
        let cache = Arc::new(VerdictCache::new(8));
        let threads = 8;
        let lookups_per_thread = 200;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..lookups_per_thread {
                        let k = key((i % 4) as u64);
                        if t % 2 == 0 {
                            cache.insert(k, subjects(), bounded_verdict(i, 4));
                        } else {
                            cache.insert(k, subjects(), verdict(0));
                        }
                        let _ = cache.get(&k, &query());
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            (threads * lookups_per_thread) as u64,
            "hits + misses must equal lookups exactly"
        );
        assert_eq!(stats.collisions, 0);
        // Every surviving entry is at the top of the upgrade lattice: once
        // an unbounded verdict lands, no bounded racer can undo it.
        for n in 0..4 {
            let got = cache.get(&key(n), &query()).expect("entry resident");
            assert_eq!(got.soundness, Soundness::Unbounded, "key {n} upgraded");
        }
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = VerdictCache::new(2);
        cache.insert(key(1), subjects(), verdict(1));
        let _ = cache.get(&key(1), &query());
        cache.clear();
        assert!(cache.get(&key(1), &query()).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn key_collision_with_different_subjects_is_a_miss() {
        let cache = VerdictCache::new(2);
        cache.insert(
            key(1),
            Arc::new(OwnedQuery::Validity(Formula::False)),
            verdict(1),
        );
        // Same key, different stored subjects: the equality guard must
        // refuse to serve another query's verdict.  The lookup is a plain
        // miss (every lookup is exactly one hit or miss); the collision is
        // counted at the blocked insert, not here.
        assert!(cache.get(&key(1), &query()).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().collisions, 0);
    }

    #[test]
    fn key_collision_on_insert_keeps_the_resident_entry() {
        // Regression: two queries whose subjects differ but whose 128-bit
        // keys collide must not evict each other forever.  The resident
        // entry survives, its verdict is still served, and the event is
        // counted in `collisions` instead of silently thrashing.
        let cache = VerdictCache::new(8);
        cache.insert(key(1), subjects(), verdict(7));
        cache.insert(
            key(1),
            Arc::new(OwnedQuery::Validity(Formula::False)),
            verdict(2),
        );
        let resident = cache.get(&key(1), &query()).expect("resident entry kept");
        assert_eq!(resident.trees_checked(), 7, "resident verdict unchanged");
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().collisions, 1);
    }

    #[test]
    fn peek_does_not_touch_the_counters() {
        let cache = VerdictCache::new(8);
        cache.insert(key(1), subjects(), verdict(3));
        assert!(cache.peek(&key(1), &query()).is_some());
        assert!(cache.peek(&key(2), &query()).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.collisions), (0, 0, 0));
    }

    #[test]
    fn shards_hold_the_full_capacity_in_aggregate() {
        let cache = VerdictCache::new(64);
        for n in 0..64 {
            cache.insert(key(n), subjects(), verdict(n as usize));
        }
        assert_eq!(cache.stats().entries, 64);
        for n in 0..64 {
            assert!(cache.get(&key(n), &query()).is_some(), "key {n} resident");
        }
    }
}
