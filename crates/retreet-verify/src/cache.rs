//! The verdict cache: program-hash-keyed memoization of verdicts.
//!
//! In the ROADMAP's serving scenario the same legality questions are asked
//! over and over (every user fusing the same two library traversals asks
//! the same `Conflict⟦P, P′⟧` query).  Queries are keyed by the canonical
//! text of their subjects plus the option fingerprint, so a repeated query
//! is O(key construction) instead of O(model enumeration) — and the cached
//! verdict carries the *same witness* the original run produced.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::verdict::Verdict;

/// Cache hit/miss counters (monotonic over the verifier's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run the portfolio.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A bounded FIFO-evicting verdict store, safe to share across threads.
pub(crate) struct VerdictCache {
    capacity: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct CacheState {
    map: HashMap<String, Verdict>,
    insertion_order: VecDeque<String>,
}

impl VerdictCache {
    /// Creates a cache holding at most `capacity` verdicts (0 disables
    /// caching entirely).
    pub(crate) fn new(capacity: usize) -> Self {
        VerdictCache {
            capacity,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                insertion_order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// True when the cache can store anything at all; a disabled cache lets
    /// the verifier skip key construction entirely.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up a verdict; counts a hit or miss.  The returned clone is
    /// marked `cached` but keeps the original engine, soundness, witness and
    /// timing.
    pub(crate) fn get(&self, key: &str) -> Option<Verdict> {
        let state = self.state.lock().expect("verdict cache poisoned");
        match state.map.get(key) {
            Some(verdict) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut verdict = verdict.clone();
                verdict.cached = true;
                Some(verdict)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a verdict, evicting the oldest entry when full.
    pub(crate) fn insert(&self, key: String, verdict: Verdict) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().expect("verdict cache poisoned");
        if !state.map.contains_key(&key) {
            if state.map.len() >= self.capacity {
                if let Some(oldest) = state.insertion_order.pop_front() {
                    state.map.remove(&oldest);
                }
            }
            state.insertion_order.push_back(key.clone());
        }
        state.map.insert(key, verdict);
    }

    /// Current hit/miss/entry counters.
    pub(crate) fn stats(&self) -> CacheStats {
        let entries = self.state.lock().expect("verdict cache poisoned").map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every stored verdict (counters are preserved).
    pub(crate) fn clear(&self) {
        let mut state = self.state.lock().expect("verdict cache poisoned");
        state.map.clear();
        state.insertion_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::verdict::{Outcome, Soundness};
    use std::time::Duration;

    fn verdict(n: usize) -> Verdict {
        Verdict {
            outcome: Outcome::Valid { trees_checked: n },
            engine: Engine::Automata,
            soundness: Soundness::Unbounded,
            elapsed: Duration::from_millis(1),
            cached: false,
        }
    }

    #[test]
    fn hit_returns_clone_marked_cached() {
        let cache = VerdictCache::new(8);
        cache.insert("k".into(), verdict(7));
        let got = cache.get("k").expect("hit");
        assert!(got.cached);
        assert_eq!(got.trees_checked(), 7);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 0, 1));
    }

    #[test]
    fn eviction_is_fifo_and_capacity_bounded() {
        let cache = VerdictCache::new(2);
        cache.insert("a".into(), verdict(1));
        cache.insert("b".into(), verdict(2));
        cache.insert("c".into(), verdict(3));
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = VerdictCache::new(0);
        cache.insert("k".into(), verdict(1));
        assert!(cache.get("k").is_none());
    }

    #[test]
    fn reinserting_an_existing_key_updates_in_place() {
        let cache = VerdictCache::new(2);
        cache.insert("a".into(), verdict(1));
        cache.insert("a".into(), verdict(9));
        assert_eq!(cache.get("a").unwrap().trees_checked(), 9);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = VerdictCache::new(2);
        cache.insert("a".into(), verdict(1));
        let _ = cache.get("a");
        cache.clear();
        assert!(cache.get("a").is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 0);
    }
}
