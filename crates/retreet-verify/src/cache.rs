//! The verdict cache: program-hash-keyed memoization of verdicts.
//!
//! In the ROADMAP's serving scenario the same legality questions are asked
//! over and over (every user fusing the same two library traversals asks
//! the same `Conflict⟦P, P′⟧` query).  Queries are keyed by a fixed-size
//! structural hash of their subjects plus the option set ([`CacheKey`],
//! computed once per query — no per-lookup re-canonicalization of program
//! text), so a repeated query is O(hashing the AST) instead of O(model
//! enumeration) — and the cached verdict carries the *same witness* the
//! original run produced.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::query::{OwnedQuery, Query, QueryKind};
use crate::verdict::Verdict;

/// A verdict-cache key: the query kind plus a 128-bit structural hash of
/// the query subjects and the verifier's option set (see
/// [`crate::Query::cache_key`]).  Fixed-size and `Copy`, so lookups hash a
/// few machine words instead of the canonical program text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) kind: QueryKind,
    pub(crate) h1: u64,
    pub(crate) h2: u64,
}

/// Cache hit/miss counters (monotonic over the verifier's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run the portfolio.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A bounded FIFO-evicting verdict store, safe to share across threads.
pub(crate) struct VerdictCache {
    capacity: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct CacheState {
    map: HashMap<CacheKey, (OwnedQuery, Verdict)>,
    insertion_order: VecDeque<CacheKey>,
}

impl VerdictCache {
    /// Creates a cache holding at most `capacity` verdicts (0 disables
    /// caching entirely).
    pub(crate) fn new(capacity: usize) -> Self {
        VerdictCache {
            capacity,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                insertion_order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// True when the cache can store anything at all; a disabled cache lets
    /// the verifier skip key construction entirely.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up a verdict; counts a hit or miss.  A key hit is only
    /// trusted after the stored subjects compare equal to `query` (the
    /// 128-bit hash key makes collisions astronomically unlikely, but a
    /// verifier must not return another query's verdict even then); a
    /// mismatch counts as a miss and the colliding entry is left in place.
    /// The returned clone is marked `cached` but keeps the original engine,
    /// soundness, witness and timing.
    pub(crate) fn get(&self, key: &CacheKey, query: &Query<'_>) -> Option<Verdict> {
        let state = self.state.lock().expect("verdict cache poisoned");
        match state.map.get(key) {
            Some((subjects, verdict)) if subjects.matches(query) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut verdict = verdict.clone();
                verdict.cached = true;
                Some(verdict)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a verdict with its owning subjects, evicting the oldest
    /// entry when full.
    pub(crate) fn insert(&self, key: CacheKey, subjects: OwnedQuery, verdict: Verdict) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().expect("verdict cache poisoned");
        if !state.map.contains_key(&key) {
            if state.map.len() >= self.capacity {
                if let Some(oldest) = state.insertion_order.pop_front() {
                    state.map.remove(&oldest);
                }
            }
            state.insertion_order.push_back(key);
        }
        state.map.insert(key, (subjects, verdict));
    }

    /// Current hit/miss/entry counters.
    pub(crate) fn stats(&self) -> CacheStats {
        let entries = self.state.lock().expect("verdict cache poisoned").map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every stored verdict (counters are preserved).
    pub(crate) fn clear(&self) {
        let mut state = self.state.lock().expect("verdict cache poisoned");
        state.map.clear();
        state.insertion_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::verdict::{Outcome, Soundness};
    use retreet_mso::formula::Formula;
    use std::time::Duration;

    fn verdict(n: usize) -> Verdict {
        Verdict {
            outcome: Outcome::Valid { trees_checked: n },
            engine: Engine::Automata,
            soundness: Soundness::Unbounded,
            elapsed: Duration::from_millis(1),
            cached: false,
        }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            kind: QueryKind::Validity,
            h1: n,
            h2: n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn subjects() -> OwnedQuery {
        OwnedQuery::Validity(Formula::True)
    }

    const QUERY_FORMULA: Formula = Formula::True;

    fn query() -> Query<'static> {
        Query::Validity(&QUERY_FORMULA)
    }

    #[test]
    fn hit_returns_clone_marked_cached() {
        let cache = VerdictCache::new(8);
        cache.insert(key(0), subjects(), verdict(7));
        let got = cache.get(&key(0), &query()).expect("hit");
        assert!(got.cached);
        assert_eq!(got.trees_checked(), 7);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 0, 1));
    }

    #[test]
    fn eviction_is_fifo_and_capacity_bounded() {
        let cache = VerdictCache::new(2);
        cache.insert(key(1), subjects(), verdict(1));
        cache.insert(key(2), subjects(), verdict(2));
        cache.insert(key(3), subjects(), verdict(3));
        assert!(
            cache.get(&key(1), &query()).is_none(),
            "oldest entry evicted"
        );
        assert!(cache.get(&key(2), &query()).is_some());
        assert!(cache.get(&key(3), &query()).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = VerdictCache::new(0);
        cache.insert(key(0), subjects(), verdict(1));
        assert!(cache.get(&key(0), &query()).is_none());
    }

    #[test]
    fn reinserting_an_existing_key_updates_in_place() {
        let cache = VerdictCache::new(2);
        cache.insert(key(1), subjects(), verdict(1));
        cache.insert(key(1), subjects(), verdict(9));
        assert_eq!(cache.get(&key(1), &query()).unwrap().trees_checked(), 9);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = VerdictCache::new(2);
        cache.insert(key(1), subjects(), verdict(1));
        let _ = cache.get(&key(1), &query());
        cache.clear();
        assert!(cache.get(&key(1), &query()).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn key_collision_with_different_subjects_is_a_miss() {
        let cache = VerdictCache::new(2);
        cache.insert(key(1), OwnedQuery::Validity(Formula::False), verdict(1));
        // Same key, different stored subjects: the equality guard must
        // refuse to serve another query's verdict.
        assert!(cache.get(&key(1), &query()).is_none());
        assert_eq!(cache.stats().misses, 1);
    }
}
