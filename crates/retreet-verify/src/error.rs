//! The typed error hierarchy of the façade.
//!
//! Before this crate existed, every entry point reported failures as ad-hoc
//! `String`s (`TransformError::InvalidProgram(String)`, panics in the MSO
//! compiler, …).  [`VerifyError`] replaces those with a structured hierarchy
//! that callers can match on, while still rendering a readable message.

use std::fmt;

use crate::engine::Engine;
use crate::query::QueryKind;

/// Which program of a query an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramRole {
    /// The single program of a [`crate::Query::DataRace`] query.
    Queried,
    /// The original program of an equivalence query.
    Original,
    /// The transformed program of an equivalence query.
    Transformed,
}

impl fmt::Display for ProgramRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramRole::Queried => write!(f, "queried program"),
            ProgramRole::Original => write!(f, "original program"),
            ProgramRole::Transformed => write!(f, "transformed program"),
        }
    }
}

/// Why an engine declined to answer a query (not an error: other portfolio
/// members may still answer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSkip {
    /// The engine that declined.
    pub engine: Engine,
    /// Why it declined (fragment restriction, unsupported query kind, …).
    pub reason: String,
}

impl fmt::Display for EngineSkip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.engine, self.reason)
    }
}

/// The typed error hierarchy of the verification façade.
#[derive(Debug, Clone)]
pub enum VerifyError {
    /// A program handed to the query is not a well-formed Retreet program.
    InvalidProgram {
        /// Which program of the query is malformed.
        role: ProgramRole,
        /// The first validation error, rendered.
        message: String,
    },
    /// No engine in the configured portfolio could answer the query; carries
    /// one skip report per engine that was consulted (an MSO-compiler
    /// fragment rejection surfaces here as the automata engine's skip).
    NoApplicableEngine {
        /// The kind of query that went unanswered.
        query: QueryKind,
        /// Why each consulted engine declined.
        skipped: Vec<EngineSkip>,
    },
    /// The portfolio ran but every engine worker terminated without
    /// producing a verdict (every applicable engine panicked — each panic
    /// is isolated to its slot by `catch_unwind`, so one bad engine cannot
    /// take the others down, but when *none* survives this is the honest
    /// answer).
    PortfolioFailed {
        /// The kind of query that was being answered.
        query: QueryKind,
    },
    /// The per-query deadline expired before any engine produced a verdict.
    /// Fail-closed: no partial or truncated answer is ever synthesized —
    /// when at least one engine *did* finish in budget, the portfolio
    /// returns its verdict marked [`crate::Verdict::degraded`] instead of
    /// this error.
    DeadlineExceeded {
        /// The kind of query whose budget expired.
        query: QueryKind,
    },
    /// The persistent verdict store could not be opened (I/O failure, or
    /// corruption under the fail-open policy).
    StoreFailed {
        /// The underlying error, rendered.
        message: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::InvalidProgram { role, message } => {
                write!(f, "invalid {role}: {message}")
            }
            VerifyError::NoApplicableEngine { query, skipped } => {
                write!(f, "no engine could answer the {query} query")?;
                for skip in skipped {
                    write!(f, "; {skip}")?;
                }
                Ok(())
            }
            VerifyError::PortfolioFailed { query } => {
                write!(f, "every portfolio worker failed on the {query} query")
            }
            VerifyError::DeadlineExceeded { query } => {
                write!(
                    f,
                    "deadline exceeded before any engine answered the {query} query"
                )
            }
            VerifyError::StoreFailed { message } => {
                write!(f, "verdict store unavailable: {message}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}
