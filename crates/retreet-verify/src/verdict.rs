//! The unified verdict type: one structured answer shape for all three
//! query kinds, carrying the witness, the engine that produced it, the
//! soundness caveat and the wall-clock time.

use std::fmt;
use std::time::Duration;

use retreet_analysis::equiv::EquivCounterExample;
use retreet_analysis::race::RaceWitness;
use retreet_mso::tree::LabeledTree;

use crate::engine::Engine;

/// How far a verdict's guarantee extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Soundness {
    /// The verdict holds on *every* finite binary tree (the tree-automata
    /// engine's answers, playing MONA's role).
    Unbounded,
    /// The verdict was established by exhausting every model up to a node
    /// bound — the reproduction's bounded substitute for MONA.  Negative
    /// verdicts (a race, a counterexample) are definitive either way; only
    /// positive verdicts carry this caveat.
    BoundedUpTo {
        /// The exhausted node bound.
        max_nodes: usize,
    },
}

impl Soundness {
    /// True when a verdict with this soundness is at least as strong as one
    /// with `other`: an unbounded answer covers everything, a bounded answer
    /// covers bounded answers with a smaller-or-equal exhausted bound, and a
    /// bounded answer never covers an unbounded one.  The verdict cache uses
    /// this to decide whether a fresh verdict may replace a resident one.
    pub fn covers(&self, other: &Soundness) -> bool {
        match (self, other) {
            (Soundness::Unbounded, _) => true,
            (Soundness::BoundedUpTo { .. }, Soundness::Unbounded) => false,
            (
                Soundness::BoundedUpTo { max_nodes: mine },
                Soundness::BoundedUpTo { max_nodes: theirs },
            ) => mine >= theirs,
        }
    }
}

impl fmt::Display for Soundness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Soundness::Unbounded => write!(f, "unbounded"),
            Soundness::BoundedUpTo { max_nodes } => {
                write!(f, "bounded (all models up to {max_nodes} nodes)")
            }
        }
    }
}

/// The answer proper, with its structured witness.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// No data race on any enumerated model.
    RaceFree {
        /// Trees enumerated.
        trees_checked: usize,
        /// Configurations (or trace iterations) examined.
        configurations: usize,
    },
    /// A data race, with its concrete witness.
    Race(Box<RaceWitness>),
    /// The two programs agree on every tested model.
    Equivalent {
        /// (tree, valuation) models tested.
        trees_checked: usize,
    },
    /// The programs disagree on the attached counterexample.
    NotEquivalent(Box<EquivCounterExample>),
    /// The formula holds (see the verdict's [`Soundness`] for how far).
    Valid {
        /// Models checked (0 for the unbounded automata engine, whose
        /// answer does not come from enumeration).
        trees_checked: usize,
    },
    /// The formula fails; both engines attach a falsifying tree when one
    /// can be extracted (the automata engine reads it off the nonempty
    /// complement automaton).
    Invalid(Option<Box<LabeledTree>>),
}

impl Outcome {
    /// True for the positive verdicts (`RaceFree`, `Equivalent`, `Valid`).
    pub fn is_positive(&self) -> bool {
        matches!(
            self,
            Outcome::RaceFree { .. } | Outcome::Equivalent { .. } | Outcome::Valid { .. }
        )
    }
}

/// A unified verdict: outcome, engine provenance, soundness and timing.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The structured answer.
    pub outcome: Outcome,
    /// Which portfolio engine produced the answer.
    pub engine: Engine,
    /// How far the answer's guarantee extends.
    pub soundness: Soundness,
    /// Wall-clock time of the winning engine (preserved across cache hits).
    pub elapsed: Duration,
    /// True when this verdict was served from the verdict cache.
    pub cached: bool,
    /// True when this verdict was *coalesced*: the query arrived while an
    /// identical query was already in flight, waited on that single engine
    /// run, and received the same witness — without racing the portfolio a
    /// second time.
    pub coalesced: bool,
    /// True when this verdict is *deadline-degraded*: a more authoritative
    /// engine was still running when the per-query deadline expired, so
    /// this is the best verdict that resolved in budget rather than the
    /// portfolio's authoritative answer.  The verdict is still honest — its
    /// [`Soundness`] states exactly how far it extends — but it is never
    /// cached or persisted, so a retry after load subsides gets the full
    /// portfolio again.
    pub degraded: bool,
}

impl Verdict {
    /// True for the positive verdicts (`RaceFree`, `Equivalent`, `Valid`).
    pub fn is_positive(&self) -> bool {
        self.outcome.is_positive()
    }

    /// True when the outcome is `RaceFree`.
    pub fn is_race_free(&self) -> bool {
        matches!(self.outcome, Outcome::RaceFree { .. })
    }

    /// True when the outcome is `Equivalent`.
    pub fn is_equivalent(&self) -> bool {
        matches!(self.outcome, Outcome::Equivalent { .. })
    }

    /// True when the outcome is `Valid`.
    pub fn is_valid(&self) -> bool {
        matches!(self.outcome, Outcome::Valid { .. })
    }

    /// The race witness, when the outcome is `Race`.
    pub fn race_witness(&self) -> Option<&RaceWitness> {
        match &self.outcome {
            Outcome::Race(witness) => Some(witness),
            _ => None,
        }
    }

    /// The equivalence counterexample, when the outcome is `NotEquivalent`.
    pub fn counterexample(&self) -> Option<&EquivCounterExample> {
        match &self.outcome {
            Outcome::NotEquivalent(ce) => Some(ce),
            _ => None,
        }
    }

    /// The falsifying tree, when the outcome is `Invalid` with a model.
    pub fn invalidity_model(&self) -> Option<&LabeledTree> {
        match &self.outcome {
            Outcome::Invalid(Some(tree)) => Some(tree),
            _ => None,
        }
    }

    /// How many models the verdict rests on (0 for unbounded answers and
    /// negative verdicts, which rest on a single witness).
    pub fn trees_checked(&self) -> usize {
        match &self.outcome {
            Outcome::RaceFree { trees_checked, .. }
            | Outcome::Equivalent { trees_checked }
            | Outcome::Valid { trees_checked } => *trees_checked,
            _ => 0,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let answer = match &self.outcome {
            Outcome::RaceFree {
                trees_checked,
                configurations,
            } => format!("race-free ({trees_checked} trees, {configurations} configurations)"),
            Outcome::Race(witness) => {
                format!("RACE on {}.{}", witness.node, witness.field)
            }
            Outcome::Equivalent { trees_checked } => {
                format!("equivalent ({trees_checked} models)")
            }
            Outcome::NotEquivalent(ce) => format!("NOT equivalent: {:?}", ce.disagreement),
            Outcome::Valid { .. } => String::from("valid"),
            Outcome::Invalid(_) => String::from("INVALID"),
        };
        write!(
            f,
            "{answer} [engine: {}, {}{}{}{}, {:?}]",
            self.engine,
            self.soundness,
            if self.cached { ", cached" } else { "" },
            if self.coalesced { ", coalesced" } else { "" },
            if self.degraded { ", degraded" } else { "" },
            self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_the_upgrade_lattice_order() {
        let unbounded = Soundness::Unbounded;
        let narrow = Soundness::BoundedUpTo { max_nodes: 3 };
        let wide = Soundness::BoundedUpTo { max_nodes: 7 };
        // Unbounded is the top element.
        assert!(unbounded.covers(&unbounded));
        assert!(unbounded.covers(&narrow));
        assert!(unbounded.covers(&wide));
        // A bounded verdict never covers an unbounded one.
        assert!(!narrow.covers(&unbounded));
        assert!(!wide.covers(&unbounded));
        // Among bounded verdicts, covering follows the node bound, and
        // equal bounds cover each other (a refresh is allowed).
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(narrow.covers(&narrow));
    }

    #[test]
    fn soundness_renders_the_guarantee() {
        assert_eq!(Soundness::Unbounded.to_string(), "unbounded");
        assert_eq!(
            Soundness::BoundedUpTo { max_nodes: 5 }.to_string(),
            "bounded (all models up to 5 nodes)"
        );
    }
}
