//! # retreet-verify — the unified verification façade
//!
//! The paper answers three kinds of dependence queries — data race
//! (Theorem 2), transformation conflict/equivalence (Theorem 3), and the
//! MSO validity questions both reduce to — through one MONA-backed
//! pipeline.  Earlier revisions of this reproduction exposed them as three
//! disconnected per-crate entry points, each with its own options struct and
//! verdict shape.  This crate is the single coherent entry point that
//! replaces them:
//!
//! * [`Verifier`] — built once via [`Verifier::builder`], holds the analysis
//!   budget, the engine portfolio and the verdict cache;
//! * [`Query`] — the typed query surface: [`Query::DataRace`],
//!   [`Query::Equivalence`], [`Query::Validity`];
//! * [`Verdict`] — the unified answer: a structured [`Outcome`] (with the
//!   concrete [`retreet_analysis::race::RaceWitness`] /
//!   [`retreet_analysis::equiv::EquivCounterExample`] / falsifying-tree
//!   witnesses), engine provenance, a [`Soundness`] caveat for bounded-only
//!   answers, and timing;
//! * [`VerifyError`] — the typed error hierarchy replacing the ad-hoc
//!   `String` errors of the old entry points.
//!
//! # The portfolio
//!
//! Each query kind is answered by every applicable engine in the portfolio
//! (see [`Engine`]): configurations and traces for races, traces for
//! equivalence, tree automata (unbounded, where the fragment allows) and
//! bounded enumeration for validity.  With [`VerifierBuilder::parallel`]
//! enabled, the applicable engines race each other on worker threads and
//! the first definitive verdict wins — the portfolio style of TreeFuser's
//! sound fusion checking, and the reproduction's answer to the paper's
//! MONA-vs-bounded substitution argument.
//!
//! # Example
//!
//! ```
//! use retreet_verify::{Query, Verifier};
//! use retreet_lang::corpus;
//!
//! let verifier = Verifier::builder().max_nodes(3).valuations(1).build();
//!
//! // Theorem 2: Odd(n) ‖ Even(n) is data-race-free.
//! let verdict = verifier
//!     .verify(Query::DataRace(&corpus::size_counting_parallel()))
//!     .unwrap();
//! assert!(verdict.is_race_free());
//!
//! // Theorem 3: the Fig. 6a fusion is correct.
//! let verdict = verifier
//!     .verify(Query::Equivalence(
//!         &corpus::size_counting_sequential(),
//!         &corpus::size_counting_fused(),
//!     ))
//!     .unwrap();
//! assert!(verdict.is_equivalent());
//!
//! // Repeated queries are served from the verdict cache.
//! let again = verifier
//!     .verify(Query::DataRace(&corpus::size_counting_parallel()))
//!     .unwrap();
//! assert!(again.cached);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod error;
mod query;
mod verdict;

pub use cache::CacheStats;
pub use engine::{Engine, EngineConfig};
pub use error::{EngineSkip, ProgramRole, VerifyError};
pub use query::{Query, QueryKind};
pub use verdict::{Outcome, Soundness, Verdict};

use std::sync::mpsc;
use std::sync::Arc;

use retreet_analysis::configs::EnumOptions;
use retreet_lang::ast::Program;
use retreet_lang::validate::validate;
use retreet_mso::formula::Formula;

use cache::VerdictCache;
use engine::run_engine;

/// Builder for [`Verifier`]; obtain one with [`Verifier::builder`].
///
/// ```
/// use retreet_verify::{Engine, Verifier};
///
/// let verifier = Verifier::builder()
///     .max_nodes(4)
///     .valuations(2)
///     .engines([Engine::Configuration, Engine::Trace])
///     .parallel(true)
///     .cache_capacity(1024)
///     .build();
/// assert_eq!(verifier.engines().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct VerifierBuilder {
    config: EngineConfig,
    engines: Vec<Engine>,
    parallel: bool,
    cache_capacity: usize,
}

impl Default for VerifierBuilder {
    fn default() -> Self {
        VerifierBuilder {
            config: EngineConfig {
                race_nodes: 4,
                equiv_nodes: 5,
                validity_nodes: 5,
                valuations: 2,
                check_dependence_order: true,
                enumeration: EnumOptions::default(),
            },
            engines: Engine::ALL.to_vec(),
            parallel: false,
            cache_capacity: 4096,
        }
    }
}

impl VerifierBuilder {
    /// Sets one tree-size bound for *all* query kinds (race, equivalence
    /// and bounded validity).  Use [`Self::race_nodes`] /
    /// [`Self::equiv_nodes`] / [`Self::validity_nodes`] for per-kind bounds.
    pub fn max_nodes(mut self, nodes: usize) -> Self {
        self.config.race_nodes = nodes;
        self.config.equiv_nodes = nodes;
        self.config.validity_nodes = nodes;
        self
    }

    /// Largest tree (in nodes) enumerated for data-race queries.
    pub fn race_nodes(mut self, nodes: usize) -> Self {
        self.config.race_nodes = nodes;
        self
    }

    /// Largest tree (in nodes) enumerated for equivalence queries.
    pub fn equiv_nodes(mut self, nodes: usize) -> Self {
        self.config.equiv_nodes = nodes;
        self
    }

    /// Largest tree (in nodes) enumerated for bounded validity queries.
    pub fn validity_nodes(mut self, nodes: usize) -> Self {
        self.config.validity_nodes = nodes;
        self
    }

    /// Deterministic field valuations per tree shape.
    pub fn valuations(mut self, valuations: usize) -> Self {
        self.config.valuations = valuations;
        self
    }

    /// Enforce the Theorem 3 dependence-order condition in equivalence
    /// queries (on by default; disable to compare observable behaviour
    /// only).
    pub fn check_dependence_order(mut self, check: bool) -> Self {
        self.config.check_dependence_order = check;
        self
    }

    /// Configuration-enumeration limits (stack depth / configuration caps).
    pub fn enumeration(mut self, options: EnumOptions) -> Self {
        self.config.enumeration = options;
        self
    }

    /// Restricts the portfolio to the given engines, in dispatch-preference
    /// order.  Duplicates are dropped; an empty list restores the default
    /// full portfolio.
    pub fn engines(mut self, engines: impl IntoIterator<Item = Engine>) -> Self {
        let mut chosen: Vec<Engine> = Vec::new();
        for engine in engines {
            if !chosen.contains(&engine) {
                chosen.push(engine);
            }
        }
        self.engines = if chosen.is_empty() {
            Engine::ALL.to_vec()
        } else {
            chosen
        };
        self
    }

    /// Race the applicable engines on worker threads, first definitive
    /// verdict wins (off by default: engines run in dispatch order).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Maximum number of cached verdicts (0 disables the cache).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Finalizes the verifier.
    pub fn build(self) -> Verifier {
        Verifier {
            cache: VerdictCache::new(self.cache_capacity),
            config: self.config,
            engines: self.engines,
            parallel: self.parallel,
        }
    }
}

/// The unified verification façade: one `verify` call for all three query
/// kinds, backed by an engine portfolio and a verdict cache.  See the crate
/// docs for the full story.
pub struct Verifier {
    config: EngineConfig,
    engines: Vec<Engine>,
    parallel: bool,
    cache: VerdictCache,
}

impl Verifier {
    /// Starts building a verifier.
    pub fn builder() -> VerifierBuilder {
        VerifierBuilder::default()
    }

    /// A verifier with the default budget, full portfolio and cache.
    pub fn with_defaults() -> Self {
        VerifierBuilder::default().build()
    }

    /// The engines in this verifier's portfolio, in dispatch order.
    pub fn engines(&self) -> &[Engine] {
        &self.engines
    }

    /// The resolved option set engine runs receive.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Hit/miss/entry counters of the verdict cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached verdict (counters are preserved).
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    /// Answers a query: validates its subjects, consults the verdict cache,
    /// and otherwise dispatches to the portfolio.  This is *the* entry
    /// point; [`Self::check_data_race`], [`Self::check_equivalence`] and
    /// [`Self::check_validity`] are thin conveniences over it.
    pub fn verify(&self, query: Query<'_>) -> Result<Verdict, VerifyError> {
        self.validate_subjects(&query)?;
        // The cache key is a fixed-size structural hash of the subjects and
        // options, computed once here at query construction (no per-lookup
        // re-canonicalization of program text); skip it (and the cache
        // mutex) entirely when the cache is disabled.
        let key = self.cache.enabled().then(|| query.cache_key(&self.config));
        if let Some(key) = &key {
            if let Some(cached) = self.cache.get(key, &query) {
                return Ok(cached);
            }
        }
        let applicable: Vec<Engine> = self
            .engines
            .iter()
            .copied()
            .filter(|engine| engine.supports(query.kind()))
            .collect();
        if applicable.is_empty() {
            return Err(VerifyError::NoApplicableEngine {
                query: query.kind(),
                skipped: Vec::new(),
            });
        }
        let verdict = if self.parallel && applicable.len() > 1 {
            self.run_portfolio_parallel(&query, &applicable)?
        } else {
            self.run_portfolio_sequential(&query, &applicable)?
        };
        if let Some(key) = key {
            self.cache
                .insert(key, query.to_owned_query(), verdict.clone());
        }
        Ok(verdict)
    }

    /// Convenience: `verify(Query::DataRace(program))`.
    pub fn check_data_race(&self, program: &Program) -> Result<Verdict, VerifyError> {
        self.verify(Query::DataRace(program))
    }

    /// Convenience: `verify(Query::Equivalence(original, transformed))`.
    pub fn check_equivalence(
        &self,
        original: &Program,
        transformed: &Program,
    ) -> Result<Verdict, VerifyError> {
        self.verify(Query::Equivalence(original, transformed))
    }

    /// Convenience: `verify(Query::Validity(formula))`.
    pub fn check_validity(&self, formula: &Formula) -> Result<Verdict, VerifyError> {
        self.verify(Query::Validity(formula))
    }

    /// Runs a *single named engine* on a query, bypassing cache and
    /// portfolio — the hook differential tests and the agreement test suite
    /// use to compare engines against each other.
    pub fn verify_with_engine(
        &self,
        engine: Engine,
        query: Query<'_>,
    ) -> Result<Verdict, VerifyError> {
        self.validate_subjects(&query)?;
        let (answer, elapsed) = run_engine(engine, &query, &self.config);
        match answer {
            Ok((outcome, soundness)) => Ok(Verdict {
                outcome,
                engine,
                soundness,
                elapsed,
                cached: false,
            }),
            Err(skip) => Err(VerifyError::NoApplicableEngine {
                query: query.kind(),
                skipped: vec![skip],
            }),
        }
    }

    fn validate_subjects(&self, query: &Query<'_>) -> Result<(), VerifyError> {
        let check = |role: ProgramRole, program: &Program| -> Result<(), VerifyError> {
            let errors = validate(program);
            match errors.first() {
                Some(first) => Err(VerifyError::InvalidProgram {
                    role,
                    message: first.to_string(),
                }),
                None => Ok(()),
            }
        };
        match query {
            Query::DataRace(program) => check(ProgramRole::Queried, program),
            Query::Equivalence(original, transformed) => {
                check(ProgramRole::Original, original)?;
                check(ProgramRole::Transformed, transformed)
            }
            Query::Validity(_) => Ok(()),
        }
    }

    /// Engines run one after the other in dispatch order; the first one
    /// that produces an answer wins.
    fn run_portfolio_sequential(
        &self,
        query: &Query<'_>,
        engines: &[Engine],
    ) -> Result<Verdict, VerifyError> {
        let mut skipped = Vec::new();
        for &engine in engines {
            let (answer, elapsed) = run_engine(engine, query, &self.config);
            match answer {
                Ok((outcome, soundness)) => {
                    return Ok(Verdict {
                        outcome,
                        engine,
                        soundness,
                        elapsed,
                        cached: false,
                    })
                }
                Err(skip) => skipped.push(skip),
            }
        }
        Err(VerifyError::NoApplicableEngine {
            query: query.kind(),
            skipped,
        })
    }

    /// Engines race on worker threads; the first *definitive* verdict wins.
    /// An answer with [`Soundness::Unbounded`] (a concrete witness, or the
    /// automata engine's unbounded yes/no) wins immediately.  A
    /// bounded-positive answer only wins once no still-running engine could
    /// strictly strengthen it to an unbounded one — otherwise a fast bounded
    /// enumerator could pre-empt (and cache over) the automata engine's
    /// definitive verdict.  Losing engines keep running detached until they
    /// finish on their own (they cannot be cancelled), but the caller gets
    /// the winner as soon as it is decidable.
    fn run_portfolio_parallel(
        &self,
        query: &Query<'_>,
        engines: &[Engine],
    ) -> Result<Verdict, VerifyError> {
        let owned = Arc::new(query.to_owned_query());
        let config = Arc::new(self.config.clone());
        let (sender, receiver) = mpsc::channel();
        for &engine in engines {
            let owned = Arc::clone(&owned);
            let config = Arc::clone(&config);
            let sender = sender.clone();
            rayon::spawn(move || {
                let (answer, elapsed) = run_engine(engine, &owned.as_query(), &config);
                // The receiver hangs up once a winner is picked; losing
                // sends fail silently, which is exactly what we want.
                let _ = sender.send((engine, answer, elapsed));
            });
        }
        drop(sender);
        let mut pending: Vec<Engine> = engines.to_vec();
        let mut provisional: Option<Verdict> = None;
        let mut skipped = Vec::new();
        while let Ok((engine, answer, elapsed)) = receiver.recv() {
            pending.retain(|&e| e != engine);
            match answer {
                Ok((outcome, soundness)) => {
                    let verdict = Verdict {
                        outcome,
                        engine,
                        soundness,
                        elapsed,
                        cached: false,
                    };
                    let could_be_strengthened =
                        soundness != Soundness::Unbounded && pending.contains(&Engine::Automata);
                    if !could_be_strengthened {
                        return Ok(verdict);
                    }
                    provisional.get_or_insert(verdict);
                }
                Err(skip) => skipped.push(skip),
            }
        }
        if let Some(verdict) = provisional {
            return Ok(verdict);
        }
        if skipped.is_empty() {
            Err(VerifyError::PortfolioFailed {
                query: query.kind(),
            })
        } else {
            Err(VerifyError::NoApplicableEngine {
                query: query.kind(),
                skipped,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retreet_lang::corpus;
    use retreet_mso::formula::FoVar;

    fn small_verifier() -> Verifier {
        Verifier::builder().max_nodes(3).valuations(1).build()
    }

    #[test]
    fn all_three_query_kinds_are_answered_with_provenance() {
        let verifier = small_verifier();

        let race = verifier
            .verify(Query::DataRace(&corpus::size_counting_parallel()))
            .unwrap();
        assert!(race.is_race_free());
        assert!(matches!(race.engine, Engine::Configuration | Engine::Trace));

        let equiv = verifier
            .verify(Query::Equivalence(
                &corpus::size_counting_sequential(),
                &corpus::size_counting_fused(),
            ))
            .unwrap();
        assert!(equiv.is_equivalent());
        assert_eq!(equiv.engine, Engine::Trace);

        let formula = Formula::exists_fo("x", Formula::Root(FoVar::new("x")));
        let valid = verifier.verify(Query::Validity(&formula)).unwrap();
        assert!(valid.is_valid());
        assert_eq!(valid.engine, Engine::Automata);
        assert_eq!(valid.soundness, Soundness::Unbounded);
    }

    #[test]
    fn negative_verdicts_carry_structured_witnesses() {
        let verifier = small_verifier();

        let race = verifier
            .verify(Query::DataRace(&corpus::cycletree_parallel()))
            .unwrap();
        let witness = race.race_witness().expect("race witness");
        assert_eq!(witness.field, "num");
        assert_eq!(race.soundness, Soundness::Unbounded);

        let equiv = verifier
            .verify(Query::Equivalence(
                &corpus::size_counting_sequential(),
                &corpus::size_counting_fused_invalid(),
            ))
            .unwrap();
        assert!(equiv.counterexample().is_some());
    }

    #[test]
    fn cache_hit_returns_identical_witness() {
        let verifier = small_verifier();
        let program = corpus::cycletree_parallel();
        let first = verifier.verify(Query::DataRace(&program)).unwrap();
        assert!(!first.cached);
        let second = verifier.verify(Query::DataRace(&program)).unwrap();
        assert!(second.cached);
        assert_eq!(
            format!("{:?}", first.race_witness().unwrap()),
            format!("{:?}", second.race_witness().unwrap()),
        );
        let stats = verifier.cache_stats();
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn parallel_portfolio_agrees_with_sequential() {
        let sequential = Verifier::builder().max_nodes(3).valuations(1).build();
        let parallel = Verifier::builder()
            .max_nodes(3)
            .valuations(1)
            .parallel(true)
            .build();
        for (_, program) in corpus::all() {
            let a = sequential.verify(Query::DataRace(&program));
            let b = parallel.verify(Query::DataRace(&program));
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(a.is_race_free(), b.is_race_free()),
                (a, b) => panic!("sequential {a:?} vs parallel {b:?}"),
            }
        }
    }

    #[test]
    fn invalid_programs_are_rejected_with_typed_errors() {
        let verifier = small_verifier();
        let no_main = retreet_lang::parse_program("fn F(n) { return 0; }").unwrap();
        match verifier.verify(Query::DataRace(&no_main)) {
            Err(VerifyError::InvalidProgram { role, .. }) => {
                assert_eq!(role, ProgramRole::Queried)
            }
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
        match verifier.verify(Query::Equivalence(
            &corpus::size_counting_sequential(),
            &no_main,
        )) {
            Err(VerifyError::InvalidProgram { role, .. }) => {
                assert_eq!(role, ProgramRole::Transformed)
            }
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
    }

    #[test]
    fn restricted_portfolio_reports_no_applicable_engine() {
        let verifier = Verifier::builder().engines([Engine::Automata]).build();
        match verifier.verify(Query::DataRace(&corpus::size_counting_parallel())) {
            Err(VerifyError::NoApplicableEngine { query, .. }) => {
                assert_eq!(query, QueryKind::DataRace)
            }
            other => panic!("expected NoApplicableEngine, got {other:?}"),
        }
    }

    #[test]
    fn parallel_portfolio_waits_for_the_unbounded_engine_on_validity() {
        // "There do not exist three pairwise-distinct nodes" holds on every
        // tree up to 2 nodes but fails on larger trees.  With a tiny bounded
        // budget and the parallel portfolio, the fast bounded enumerator
        // answers Valid first — but the automata engine's unbounded Invalid
        // must win, not be pre-empted and cached over.
        let three_nodes = Formula::exists_fo(
            "x",
            Formula::exists_fo(
                "y",
                Formula::exists_fo(
                    "z",
                    Formula::conj(vec![
                        Formula::not(Formula::Eq(FoVar::new("x"), FoVar::new("y"))),
                        Formula::not(Formula::Eq(FoVar::new("y"), FoVar::new("z"))),
                        Formula::not(Formula::Eq(FoVar::new("x"), FoVar::new("z"))),
                    ]),
                ),
            ),
        );
        let formula = Formula::not(three_nodes);
        let verifier = Verifier::builder().validity_nodes(2).parallel(true).build();
        let verdict = verifier.verify(Query::Validity(&formula)).unwrap();
        assert!(
            !verdict.is_valid(),
            "bounded Valid must not pre-empt the automata Invalid"
        );
        assert_eq!(verdict.engine, Engine::Automata);
        assert_eq!(verdict.soundness, Soundness::Unbounded);
    }

    #[test]
    fn oversized_formula_falls_back_to_bounded_enumeration() {
        // 20 nested SO quantifiers exceed the automata compiler's 16-bit
        // alphabet; the portfolio answers with the bounded engine instead.
        let mut formula = Formula::True;
        for i in 0..20 {
            formula = Formula::exists_so(format!("X{i}"), formula);
        }
        let verifier = Verifier::builder().validity_nodes(2).build();
        let verdict = verifier.verify(Query::Validity(&formula)).unwrap();
        assert_eq!(verdict.engine, Engine::BoundedEnumeration);
        assert!(matches!(
            verdict.soundness,
            Soundness::BoundedUpTo { max_nodes: 2 }
        ));
    }
}
